//! # negotiator-dcn
//!
//! Facade crate for the NegotiaToR reproduction (SIGCOMM 2024). Re-exports
//! the workspace crates so examples and downstream users can depend on a
//! single package:
//!
//! * [`sim`] — deterministic simulation substrate (time, events, RNG, stats).
//! * [`topology`] — AWGR flat topologies (parallel network, thin-clos).
//! * [`workload`] — flow-size distributions and traffic generators.
//! * [`metrics`] — FCT / goodput / match-ratio recorders.
//! * [`negotiator`] — the NegotiaToR architecture itself plus the appendix
//!   design-space variants.
//! * [`oblivious`] — the traffic-oblivious (Sirius-like) baseline.
//! * [`scenario`] — the declarative scenario engine: JSON-driven
//!   experiments with workload phases, timed failure events and
//!   per-phase time-series output (see README "Scenarios").
//!
//! ## Quickstart
//!
//! ```
//! use negotiator_dcn::prelude::*;
//!
//! // A small parallel-network fabric at 50% load for 200 µs.
//! let net = NetworkConfig::small_for_tests();
//! let trace = PoissonWorkload::new(WorkloadSpec {
//!     dist: FlowSizeDist::hadoop(),
//!     load: 0.5,
//!     n_tors: net.n_tors,
//!     host_bps: net.host_bandwidth.bps(),
//! })
//! .generate(200_000, 1);
//! let cfg = NegotiatorConfig::paper_default(net);
//! let mut sim = NegotiatorSim::new(cfg, TopologyKind::Parallel);
//! let report = sim.run(&trace, 200_000);
//! assert!(report.goodput.normalized() > 0.0);
//! ```

pub use metrics;
pub use negotiator;
pub use oblivious;
pub use scenario;
pub use sim;
pub use topology;
pub use workload;

/// Commonly used items in one import.
pub mod prelude {
    pub use metrics::{FctReport, RunReport};
    pub use negotiator::{NegotiatorConfig, NegotiatorSim};
    pub use oblivious::{ObliviousConfig, ObliviousSim};
    pub use sim::{Nanos, Xoshiro256};
    pub use topology::{NetworkConfig, TopologyKind};
    pub use workload::{FlowSizeDist, PoissonWorkload, WorkloadSpec};
}
