//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so this crate re-implements the subset of the proptest API
//! that the workspace's property tests use: the [`Strategy`] trait with
//! `prop_map`/`boxed`, range/tuple/`Just`/`any` strategies, the
//! `prop::collection::{vec, btree_set}` constructors, `prop_oneof!`, the
//! `proptest!` test-generating macro and the `prop_assert*` family.
//!
//! Semantics differ from real proptest in two deliberate ways:
//! * no shrinking — a failing case panics with the assertion message and
//!   the deterministic case index, which is enough to replay it;
//! * value generation is driven by a fixed splitmix64 stream keyed on the
//!   test name and case index, so every run of every machine sees the
//!   same inputs.
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! manifest; no test source needs to change.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 stream used to drive all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed derived from the test name and case index so each test gets an
    /// independent, reproducible stream.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test values. Unlike real proptest there is no value
/// tree / shrinking; `sample` draws a concrete value directly.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `strategy.prop_map(f)` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `strategy.prop_filter(reason, f)` adapter: rejection-samples with a cap.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.reason
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_impls {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Size specification for collection strategies; lets bare `1..40`
/// literals infer as `usize`, as with real proptest.
#[derive(Clone, Debug)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.min < self.max, "empty collection size range");
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// `prop::collection::{vec, btree_set}`.
pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    pub fn btree_set<S>(elem: S, len: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.len.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set, so bound the retries; the caller's
            // element strategy must have at least `target` distinct values
            // for the exact size to be reached.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 50 + 100 {
                out.insert(self.elem.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Per-`proptest!` block configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Mirror of proptest's `prop` facade module (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
}

#[macro_export]
macro_rules! proptest {
    // Internal expansion: one #[test] fn per property, looping over cases.
    (@impl [$cfg:expr] $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        // The caller writes `#[test]` on each property (mirroring real
        // proptest), so it arrives through $meta — don't add a second one.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                let run = || -> () { $body };
                run();
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl [$cfg] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl [$crate::ProptestConfig::default()] $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1_000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (2usize..=8).sample(&mut rng);
            assert!((2..=8).contains(&w));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = crate::TestRng::for_case("t", 3).next_u64();
        let b = crate::TestRng::for_case("t", 3).next_u64();
        let c = crate::TestRng::for_case("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: collections honor their size bounds.
        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<bool>(), 1..40), x in 0usize..3) {
            prop_assert!((1..40).contains(&v.len()), "len {} pick {}", v.len(), x);
        }

        #[test]
        fn oneof_picks_both(pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(pick == 1 || pick == 2);
        }
    }
}
