//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the subset of the criterion API the workspace's benches use:
//! [`Criterion`] with `bench_function`/`sample_size`, [`Bencher`] with
//! `iter`/`iter_batched`, [`BatchSize`], `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros (both the list form and the
//! `name/config/targets` form).
//!
//! Measurement is deliberately simple: each benchmark runs `sample_size`
//! samples and reports min/mean wall-clock time per iteration, with no
//! warm-up, outlier rejection, or HTML reports. When the harness binary is
//! invoked by `cargo test` (cargo passes `--test`), each bench runs exactly
//! once as a smoke test, mirroring real criterion's test mode.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the stand-in runs one setup per
/// sample regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for parameterized benchmarks (`bench_with_input` style).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Honors the arguments cargo passes to bench harnesses: `--test` (run
    /// each bench once), `--bench` (ignored), and a positional name filter.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = std::cmp::max(1usize, n);
                    }
                }
                s if !s.starts_with('-') => self.filter = Some(s.to_string()),
                _ => {}
            }
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut b = Bencher {
            samples,
            times: Vec::with_capacity(samples),
        };
        f(&mut b);
        report(&name, &b.times);
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
        }
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(full, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.times.push(start.elapsed());
        }
    }
}

fn report(name: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let min = times.iter().min().unwrap();
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    println!(
        "{name:<48} min {:>12?}  mean {:>12?}  samples {}",
        min,
        mean,
        times.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
