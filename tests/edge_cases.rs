//! Edge cases of the full engines: degenerate fabrics, empty traces,
//! boundary-sized flows, horizon boundaries, and odd configurations.

use negotiator::{NegotiatorConfig, NegotiatorSim, SchedulerMode, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};
use topology::{NetworkConfig, TopologyKind};
use workload::{Flow, FlowTrace};

fn tiny_net() -> NetworkConfig {
    // The smallest fabric both topologies accept: 4 ToRs × 2 ports.
    NetworkConfig {
        n_tors: 4,
        n_ports: 2,
        ..NetworkConfig::small_for_tests()
    }
}

fn flow(src: usize, dst: usize, bytes: u64, arrival: u64) -> Flow {
    Flow {
        id: 0,
        src,
        dst,
        bytes,
        arrival,
    }
}

#[test]
fn empty_trace_is_a_noop() {
    for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
        let mut s = NegotiatorSim::new(NegotiatorConfig::paper_default(tiny_net()), kind);
        let report = s.run(&FlowTrace::default(), 100_000);
        assert_eq!(report.all.total, 0);
        assert_eq!(report.goodput.delivered_bytes, 0);
    }
    let mut s = ObliviousSim::new(
        ObliviousConfig::paper_default(tiny_net()),
        TopologyKind::ThinClos,
    );
    let report = s.run(&FlowTrace::default(), 100_000);
    assert_eq!(report.goodput.delivered_bytes, 0);
}

#[test]
fn one_byte_flow_completes_everywhere() {
    let t = FlowTrace::new(vec![flow(0, 1, 1, 0)]);
    for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
        let mut s = NegotiatorSim::new(NegotiatorConfig::paper_default(tiny_net()), kind);
        s.run(&t, 5_000_000);
        assert_eq!(s.tracker().completed_count(), 1, "{kind:?}");
    }
    let mut s = ObliviousSim::new(
        ObliviousConfig::paper_default(tiny_net()),
        TopologyKind::ThinClos,
    );
    s.run(&t, 5_000_000);
    assert_eq!(s.tracker().completed_count(), 1);
}

#[test]
fn flow_arriving_after_horizon_never_starts() {
    let t = FlowTrace::new(vec![flow(0, 1, 1_000, 10_000_000)]);
    let mut s = NegotiatorSim::new(
        NegotiatorConfig::paper_default(tiny_net()),
        TopologyKind::Parallel,
    );
    let report = s.run(&t, 1_000_000);
    assert_eq!(report.all.completed, 0);
    assert_eq!(report.goodput.delivered_bytes, 0);
}

#[test]
fn tiny_fabric_all_to_all_drains() {
    // Every pair of the 4-ToR fabric loaded simultaneously.
    let mut flows = Vec::new();
    for src in 0..4 {
        for dst in 0..4 {
            if src != dst {
                flows.push(flow(src, dst, 40_000, 0));
            }
        }
    }
    let t = FlowTrace::new(flows);
    for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
        let mut s = NegotiatorSim::new(NegotiatorConfig::paper_default(tiny_net()), kind);
        s.run(&t, 50_000_000);
        assert_eq!(s.tracker().completed_count(), t.len(), "{kind:?}");
        assert_eq!(s.tracker().delivered_payload(), t.total_bytes());
    }
}

#[test]
fn exactly_threshold_sized_queue_relies_on_piggyback_alone() {
    // §3.4.1: requests fire only *above* three piggybacked packets. A flow
    // of exactly 3 × 595 B must still complete (via piggybacking), just
    // without ever being granted.
    let cfg = NegotiatorConfig::paper_default(tiny_net());
    let threshold = cfg.request_threshold_bytes();
    let t = FlowTrace::new(vec![flow(0, 1, threshold, 0)]);
    let mut s = NegotiatorSim::new(cfg, TopologyKind::Parallel);
    s.run(&t, 50_000_000);
    assert_eq!(s.tracker().completed_count(), 1);
    assert_eq!(s.stats().requests_sent, 0, "never above threshold");
    assert_eq!(s.stats().scheduled_packets, 0);
    assert!(s.stats().piggyback_packets >= 3);
}

#[test]
fn threshold_plus_one_byte_does_request() {
    let cfg = NegotiatorConfig::paper_default(tiny_net());
    let threshold = cfg.request_threshold_bytes();
    let t = FlowTrace::new(vec![flow(0, 1, threshold + 1, 0)]);
    let mut s = NegotiatorSim::new(cfg, TopologyKind::Parallel);
    s.run(&t, 50_000_000);
    assert_eq!(s.tracker().completed_count(), 1);
    assert!(s.stats().requests_sent > 0);
}

#[test]
fn no_piggyback_no_pq_still_drains() {
    let mut cfg = NegotiatorConfig::paper_default(tiny_net());
    cfg.piggyback = false;
    cfg.priority_queues = false;
    let t = FlowTrace::new(vec![flow(2, 3, 123_456, 777)]);
    let mut s = NegotiatorSim::new(cfg, TopologyKind::ThinClos);
    s.run(&t, 50_000_000);
    assert_eq!(s.tracker().completed_count(), 1);
    assert_eq!(s.stats().piggyback_packets, 0);
}

#[test]
fn variants_work_on_thin_clos_too() {
    let t = FlowTrace::new(vec![flow(0, 3, 80_000, 0), flow(1, 3, 80_000, 0)]);
    for mode in [
        SchedulerMode::Iterative { rounds: 2 },
        SchedulerMode::DataSize,
        SchedulerMode::HolDelay { alpha: 0.001 },
        SchedulerMode::Stateful,
        SchedulerMode::Projector,
    ] {
        let mut s = NegotiatorSim::with_options(
            NegotiatorConfig::paper_default(tiny_net()),
            TopologyKind::ThinClos,
            SimOptions {
                mode,
                ..SimOptions::default()
            },
        );
        s.run(&t, 50_000_000);
        assert_eq!(s.tracker().completed_count(), 2, "{mode:?}");
    }
}

#[test]
fn scheduled_phase_of_one_slot_works() {
    let mut cfg = NegotiatorConfig::paper_default(tiny_net());
    cfg.epoch.scheduled_slots = 1;
    let t = FlowTrace::new(vec![flow(0, 2, 50_000, 0)]);
    let mut s = NegotiatorSim::new(cfg, TopologyKind::Parallel);
    s.run(&t, 100_000_000);
    assert_eq!(s.tracker().completed_count(), 1);
}

#[test]
fn oblivious_without_pq_on_tiny_fabric() {
    let mut cfg = ObliviousConfig::paper_default(tiny_net());
    cfg.priority_queues = false;
    let t = FlowTrace::new(vec![flow(0, 1, 30_000, 0), flow(2, 1, 500, 0)]);
    let mut s = ObliviousSim::new(cfg, TopologyKind::ThinClos);
    s.run(&t, 50_000_000);
    assert_eq!(s.tracker().completed_count(), 2);
    assert_eq!(s.tracker().delivered_payload(), 30_500);
}

#[test]
fn two_flows_same_pair_preserve_order_per_flow() {
    // In-order per flow (§3.6.5): with PQ off, flow 0's bytes must all
    // arrive before flow 1's first byte (same pair, FIFO).
    let mut cfg = NegotiatorConfig::paper_default(tiny_net());
    cfg.priority_queues = false;
    cfg.piggyback = false;
    let t = FlowTrace::new(vec![flow(0, 1, 20_000, 0), flow(0, 1, 1_000, 10)]);
    let mut s = NegotiatorSim::new(cfg, TopologyKind::Parallel);
    s.run(&t, 50_000_000);
    let first_done = s.tracker().completion(0).unwrap();
    let second_done = s.tracker().completion(1).unwrap();
    assert!(first_done <= second_done);
}

#[test]
fn host_buffer_smaller_than_packet_still_progresses() {
    let t = FlowTrace::new(vec![flow(0, 1, 50_000, 0)]);
    let mut s = NegotiatorSim::with_options(
        NegotiatorConfig::paper_default(tiny_net()),
        TopologyKind::Parallel,
        SimOptions {
            host_buffer_bytes: Some(100), // pathological: always backpressured
            ..SimOptions::default()
        },
    );
    s.run(&t, 200_000_000);
    // Piggybacking is not subject to grant backpressure, so the flow still
    // drains, just slowly.
    assert_eq!(s.tracker().completed_count(), 1);
}
