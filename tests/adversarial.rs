//! Adversarial fault injection, end to end through the epoch engines:
//! the four fault families (flap, partition, gray, greedy) must perturb
//! the simulation the way their semantics say — and none of them may
//! break the byte-identity promise at any `--workers` count, since every
//! fault decision is position-keyed or applied from the sequential
//! driver loop (see `topology::inject`).

use metrics::PhaseProbe;
use negotiator::{FaultAction, NegotiatorConfig, NegotiatorSim, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};
use topology::failures::LinkDir;
use topology::inject::{FlapTargets, PartitionSpec};
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, FlowTrace, PoissonWorkload, WorkloadSpec};

const DURATION: u64 = 150_000;

fn trace(seed: u64) -> FlowTrace {
    PoissonWorkload::new(WorkloadSpec {
        dist: FlowSizeDist::hadoop(),
        load: 0.6,
        n_tors: 16,
        host_bps: 200_000_000_000,
    })
    .generate(DURATION, seed)
}

fn sim(workers: usize) -> NegotiatorSim {
    let cfg = NegotiatorConfig::paper_default(NetworkConfig::small_for_tests());
    let opts = SimOptions {
        workers,
        ..SimOptions::default()
    };
    NegotiatorSim::with_options(cfg, TopologyKind::Parallel, opts)
}

/// Satellite property: gray-failure drop decisions are identical across
/// `--workers 1/8`. The gray window forces the sequential predefined
/// path, but the epoch-start steps stay sharded, so the whole report —
/// including the control-drop counter — must match byte for byte.
#[test]
fn gray_runs_are_identical_at_any_worker_count() {
    let t = trace(61);
    let run = |workers: usize| {
        let mut s = sim(workers);
        let epoch = s.epoch_len();
        s.schedule_fault(
            5 * epoch,
            FaultAction::GrayStart {
                drop_prob: 0.5,
                seed: 11,
                tors: None,
            },
        );
        s.schedule_fault(40 * epoch, FaultAction::GrayStop);
        let report = s.run(&t, DURATION);
        (report, *s.stats())
    };
    let (report_1, stats_1) = run(1);
    assert!(
        stats_1.control_dropped > 0,
        "a 50% gray window must drop some control traffic"
    );
    for workers in [2, 8] {
        let (report_w, stats_w) = run(workers);
        assert_eq!(report_1, report_w, "{workers} workers diverged (report)");
        assert_eq!(stats_1, stats_w, "{workers} workers diverged (stats)");
    }
}

/// Gray semantics: links stay up for data, so nothing is "lost", but the
/// detector — starved of its dummies — excludes healthy links, which the
/// phase counters report as false positives.
#[test]
fn gray_failure_misleads_the_detector_without_touching_data() {
    let t = trace(62);
    let mut s = sim(1);
    let epoch = s.epoch_len();
    s.schedule_fault(
        5 * epoch,
        FaultAction::GrayStart {
            drop_prob: 1.0,
            seed: 13,
            tors: Some(vec![0, 1]),
        },
    );
    s.schedule_fault(60 * epoch, FaultAction::GrayStop);
    s.set_phase_probe(PhaseProbe::new(vec![30 * epoch, DURATION]));
    let report = s.run(&t, DURATION);
    assert!(report.goodput.delivered_bytes > 0, "data still flows");
    let stats = s.stats();
    assert!(stats.control_dropped > 0, "control traffic dropped");
    assert_eq!(stats.lost_packets, 0, "gray links never lose data packets");
    let mid = s.phase_probe().expect("probe attached").snapshots()[0].counters;
    assert!(
        mid.detector_fp_links > 0,
        "total dummy loss must trick the detector into false exclusions"
    );
    assert_eq!(
        mid.detector_fn_links, 0,
        "no ground-truth failure exists to miss"
    );
}

/// A greedy granter floods unrequested grants: the run must stay
/// deterministic across worker counts, and goodput must suffer relative
/// to the clean run — stolen ports serve empty queues.
#[test]
fn greedy_tor_dents_goodput_and_stays_deterministic() {
    let t = trace(63);
    let run = |workers: usize, greedy: bool| {
        let mut s = sim(workers);
        if greedy {
            let epoch = s.epoch_len();
            s.schedule_fault(5 * epoch, FaultAction::GreedyStart { tors: vec![2, 9] });
        }
        s.run(&t, DURATION)
    };
    let clean = run(1, false);
    let hit = run(1, true);
    assert!(
        hit.goodput.delivered_bytes < clean.goodput.delivered_bytes,
        "greedy granting must cost goodput: {} !< {}",
        hit.goodput.delivered_bytes,
        clean.goodput.delivered_bytes
    );
    for workers in [2, 8] {
        assert_eq!(hit, run(workers, true), "{workers} workers diverged");
    }
}

/// Flapping and partition faults drive plain `LinkFailures` state from
/// the sequential driver loop; runs crossing both must stay
/// worker-independent, and healing must let traffic finish.
#[test]
fn flap_and_partition_runs_are_identical_at_any_worker_count() {
    let t = trace(64);
    let run = |workers: usize| {
        let mut s = sim(workers);
        let epoch = s.epoch_len();
        s.schedule_fault(
            5 * epoch,
            FaultAction::FlapStart {
                targets: FlapTargets::Links(vec![
                    (0, 0, LinkDir::Egress),
                    (3, 1, LinkDir::Ingress),
                ]),
                up: 2 * epoch,
                down: epoch,
            },
        );
        s.schedule_fault(
            12 * epoch,
            FaultAction::Partition(PartitionSpec::Random { groups: 2, seed: 9 }),
        );
        s.schedule_fault(25 * epoch, FaultAction::Heal);
        s.schedule_fault(30 * epoch, FaultAction::FlapStop);
        s.run(&t, DURATION)
    };
    let sequential = run(1);
    assert!(sequential.goodput.delivered_bytes > 0, "nothing delivered");
    for workers in [2, 8] {
        assert_eq!(sequential, run(workers), "{workers} workers diverged");
    }
}

/// A partition dents the oblivious engine too (cross-group slots waste),
/// and the partitioned-ToR gauge reads through its phase counters.
#[test]
fn oblivious_partition_applies_and_heals() {
    let t = trace(65);
    let run = |partitioned: bool| {
        let cfg = ObliviousConfig::paper_default(NetworkConfig::small_for_tests());
        let mut s = ObliviousSim::new(cfg, TopologyKind::ThinClos);
        if partitioned {
            s.schedule_fault(
                20_000,
                FaultAction::Partition(PartitionSpec::Explicit(
                    (0..16).map(|tor| (tor % 2) as u32).collect(),
                )),
            );
            s.schedule_fault(80_000, FaultAction::Heal);
        }
        s.set_phase_probe(PhaseProbe::new(vec![50_000, DURATION]));
        let report = s.run(&t, DURATION);
        let mid = s.phase_probe().expect("probe").snapshots()[0].counters;
        (report, mid)
    };
    let (clean, clean_mid) = run(false);
    let (split, split_mid) = run(true);
    assert_eq!(clean_mid.partitioned_tors, 0);
    assert_eq!(
        split_mid.partitioned_tors, 8,
        "an 8/8 split cuts 8 ToRs off the largest group"
    );
    assert!(
        split.goodput.delivered_bytes <= clean.goodput.delivered_bytes,
        "a partition cannot help an oblivious rotor"
    );
    assert_ne!(clean, split, "the partition must leave a mark");
}
