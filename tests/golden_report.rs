//! Golden-report regression gate for the epoch-engine hot path.
//!
//! A mixed Poisson + incast workload is played through every scheduler
//! mode on both topologies (plus selective relay, a failure schedule, and
//! the traffic-oblivious baseline), and each `RunReport` is rendered
//! through `metrics::json` and compared byte-for-byte against the
//! committed golden file. Any hot-path rewrite must keep these bytes
//! identical — "faster" is only acceptable when it is also "the same".
//!
//! Regenerate (after a *deliberate* behavior change only) with:
//!
//! ```text
//! GOLDEN_REPORT_REGEN=1 cargo test --test golden_report
//! ```

use metrics::{Json, RunReport};
use negotiator::{FailureAction, NegotiatorConfig, NegotiatorSim, SchedulerMode, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, FlowTrace, MixedWorkload, WorkloadSpec};

const DURATION: u64 = 200_000;
const GOLDEN_PATH: &str = "tests/golden/engine_reports.json";

fn mixed_trace(seed: u64) -> FlowTrace {
    let (trace, _tags) = MixedWorkload {
        background: WorkloadSpec {
            dist: FlowSizeDist::hadoop(),
            load: 0.7,
            n_tors: 16,
            host_bps: 200_000_000_000,
        },
        incast_degree: 8,
        incast_flow_bytes: 1_000,
        incast_load: 0.02,
    }
    .generate(DURATION, seed);
    trace
}

fn negotiator_report(
    kind: TopologyKind,
    opts: SimOptions,
    trace: &FlowTrace,
    failures: bool,
) -> RunReport {
    let cfg = NegotiatorConfig::paper_default(NetworkConfig::small_for_tests());
    let mut sim = NegotiatorSim::with_options(cfg, kind, opts);
    if failures {
        let epoch = sim.epoch_len();
        sim.schedule_failure(
            10 * epoch,
            FailureAction::FailRandom {
                ratio: 0.2,
                seed: 5,
            },
        );
        sim.schedule_failure(30 * epoch, FailureAction::RepairAll);
    }
    sim.run(trace, DURATION)
}

/// Every (label, report) pair the golden file pins.
fn all_reports() -> Vec<(String, RunReport)> {
    let trace = mixed_trace(17);
    let modes: [(&str, SchedulerMode); 6] = [
        ("base", SchedulerMode::Base),
        ("iterative2", SchedulerMode::Iterative { rounds: 2 }),
        ("datasize", SchedulerMode::DataSize),
        ("holdelay", SchedulerMode::HolDelay { alpha: 0.001 }),
        ("stateful", SchedulerMode::Stateful),
        ("projector", SchedulerMode::Projector),
    ];
    let mut out = Vec::new();
    for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
        let kind_label = match kind {
            TopologyKind::Parallel => "parallel",
            TopologyKind::ThinClos => "thinclos",
        };
        for (mode_label, mode) in modes {
            let opts = SimOptions {
                mode,
                ..SimOptions::default()
            };
            out.push((
                format!("nego/{kind_label}/{mode_label}"),
                negotiator_report(kind, opts, &trace, false),
            ));
        }
    }
    // Selective relay is thin-clos only (Appendix A.2.2).
    out.push((
        "nego/thinclos/base+relay".to_string(),
        negotiator_report(
            TopologyKind::ThinClos,
            SimOptions {
                selective_relay: true,
                ..SimOptions::default()
            },
            &trace,
            false,
        ),
    ));
    // A failure schedule exercises the link-state path and the schedule
    // cursor.
    out.push((
        "nego/parallel/base+failures".to_string(),
        negotiator_report(TopologyKind::Parallel, SimOptions::default(), &trace, true),
    ));
    // The traffic-oblivious baseline shares the cached predefined tables.
    let cfg = ObliviousConfig::paper_default(NetworkConfig::small_for_tests());
    let report = ObliviousSim::new(cfg, TopologyKind::ThinClos).run(&trace, DURATION);
    out.push(("oblivious/thinclos".to_string(), report));
    out
}

fn render_reports(reports: Vec<(String, RunReport)>) -> String {
    let mut root = Json::object();
    for (label, mut report) in reports {
        root.push(&label, report.to_json());
    }
    let mut text = root.render();
    text.push('\n');
    text
}

#[test]
fn engine_reports_match_committed_golden() {
    let rendered = render_reports(all_reports());
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("GOLDEN_REPORT_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with GOLDEN_REPORT_REGEN=1",
            path.display()
        )
    });
    // Parse both sides first so a mismatch points at the first diverging
    // metric instead of a wall of JSON.
    let got = Json::parse(&rendered).expect("rendered reports parse");
    let want = Json::parse(&golden).expect("golden file parses");
    if got != want {
        for (key, value) in want.members().expect("golden is an object") {
            let current = got.get(key);
            if current != Some(value) {
                panic!(
                    "golden mismatch for '{key}':\n  golden:  {}\n  current: {}",
                    value.render(),
                    current.map_or("<missing>".to_string(), Json::render),
                );
            }
        }
        panic!("golden mismatch: extra keys in current output");
    }
    // Byte identity too: the renderer itself is part of the contract.
    assert_eq!(rendered, golden, "rendered bytes drifted");
}
