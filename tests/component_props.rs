//! Property tests for the stateful components below the engines: the
//! PIAS queue, the fault detector, the link-failure ground truth, the
//! flow-size distributions and the bandwidth series.

use negotiator::fault::{FaultDetector, DETECT_EPOCHS};
use negotiator::queues::DestQueue;
use proptest::prelude::*;
use sim::{BandwidthSeries, Xoshiro256};
use topology::failures::{LinkDir, LinkFailures};
use workload::FlowSizeDist;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bytes in equal bytes out, for any enqueue pattern, PIAS on or off,
    /// and any packet size.
    #[test]
    fn destqueue_conserves_bytes(
        flows in prop::collection::vec((1u64..200_000, any::<bool>()), 1..40),
        payload in 1u64..4096,
        pias in any::<bool>(),
    ) {
        let mut q = DestQueue::new();
        let mut total_in = 0u64;
        for (i, &(bytes, relay)) in flows.iter().enumerate() {
            if relay {
                q.enqueue_relay(i as u64, bytes, i as u64);
            } else {
                q.enqueue_flow(i as u64, bytes, i as u64, pias, [1_000, 10_000]);
            }
            total_in += bytes;
        }
        prop_assert_eq!(q.total_bytes(), total_in);
        let mut per_flow = std::collections::BTreeMap::new();
        let mut total_out = 0u64;
        while let Some(p) = q.dequeue_packet(payload) {
            prop_assert!(p.bytes > 0 && p.bytes <= payload);
            total_out += p.bytes;
            *per_flow.entry(p.flow).or_insert(0u64) += p.bytes;
        }
        prop_assert_eq!(total_out, total_in);
        prop_assert_eq!(q.total_bytes(), 0);
        prop_assert_eq!(q.relayed_bytes(), 0);
        for (i, &(bytes, _)) in flows.iter().enumerate() {
            prop_assert_eq!(per_flow[&(i as u64)], bytes);
        }
    }

    /// Level-targeted dequeues also conserve and never cross levels.
    #[test]
    fn destqueue_level_dequeues_conserve(
        sizes in prop::collection::vec(1u64..50_000, 1..20),
    ) {
        let mut q = DestQueue::new();
        let mut total = 0;
        for (i, &b) in sizes.iter().enumerate() {
            q.enqueue_flow(i as u64, b, 0, true, [1_000, 10_000]);
            total += b;
        }
        let mut out = 0;
        for level in 0..negotiator::queues::PRIORITY_LEVELS {
            while let Some(p) = q.dequeue_level_packet(level, 1_115) {
                prop_assert_eq!(p.priority, level);
                out += p.bytes;
            }
            prop_assert_eq!(q.level_bytes(level), 0);
        }
        prop_assert_eq!(out, total);
    }

    /// The fault detector excludes a link only after `DETECT_EPOCHS`
    /// consecutive misses and re-admits on the first success, whatever
    /// the observation sequence.
    #[test]
    fn detector_tracks_consecutive_misses(observations in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut d = FaultDetector::new(2, 1);
        let mut consecutive_misses = 0u32;
        for &delivered in &observations {
            d.observe_egress(0, 0, delivered);
            consecutive_misses = if delivered { 0 } else { consecutive_misses + 1 };
            prop_assert_eq!(
                d.egress_excluded(0, 0),
                consecutive_misses >= DETECT_EPOCHS,
                "after misses {}", consecutive_misses
            );
        }
    }

    /// Flow-size quantile is the inverse of the CDF within support:
    /// fraction_below(quantile(u)) ≈ u.
    #[test]
    fn dist_quantile_inverts_cdf(u in 0.001f64..0.999, which in 0usize..3) {
        let d = match which {
            0 => FlowSizeDist::hadoop(),
            1 => FlowSizeDist::web_search(),
            _ => FlowSizeDist::google(),
        };
        let x = d.quantile(u) as f64;
        let back = d.fraction_below(x);
        // Rounding to whole bytes costs precision at the tiny end.
        prop_assert!((back - u).abs() < 0.05, "u {} -> x {} -> {}", u, x, back);
    }

    /// Sampling never leaves the distribution's support and the empirical
    /// mice fraction tracks the CDF.
    #[test]
    fn dist_samples_within_support(seed in any::<u64>()) {
        let d = FlowSizeDist::hadoop();
        let mut rng = Xoshiro256::new(seed);
        let n = 2_000;
        let mut mice = 0;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            prop_assert!((1..=10_000_000).contains(&s));
            if s < 10_000 {
                mice += 1;
            }
        }
        let frac = mice as f64 / n as f64;
        let expect = d.fraction_below(10_000.0);
        prop_assert!((frac - expect).abs() < 0.06, "mice {} vs {}", frac, expect);
    }

    /// Failing any random sample and repairing exactly those links
    /// restores a fully healthy fabric, whatever the fabric shape, ratio
    /// or seed.
    #[test]
    fn link_failures_roundtrip_to_healthy(
        tors in 2usize..24,
        ports in 1usize..6,
        ratio in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut f = LinkFailures::new(tors, ports);
        let failed = f.fail_random(ratio, &mut Xoshiro256::new(seed));
        prop_assert_eq!(f.failed_count(), failed.len());
        f.repair_all(&failed);
        prop_assert_eq!(f.failed_count(), 0);
        for tor in 0..tors {
            for port in 0..ports {
                prop_assert!(!f.egress_down(tor, port));
                prop_assert!(!f.ingress_down(tor, port));
            }
        }
    }

    /// `fail_random` never yields the same directed link twice, its count
    /// matches the rounded target, and every index is in range.
    #[test]
    fn fail_random_yields_distinct_in_range_links(
        tors in 2usize..24,
        ports in 1usize..6,
        ratio in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut f = LinkFailures::new(tors, ports);
        let failed = f.fail_random(ratio, &mut Xoshiro256::new(seed));
        let target = ((2 * tors * ports) as f64 * ratio).round() as usize;
        prop_assert_eq!(failed.len(), target);
        let mut seen = std::collections::BTreeSet::new();
        for &(tor, port, dir) in &failed {
            prop_assert!(tor < tors && port < ports);
            prop_assert!(seen.insert((tor, port, dir)), "duplicate link");
        }
    }

    /// `link_up(src, dst, port)` is exactly "source egress up and
    /// destination ingress up", for any failure pattern.
    #[test]
    fn link_up_agrees_with_per_direction_state(
        fails in prop::collection::vec((0usize..8, 0usize..3, any::<bool>()), 0..30),
    ) {
        let mut f = LinkFailures::new(8, 3);
        for &(tor, port, egress) in &fails {
            f.fail(tor, port, if egress { LinkDir::Egress } else { LinkDir::Ingress });
        }
        for src in 0..8 {
            for dst in 0..8 {
                for port in 0..3 {
                    prop_assert_eq!(
                        f.link_up(src, dst, port),
                        !f.egress_down(src, port) && !f.ingress_down(dst, port),
                        "src {} dst {} port {}", src, dst, port
                    );
                }
            }
        }
    }

    /// Bandwidth series: total bytes recorded equals the sum over windows,
    /// independent of the record pattern.
    #[test]
    fn series_conserves_bytes(
        window in 1u64..10_000,
        events in prop::collection::vec((0u64..1_000_000, 0u64..100_000), 0..50),
    ) {
        let mut s = BandwidthSeries::new(window);
        let mut total = 0u64;
        for &(at, bytes) in &events {
            s.record(at, bytes);
            total += bytes;
        }
        prop_assert_eq!(s.bytes_per_window().iter().sum::<u64>(), total);
    }
}
