//! Integration tests pinning the paper's qualitative results on a small
//! fabric: the claims of §4 must hold in miniature, or the reproduction
//! is broken regardless of what the full-scale harness prints.

use metrics::RunReport;
use negotiator::{NegotiatorConfig, NegotiatorSim};
use oblivious::{ObliviousConfig, ObliviousSim};
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, IncastWorkload, PoissonWorkload, WorkloadSpec};

fn net() -> NetworkConfig {
    NetworkConfig::small_for_tests()
}

fn trace(load: f64, duration: u64) -> workload::FlowTrace {
    PoissonWorkload::new(WorkloadSpec {
        dist: FlowSizeDist::hadoop(),
        load,
        n_tors: 16,
        host_bps: 200_000_000_000,
    })
    .generate(duration, 2024)
}

/// §1/§4.3: NegotiaToR's mice FCT beats the traffic-oblivious design by
/// a large factor under load.
#[test]
fn negotiator_mice_fct_beats_oblivious() {
    let duration = 1_500_000;
    let t = trace(0.9, duration);
    let mut nego = NegotiatorSim::new(
        NegotiatorConfig::paper_default(net()),
        TopologyKind::Parallel,
    );
    let mut rn = nego.run(&t, duration);
    let mut oblv = ObliviousSim::new(
        ObliviousConfig::paper_default(net()),
        TopologyKind::ThinClos,
    );
    let mut ro = oblv.run(&t, duration);
    assert!(
        ro.mice.p99_ns() > 3.0 * rn.mice.p99_ns(),
        "99p mice FCT: negotiator {} vs oblivious {}",
        rn.mice.p99_ns(),
        ro.mice.p99_ns()
    );
}

/// §4.3: at heavy load NegotiaToR's goodput exceeds the baseline's.
#[test]
fn negotiator_goodput_beats_oblivious_at_heavy_load() {
    let duration = 2_000_000;
    let t = trace(1.0, duration);
    let mut nego = NegotiatorSim::new(
        NegotiatorConfig::paper_default(net()),
        TopologyKind::Parallel,
    );
    let rn = nego.run(&t, duration);
    let mut oblv = ObliviousSim::new(
        ObliviousConfig::paper_default(net()),
        TopologyKind::ThinClos,
    );
    let ro = oblv.run(&t, duration);
    assert!(
        rn.goodput.normalized() > ro.goodput.normalized(),
        "goodput: negotiator {:.3} vs oblivious {:.3}",
        rn.goodput.normalized(),
        ro.goodput.normalized()
    );
}

/// §4.2/Figure 6: most mice flows finish within two epochs thanks to the
/// piggybacked predefined phase.
#[test]
fn most_mice_finish_within_two_epochs() {
    let duration = 1_500_000;
    let t = trace(1.0, duration);
    let mut sim = NegotiatorSim::new(
        NegotiatorConfig::paper_default(net()),
        TopologyKind::Parallel,
    );
    let mut rep = sim.run(&t, duration);
    let epoch = sim.epoch_len() as f64;
    let within = rep.mice.cdf.fraction_below(2.0 * epoch);
    assert!(within > 0.5, "only {within:.3} of mice within 2 epochs");
}

/// Table 2's ordering: each FCT optimization helps, and both together
/// dominate.
#[test]
fn ablation_ordering_holds() {
    let duration = 1_500_000;
    let t = trace(1.0, duration);
    let p99 = |pb: bool, pq: bool| {
        let mut cfg = NegotiatorConfig::paper_default(net());
        cfg.piggyback = pb;
        cfg.priority_queues = pq;
        let mut sim = NegotiatorSim::new(cfg, TopologyKind::Parallel);
        let mut rep = sim.run(&t, duration);
        rep.mice.p99_ns()
    };
    let none = p99(false, false);
    let both = p99(true, true);
    assert!(
        both < none / 2.0,
        "PB+PQ ({both}) must beat no optimization ({none}) clearly"
    );
}

/// Figure 7(a): incast finish time is nearly flat in degree for
/// NegotiaToR; the baseline's grows.
#[test]
fn incast_scaling_shapes() {
    let finish = |degree: usize, nego: bool| {
        let t = IncastWorkload {
            degree,
            flow_bytes: 1_000,
            n_tors: 16,
            start: 10_000,
        }
        .generate(1);
        let horizon = 3_000_000;
        let tracker = if nego {
            let mut s = NegotiatorSim::new(
                NegotiatorConfig::paper_default(net()),
                TopologyKind::Parallel,
            );
            s.run(&t, horizon);
            RunReport::burst_finish_time(&t, s.tracker())
        } else {
            let mut s = ObliviousSim::new(
                ObliviousConfig::paper_default(net()),
                TopologyKind::ThinClos,
            );
            s.run(&t, horizon);
            RunReport::burst_finish_time(&t, s.tracker())
        };
        tracker.expect("incast completes") as f64
    };
    let nego_ratio = finish(14, true) / finish(2, true);
    assert!(
        nego_ratio < 2.0,
        "negotiator incast should stay flat: {nego_ratio}"
    );
    // The baseline's growth with degree is at least as steep as
    // NegotiaToR's (at paper scale it overtakes in absolute terms too, but
    // on this 16-ToR miniature its rotor round is much shorter than an
    // epoch, so only the shape is asserted here; see `paper -- fig7a`).
    let oblv_ratio = finish(14, false) / finish(2, false);
    assert!(
        oblv_ratio >= nego_ratio * 0.9,
        "baseline growth {oblv_ratio:.2} vs negotiator {nego_ratio:.2}"
    );
}

/// A.1/Figure 14: the measured match ratio sits near the closed form.
#[test]
fn match_ratio_near_theory() {
    let duration = 2_000_000;
    let t = trace(1.0, duration);
    let mut sim = NegotiatorSim::new(
        NegotiatorConfig::paper_default(net()),
        TopologyKind::Parallel,
    );
    sim.run(&t, duration);
    let measured = sim.match_recorder().overall_ratio().expect("activity");
    let theory = negotiator::theory::expected_match_efficiency(16);
    assert!(
        (measured - theory).abs() < 0.15,
        "match ratio {measured:.3} vs theory {theory:.3}"
    );
}

/// §4.4/Figure 11: everything still works without the 2× speedup, and
/// NegotiaToR still wins goodput at full load.
#[test]
fn no_speedup_still_wins() {
    let flat = NetworkConfig {
        port_bandwidth: sim::Bandwidth::from_gbps(50),
        ..net()
    };
    let duration = 2_000_000;
    let t = trace(1.0, duration);
    let mut nego = NegotiatorSim::new(
        NegotiatorConfig::paper_default(flat.clone()),
        TopologyKind::Parallel,
    );
    let rn = nego.run(&t, duration);
    let mut oblv = ObliviousSim::new(ObliviousConfig::paper_default(flat), TopologyKind::ThinClos);
    let ro = oblv.run(&t, duration);
    assert!(rn.goodput.normalized() > ro.goodput.normalized());
}

/// Tagged-subset reports add up: background + incast FCT populations
/// partition the whole.
#[test]
fn subset_reports_partition() {
    use workload::MixedWorkload;
    let duration = 1_000_000;
    let (t, tags) = MixedWorkload {
        background: WorkloadSpec {
            dist: FlowSizeDist::hadoop(),
            load: 0.5,
            n_tors: 16,
            host_bps: 200_000_000_000,
        },
        incast_degree: 8,
        incast_flow_bytes: 1_000,
        incast_load: 0.02,
    }
    .generate(duration, 4);
    let mut sim = NegotiatorSim::new(
        NegotiatorConfig::paper_default(net()),
        TopologyKind::Parallel,
    );
    sim.run(&t, duration);
    let bg_tags: Vec<bool> = tags.iter().map(|&x| !x).collect();
    let a = sim.report_subset(&t, &tags);
    let b = sim.report_subset(&t, &bg_tags);
    assert_eq!(a.all.total + b.all.total, t.len());
    assert_eq!(
        a.goodput.delivered_bytes, b.goodput.delivered_bytes,
        "goodput covers the whole run in both"
    );
}
