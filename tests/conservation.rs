//! Byte-conservation and determinism properties of the two full engines:
//! nothing is ever delivered twice, everything offered is eventually
//! delivered (absent failures), and a seed pins the whole run.

use negotiator::{NegotiatorConfig, NegotiatorSim, SchedulerMode, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};
use proptest::prelude::*;
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, PoissonWorkload, WorkloadSpec};

fn trace(load: f64, duration: u64, seed: u64) -> workload::FlowTrace {
    PoissonWorkload::new(WorkloadSpec {
        dist: FlowSizeDist::hadoop(),
        load,
        n_tors: 16,
        host_bps: 200_000_000_000,
    })
    .generate(duration, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With a generous drain horizon and no failures, NegotiaToR delivers
    /// every byte of every flow exactly once, on both topologies.
    #[test]
    fn negotiator_conserves_bytes(
        seed in any::<u64>(),
        load in 0.1f64..0.7,
        kind_pick in any::<bool>(),
    ) {
        let kind = if kind_pick { TopologyKind::Parallel } else { TopologyKind::ThinClos };
        let gen_window = 300_000u64;
        let horizon = 60_000_000u64; // engines exit early once drained
        let t = trace(load, gen_window, seed);
        let mut sim = NegotiatorSim::new(
            NegotiatorConfig::paper_default(NetworkConfig::small_for_tests()),
            kind,
        );
        sim.run(&t, horizon);
        // FlowTracker::deliver panics on over-delivery, so completion of
        // every flow here implies exactly-once byte accounting.
        prop_assert_eq!(sim.tracker().completed_count(), t.len());
        prop_assert_eq!(sim.tracker().delivered_payload(), t.total_bytes());
    }

    /// Same conservation for the traffic-oblivious baseline (its VLB path
    /// must neither lose nor duplicate relayed chunks).
    #[test]
    fn oblivious_conserves_bytes(seed in any::<u64>(), load in 0.1f64..0.7) {
        let gen_window = 300_000u64;
        let horizon = 120_000_000u64;
        let t = trace(load, gen_window, seed);
        let mut sim = ObliviousSim::new(
            ObliviousConfig::paper_default(NetworkConfig::small_for_tests()),
            TopologyKind::ThinClos,
        );
        sim.run(&t, horizon);
        prop_assert_eq!(sim.tracker().completed_count(), t.len());
        prop_assert_eq!(sim.tracker().delivered_payload(), t.total_bytes());
    }

    /// Variant schedulers also conserve bytes.
    #[test]
    fn variants_conserve_bytes(seed in any::<u64>(), mode_pick in 0usize..5) {
        let mode = [
            SchedulerMode::Iterative { rounds: 3 },
            SchedulerMode::DataSize,
            SchedulerMode::HolDelay { alpha: 0.001 },
            SchedulerMode::Stateful,
            SchedulerMode::Projector,
        ][mode_pick];
        let t = trace(0.4, 200_000, seed);
        let mut sim = NegotiatorSim::with_options(
            NegotiatorConfig::paper_default(NetworkConfig::small_for_tests()),
            TopologyKind::Parallel,
            SimOptions { mode, ..SimOptions::default() },
        );
        sim.run(&t, 60_000_000);
        prop_assert_eq!(sim.tracker().completed_count(), t.len(), "{:?}", mode);
    }
}

#[test]
fn selective_relay_conserves_bytes() {
    let t = trace(0.5, 400_000, 77);
    let mut sim = NegotiatorSim::with_options(
        NegotiatorConfig::paper_default(NetworkConfig::small_for_tests()),
        TopologyKind::ThinClos,
        SimOptions {
            selective_relay: true,
            ..SimOptions::default()
        },
    );
    sim.run(&t, 120_000_000);
    assert_eq!(sim.tracker().completed_count(), t.len());
    assert_eq!(sim.tracker().delivered_payload(), t.total_bytes());
}

#[test]
fn engines_are_deterministic_end_to_end() {
    let t = trace(0.6, 400_000, 5);
    let run_nego = || {
        let mut sim = NegotiatorSim::new(
            NegotiatorConfig::paper_default(NetworkConfig::small_for_tests()),
            TopologyKind::Parallel,
        );
        let mut rep = sim.run(&t, 2_000_000);
        (rep.mice.p99_ns(), rep.goodput.delivered_bytes)
    };
    assert_eq!(run_nego(), run_nego());

    let run_oblv = || {
        let mut sim = ObliviousSim::new(
            ObliviousConfig::paper_default(NetworkConfig::small_for_tests()),
            TopologyKind::ThinClos,
        );
        let mut rep = sim.run(&t, 2_000_000);
        (rep.mice.p99_ns(), rep.goodput.delivered_bytes)
    };
    assert_eq!(run_oblv(), run_oblv());
}
