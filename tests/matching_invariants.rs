//! Property-based tests of the core scheduling invariants, across random
//! network sizes, request patterns and seeds.
//!
//! The one invariant everything rests on (§3.2): whatever the demand
//! pattern, the REQUEST → GRANT → ACCEPT pipeline must emit a matching
//! that is physically realizable on the bufferless fabric — no egress
//! port double-booked, no ingress port hearing two lasers, no
//! unreachable path.

use negotiator::matching::{AcceptArbiter, Grant, GrantArbiter};
use negotiator::rings::Ring;
use negotiator::variants::iterative::IterativeMatcher;
use proptest::prelude::*;
use sim::Xoshiro256;
use topology::{validate_matching, AnyTopology, MatchEntry, NetworkConfig, Topology, TopologyKind};

/// A random but always-valid network shape (thin-clos needs n_tors to be
/// a multiple of n_ports).
fn arb_net() -> impl Strategy<Value = NetworkConfig> {
    (2usize..=8, 2usize..=8).prop_map(|(ports, groups)| NetworkConfig {
        n_tors: ports * groups,
        n_ports: ports,
        ..NetworkConfig::small_for_tests()
    })
}

fn arb_kind() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![Just(TopologyKind::Parallel), Just(TopologyKind::ThinClos)]
}

/// Run one full GRANT/ACCEPT cycle over an arbitrary request matrix.
fn one_cycle(
    topo: &AnyTopology,
    requests: &[Vec<usize>],
    seed: u64,
    rounds: usize,
) -> Vec<MatchEntry> {
    let n = topo.net().n_tors;
    let s = topo.net().n_ports;
    let mut rng = Xoshiro256::new(seed);
    let mut grant_arbs: Vec<GrantArbiter> = (0..n)
        .map(|d| GrantArbiter::new(topo, d, &mut rng))
        .collect();
    let mut accept_arbs: Vec<AcceptArbiter> = (0..n)
        .map(|t| AcceptArbiter::new(topo, t, &mut rng))
        .collect();
    if rounds > 1 {
        let accepted =
            IterativeMatcher::compute(topo, requests, &mut grant_arbs, &mut accept_arbs, rounds);
        return accepted
            .iter()
            .enumerate()
            .flat_map(|(src, v)| {
                v.iter().map(move |a| MatchEntry {
                    src,
                    port: a.port,
                    dst: a.dst,
                })
            })
            .collect();
    }
    let mut grants_by_src: Vec<Vec<Grant>> = vec![Vec::new(); n];
    for dst in 0..n {
        for (src, port) in grant_arbs[dst].grant(s, &requests[dst], |_, _| true) {
            grants_by_src[src].push(Grant { dst, port });
        }
    }
    let mut out = Vec::new();
    for src in 0..n {
        for a in accept_arbs[src].accept(s, &grants_by_src[src], |_, _| true) {
            out.push(MatchEntry {
                src,
                port: a.port,
                dst: a.dst,
            });
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any request pattern on any topology yields a collision-free matching.
    #[test]
    fn matching_is_always_collision_free(
        net in arb_net(),
        kind in arb_kind(),
        seed in any::<u64>(),
        density in 0.05f64..1.0,
    ) {
        let topo = AnyTopology::build(kind, net.clone());
        let n = net.n_tors;
        let mut rng = Xoshiro256::new(seed);
        let requests: Vec<Vec<usize>> = (0..n)
            .map(|dst| {
                (0..n)
                    .filter(|&src| src != dst && rng.next_f64() < density)
                    .collect()
            })
            .collect();
        let matches = one_cycle(&topo, &requests, seed ^ 0xA5, 1);
        prop_assert!(validate_matching(&topo, &matches).is_ok());
        // Every match must answer an actual request.
        for m in &matches {
            prop_assert!(requests[m.dst].contains(&m.src));
        }
    }

    /// Iterative matching (any round count) stays collision-free and
    /// never matches fewer ports than it did the round before.
    #[test]
    fn iterative_matching_is_monotone_and_valid(
        net in arb_net(),
        kind in arb_kind(),
        seed in any::<u64>(),
        rounds in 1usize..=5,
    ) {
        let topo = AnyTopology::build(kind, net.clone());
        let n = net.n_tors;
        let requests: Vec<Vec<usize>> = (0..n)
            .map(|dst| (0..n).filter(|&s| s != dst).collect())
            .collect();
        let one = one_cycle(&topo, &requests, seed, 1);
        let many = one_cycle(&topo, &requests, seed, rounds);
        prop_assert!(validate_matching(&topo, &many).is_ok());
        prop_assert!(many.len() >= one.len().min(many.len()));
    }

    /// The predefined phase connects every ordered pair exactly once per
    /// round, collision-free, under any rotation — for any fabric shape.
    #[test]
    fn predefined_round_is_perfect(
        net in arb_net(),
        kind in arb_kind(),
        rot in 0u64..64,
    ) {
        let topo = AnyTopology::build(kind, net.clone());
        let n = net.n_tors;
        let s = net.n_ports;
        let mut pair_count = vec![0u32; n * n];
        for slot in 0..topo.predefined_slots() {
            let mut ingress = vec![false; n * s];
            for tor in 0..n {
                for port in 0..s {
                    if let Some(dst) = topo.predefined_dst(rot, slot, tor, port) {
                        prop_assert_ne!(dst, tor);
                        prop_assert_eq!(topo.predefined_src(rot, slot, dst, port), Some(tor));
                        pair_count[tor * n + dst] += 1;
                        let key = dst * s + port;
                        prop_assert!(!ingress[key], "ingress collision");
                        ingress[key] = true;
                    }
                }
            }
        }
        for src in 0..n {
            for dst in 0..n {
                let expect = u32::from(src != dst);
                prop_assert_eq!(pair_count[src * n + dst], expect,
                    "pair ({}, {}) seen {} times", src, dst, pair_count[src * n + dst]);
            }
        }
    }

    /// Ring arbiters never pick non-candidates and never starve a
    /// persistent candidate.
    #[test]
    fn ring_is_fair_and_sound(
        members in prop::collection::btree_set(0usize..64, 2..32),
        seed in any::<u64>(),
    ) {
        let members: Vec<usize> = members.into_iter().collect();
        let mut rng = Xoshiro256::new(seed);
        let mut ring = Ring::new(members.clone(), &mut rng);
        let candidates: Vec<usize> = members.iter().copied().step_by(2).collect();
        let mut counts = std::collections::BTreeMap::new();
        let rounds = candidates.len() * 10;
        for _ in 0..rounds {
            let pick = ring.pick(&candidates).expect("candidates exist");
            prop_assert!(candidates.contains(&pick));
            *counts.entry(pick).or_insert(0usize) += 1;
        }
        // Perfect round-robin: every persistent candidate is served the
        // same number of times (up to the partial first lap).
        let min = counts.values().min().copied().unwrap_or(0);
        let max = counts.values().max().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "counts {:?}", counts);
        prop_assert_eq!(counts.len(), candidates.len());
    }

    /// Thin-clos structure: each ordered pair is reachable through exactly
    /// one port, and grant scopes partition the sources.
    #[test]
    fn thin_clos_single_path(net in arb_net(), dst_pick in any::<u64>()) {
        let topo = AnyTopology::build(TopologyKind::ThinClos, net.clone());
        let n = net.n_tors;
        let dst = (dst_pick % n as u64) as usize;
        let mut covered = vec![0u32; n];
        for port in 0..net.n_ports {
            for src in topo.grant_scope(dst, port) {
                prop_assert!(topo.port_reaches(src, port, dst));
                covered[src] += 1;
            }
        }
        for (src, &c) in covered.iter().enumerate() {
            prop_assert_eq!(c, u32::from(src != dst));
        }
    }
}
