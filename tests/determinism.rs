//! Same seed, same report: the whole pipeline — RNG, workload synthesis,
//! and both simulation engines — must be bit-for-bit reproducible from a
//! seed alone. Guards the portability promise in `crates/sim/src/rng.rs`
//! and lets experiment results be cited by (config, seed) pairs.

use negotiator::{NegotiatorConfig, NegotiatorSim, SchedulerMode, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};
use sim::Xoshiro256;
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, FlowTrace, PoissonWorkload, WorkloadSpec};

const DURATION: u64 = 150_000;

fn trace(seed: u64) -> FlowTrace {
    PoissonWorkload::new(WorkloadSpec {
        dist: FlowSizeDist::hadoop(),
        load: 0.6,
        n_tors: 16,
        host_bps: 200_000_000_000,
    })
    .generate(DURATION, seed)
}

/// xoshiro256++ seeded via splitmix64 produces these exact streams; the
/// vectors pin the generator across rustc versions and refactors. The
/// seed-0 vector matches the Blackman–Vigna reference implementation.
#[test]
fn xoshiro_golden_vectors() {
    let cases: [(u64, [u64; 5]); 3] = [
        (
            0,
            [
                0x53175D61490B23DF,
                0x61DA6F3DC380D507,
                0x5C0FDF91EC9A7BFC,
                0x02EEBF8C3BBE5E1A,
                0x7ECA04EBAF4A5EEA,
            ],
        ),
        (
            42,
            [
                0xD0764D4F4476689F,
                0x519E4174576F3791,
                0xFBE07CFB0C24ED8C,
                0xB37D9F600CD835B8,
                0xCB231C3874846A73,
            ],
        ),
        (
            0xDEADBEEF,
            [
                0x0C520EB8FEA98EDE,
                0x2B74A6338B80E0E2,
                0xBE238770C3795322,
                0x5F235F98A244EA97,
                0xE004F0CC1514D858,
            ],
        ),
    ];
    for (seed, expect) in cases {
        let mut rng = Xoshiro256::new(seed);
        for (i, want) in expect.into_iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "seed {seed} output {i}");
        }
    }
}

/// Workload synthesis is a pure function of (spec, duration, seed).
#[test]
fn poisson_trace_is_reproducible() {
    let a = trace(7);
    let b = trace(7);
    assert!(!a.is_empty(), "test needs a non-trivial trace");
    assert_eq!(a, b);
    assert_ne!(a, trace(8), "different seeds should differ");
}

/// Two NegotiatorSim runs from the same config and trace produce an
/// identical `RunReport`, on both topologies.
#[test]
fn negotiator_report_is_reproducible() {
    let t = trace(21);
    for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
        let run = || {
            let cfg = NegotiatorConfig::paper_default(NetworkConfig::small_for_tests());
            NegotiatorSim::new(cfg, kind).run(&t, DURATION)
        };
        let (a, b) = (run(), run());
        assert!(a.goodput.delivered_bytes > 0, "{kind:?}: nothing delivered");
        assert_eq!(a, b, "{kind:?}: reports diverged across identical runs");
    }
}

/// The appendix variants are deterministic too (they carry extra state).
#[test]
fn variant_reports_are_reproducible() {
    let t = trace(33);
    for mode in [
        SchedulerMode::Iterative { rounds: 2 },
        SchedulerMode::DataSize,
        SchedulerMode::HolDelay { alpha: 0.001 },
    ] {
        let run = || {
            let cfg = NegotiatorConfig::paper_default(NetworkConfig::small_for_tests());
            let opts = SimOptions {
                mode,
                ..SimOptions::default()
            };
            NegotiatorSim::with_options(cfg, TopologyKind::Parallel, opts).run(&t, DURATION)
        };
        assert_eq!(run(), run(), "{mode:?}: reports diverged");
    }
}

/// The tentpole guarantee of the intra-run parallel engine: any
/// `--workers` count produces the very same `RunReport` as the
/// sequential engine, on both topologies. Worker counts above the shard
/// count (here 8 > 16 ToRs / 2) exercise the clamp too.
#[test]
fn negotiator_report_is_identical_at_any_worker_count() {
    let t = trace(21);
    for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
        let run = |workers: usize| {
            let cfg = NegotiatorConfig::paper_default(NetworkConfig::small_for_tests());
            let opts = SimOptions {
                workers,
                ..SimOptions::default()
            };
            NegotiatorSim::with_options(cfg, kind, opts).run(&t, DURATION)
        };
        let sequential = run(1);
        assert!(
            sequential.goodput.delivered_bytes > 0,
            "{kind:?}: nothing delivered"
        );
        for workers in [2, 3, 8] {
            assert_eq!(
                sequential,
                run(workers),
                "{kind:?}: {workers} workers diverged from sequential"
            );
        }
    }
}

/// Every scheduler variant shards the same way — the parallel phase
/// bodies replicate each mode's grant/request logic, so each mode must
/// hold the byte-identity promise on its own.
#[test]
fn variant_reports_are_identical_at_any_worker_count() {
    let t = trace(33);
    for mode in [
        SchedulerMode::Iterative { rounds: 2 },
        SchedulerMode::DataSize,
        SchedulerMode::HolDelay { alpha: 0.001 },
        SchedulerMode::Stateful,
        SchedulerMode::Projector,
    ] {
        let run = |workers: usize| {
            let cfg = NegotiatorConfig::paper_default(NetworkConfig::small_for_tests());
            let opts = SimOptions {
                mode,
                workers,
                ..SimOptions::default()
            };
            NegotiatorSim::with_options(cfg, TopologyKind::Parallel, opts).run(&t, DURATION)
        };
        assert_eq!(run(1), run(4), "{mode:?}: 4 workers diverged");
    }
}

/// A run that crosses failure epochs mixes engine paths — epoch-start
/// steps stay sharded while the predefined phase falls back to the
/// sequential observation loop — and must still be worker-independent.
#[test]
fn failure_runs_are_identical_at_any_worker_count() {
    use negotiator::FailureAction;
    let t = trace(44);
    let run = |workers: usize| {
        let cfg = NegotiatorConfig::paper_default(NetworkConfig::small_for_tests());
        let opts = SimOptions {
            workers,
            ..SimOptions::default()
        };
        let mut sim = NegotiatorSim::with_options(cfg, TopologyKind::Parallel, opts);
        let epoch = sim.epoch_len();
        sim.schedule_failure(
            10 * epoch,
            FailureAction::FailRandom {
                ratio: 0.2,
                seed: 5,
            },
        );
        sim.schedule_failure(30 * epoch, FailureAction::RepairAll);
        sim.run(&t, DURATION)
    };
    let sequential = run(1);
    assert_eq!(sequential, run(8), "8 workers diverged across failures");
}

/// The oblivious baseline is reproducible as well.
#[test]
fn oblivious_report_is_reproducible() {
    let t = trace(55);
    let run = || {
        let cfg = ObliviousConfig::paper_default(NetworkConfig::small_for_tests());
        ObliviousSim::new(cfg, TopologyKind::ThinClos).run(&t, DURATION)
    };
    let (a, b) = (run(), run());
    assert!(a.goodput.delivered_bytes > 0, "nothing delivered");
    assert_eq!(a, b);
}
