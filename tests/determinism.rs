//! Same seed, same report: the whole pipeline — RNG, workload synthesis,
//! and both simulation engines — must be bit-for-bit reproducible from a
//! seed alone. Guards the portability promise in `crates/sim/src/rng.rs`
//! and lets experiment results be cited by (config, seed) pairs.

use negotiator::{NegotiatorConfig, NegotiatorSim, SchedulerMode, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};
use sim::Xoshiro256;
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, FlowTrace, PoissonWorkload, WorkloadSpec};

const DURATION: u64 = 150_000;

fn trace(seed: u64) -> FlowTrace {
    PoissonWorkload::new(WorkloadSpec {
        dist: FlowSizeDist::hadoop(),
        load: 0.6,
        n_tors: 16,
        host_bps: 200_000_000_000,
    })
    .generate(DURATION, seed)
}

/// xoshiro256++ seeded via splitmix64 produces these exact streams; the
/// vectors pin the generator across rustc versions and refactors. The
/// seed-0 vector matches the Blackman–Vigna reference implementation.
#[test]
fn xoshiro_golden_vectors() {
    let cases: [(u64, [u64; 5]); 3] = [
        (
            0,
            [
                0x53175D61490B23DF,
                0x61DA6F3DC380D507,
                0x5C0FDF91EC9A7BFC,
                0x02EEBF8C3BBE5E1A,
                0x7ECA04EBAF4A5EEA,
            ],
        ),
        (
            42,
            [
                0xD0764D4F4476689F,
                0x519E4174576F3791,
                0xFBE07CFB0C24ED8C,
                0xB37D9F600CD835B8,
                0xCB231C3874846A73,
            ],
        ),
        (
            0xDEADBEEF,
            [
                0x0C520EB8FEA98EDE,
                0x2B74A6338B80E0E2,
                0xBE238770C3795322,
                0x5F235F98A244EA97,
                0xE004F0CC1514D858,
            ],
        ),
    ];
    for (seed, expect) in cases {
        let mut rng = Xoshiro256::new(seed);
        for (i, want) in expect.into_iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "seed {seed} output {i}");
        }
    }
}

/// Workload synthesis is a pure function of (spec, duration, seed).
#[test]
fn poisson_trace_is_reproducible() {
    let a = trace(7);
    let b = trace(7);
    assert!(!a.is_empty(), "test needs a non-trivial trace");
    assert_eq!(a, b);
    assert_ne!(a, trace(8), "different seeds should differ");
}

/// Two NegotiatorSim runs from the same config and trace produce an
/// identical `RunReport`, on both topologies.
#[test]
fn negotiator_report_is_reproducible() {
    let t = trace(21);
    for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
        let run = || {
            let cfg = NegotiatorConfig::paper_default(NetworkConfig::small_for_tests());
            NegotiatorSim::new(cfg, kind).run(&t, DURATION)
        };
        let (a, b) = (run(), run());
        assert!(a.goodput.delivered_bytes > 0, "{kind:?}: nothing delivered");
        assert_eq!(a, b, "{kind:?}: reports diverged across identical runs");
    }
}

/// The appendix variants are deterministic too (they carry extra state).
#[test]
fn variant_reports_are_reproducible() {
    let t = trace(33);
    for mode in [
        SchedulerMode::Iterative { rounds: 2 },
        SchedulerMode::DataSize,
        SchedulerMode::HolDelay { alpha: 0.001 },
    ] {
        let run = || {
            let cfg = NegotiatorConfig::paper_default(NetworkConfig::small_for_tests());
            let opts = SimOptions {
                mode,
                ..SimOptions::default()
            };
            NegotiatorSim::with_options(cfg, TopologyKind::Parallel, opts).run(&t, DURATION)
        };
        assert_eq!(run(), run(), "{mode:?}: reports diverged");
    }
}

/// The oblivious baseline is reproducible as well.
#[test]
fn oblivious_report_is_reproducible() {
    let t = trace(55);
    let run = || {
        let cfg = ObliviousConfig::paper_default(NetworkConfig::small_for_tests());
        ObliviousSim::new(cfg, TopologyKind::ThinClos).run(&t, DURATION)
    };
    let (a, b) = (run(), run());
    assert!(a.goodput.delivered_bytes > 0, "nothing delivered");
    assert_eq!(a, b);
}
