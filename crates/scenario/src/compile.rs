//! Scenario compilation: a validated [`ScenarioSpec`] becomes the three
//! inputs a deterministic run needs — one merged, time-sorted
//! [`FlowTrace`] covering every phase, a timed [`FailureAction`] list for
//! the engines' failure schedules, and the phase-boundary times the
//! [`metrics::PhaseProbe`] snapshots at. Compilation is pure: the same
//! spec (and trace files) always yields the same inputs, which is what
//! extends the sweep engine's `--jobs` byte-identity guarantee to
//! scenarios.

use std::path::Path;
use std::sync::Arc;

use crate::spec::{EventAction, ScenarioSpec, WorkloadPhase};
use negotiator::NegotiatorConfig;
use sim::time::Nanos;
use topology::{AnyTopology, FailureAction, FaultAction, Topology};
use workload::{
    load_trace, AllToAllWorkload, Flow, FlowTrace, IncastWorkload, PoissonWorkload, WorkloadSpec,
};

/// A scenario compiled down to simulator inputs.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// The validated spec this was compiled from.
    pub spec: ScenarioSpec,
    /// NegotiaToR epoch length on this fabric — the scenario's time unit.
    /// Both engines share these absolute boundaries, so their series align.
    pub epoch_len: Nanos,
    /// Simulated horizon: `total_epochs · epoch_len`.
    pub duration: Nanos,
    /// Every phase's flows, merged and time-sorted (shared across runs).
    pub trace: Arc<FlowTrace>,
    /// The event timeline as engine failure-schedule entries.
    pub failures: Vec<(Nanos, FailureAction)>,
    /// The adversarial timeline as engine fault-schedule entries: phase
    /// `faults` blocks (start at phase start, stop at phase end) merged
    /// with `inject` events, stably sorted by time so a phase's stops
    /// land before the next phase's starts at a shared boundary.
    pub injections: Vec<(Nanos, FaultAction)>,
    /// Phase-end times, strictly increasing — the probe's boundaries.
    pub boundaries: Vec<Nanos>,
}

/// Compile `spec`. `base_dir` anchors relative trace paths (the scenario
/// file's directory). Trace problems — unreadable file, malformed line,
/// out-of-range ToR — are the one error class that can outlive spec
/// validation, and they too fail here, before any simulation starts.
pub fn compile(spec: ScenarioSpec, base_dir: &Path) -> Result<CompiledScenario, String> {
    let topo = AnyTopology::build(spec.topology, spec.net.clone());
    let epoch_len = NegotiatorConfig::paper_default(spec.net.clone())
        .epoch
        .epoch_len(topo.predefined_slots());
    let duration = spec.total_epochs() * epoch_len;

    let mut flows: Vec<Flow> = Vec::new();
    for (i, phase) in spec.phases.iter().enumerate() {
        let start_ns = phase.start_epoch * epoch_len;
        let end_ns = phase.end_epoch * epoch_len;
        let phase_len = end_ns - start_ns;
        // Every phase draws from its own deterministic seed lane.
        let seed = spec.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match &phase.workload {
            WorkloadPhase::Poisson { dist, load } => {
                let trace = PoissonWorkload::new(WorkloadSpec {
                    dist: dist.clone(),
                    load: *load,
                    n_tors: spec.net.n_tors,
                    host_bps: spec.net.host_bandwidth.bps(),
                })
                .generate(phase_len, seed);
                flows.extend(offset(trace, start_ns));
            }
            WorkloadPhase::Incast {
                degree,
                flow_bytes,
                every_epochs,
            } => {
                let step = every_epochs.map(|e| e * epoch_len);
                let mut at = start_ns;
                let mut burst = 0u64;
                loop {
                    let trace = IncastWorkload {
                        degree: *degree,
                        flow_bytes: *flow_bytes,
                        n_tors: spec.net.n_tors,
                        start: at,
                    }
                    .generate(seed.wrapping_add(burst));
                    flows.extend(trace.flows().iter().copied());
                    match step {
                        Some(step) if at + step < end_ns => {
                            at += step;
                            burst += 1;
                        }
                        _ => break,
                    }
                }
            }
            WorkloadPhase::AllToAll { flow_bytes } => {
                let trace = AllToAllWorkload {
                    flow_bytes: *flow_bytes,
                    n_tors: spec.net.n_tors,
                    start: start_ns,
                }
                .generate();
                flows.extend(trace.flows().iter().copied());
            }
            WorkloadPhase::Trace { path } => {
                let full = base_dir.join(path);
                let trace = load_trace(&full)
                    .map_err(|e| format!("phase '{}': {}: {e}", phase.label, full.display()))?;
                for (k, f) in trace.flows().iter().enumerate() {
                    if f.src >= spec.net.n_tors || f.dst >= spec.net.n_tors {
                        return Err(format!(
                            "phase '{}': {}: flow #{k} uses ToR {} but the fabric has {} ToRs",
                            phase.label,
                            full.display(),
                            f.src.max(f.dst),
                            spec.net.n_tors
                        ));
                    }
                }
                // Trace arrivals are relative to the phase start; flows
                // landing past the phase end are dropped.
                flows.extend(
                    trace
                        .flows()
                        .iter()
                        .filter(|f| f.arrival < phase_len)
                        .map(|f| Flow {
                            arrival: f.arrival + start_ns,
                            ..*f
                        }),
                );
            }
        }
    }

    let mut failures = Vec::new();
    let mut injections: Vec<(Nanos, FaultAction)> = Vec::new();
    // Phase faults first, walking phases in order: a phase's stop entries
    // are pushed before the next phase's starts at the same boundary, and
    // the stable sort below preserves that insertion order (which is the
    // order `FaultModel::schedule` applies equal-time actions in).
    for phase in &spec.phases {
        let start_ns = phase.start_epoch * epoch_len;
        let end_ns = phase.end_epoch * epoch_len;
        for fault in &phase.faults {
            injections.push((start_ns, fault.to_action(epoch_len)));
            if let Some(stop) = fault.stop_action() {
                injections.push((end_ns, stop));
            }
        }
    }
    for event in &spec.events {
        let at = event.at_epoch * epoch_len;
        match &event.action {
            EventAction::FailLinks(links) => {
                for &(tor, port, dir) in links {
                    failures.push((at, FailureAction::FailLink { tor, port, dir }));
                }
            }
            EventAction::RepairLinks => failures.push((at, FailureAction::RepairAll)),
            EventAction::FailRandom { ratio, seed } => failures.push((
                at,
                FailureAction::FailRandom {
                    ratio: *ratio,
                    seed: *seed,
                },
            )),
            EventAction::Inject(inject) => injections.push((at, inject.to_action(epoch_len))),
        }
    }
    injections.sort_by_key(|&(at, _)| at);

    let boundaries = spec
        .phases
        .iter()
        .map(|p| p.end_epoch * epoch_len)
        .collect();
    Ok(CompiledScenario {
        epoch_len,
        duration,
        trace: Arc::new(FlowTrace::new(flows)),
        failures,
        injections,
        boundaries,
        spec,
    })
}

fn offset(trace: FlowTrace, start_ns: Nanos) -> Vec<Flow> {
    trace
        .flows()
        .iter()
        .map(|f| Flow {
            arrival: f.arrival + start_ns,
            ..*f
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_scenario;

    fn spec(phases_events: &str) -> ScenarioSpec {
        parse_scenario(&format!(
            r#"{{
  "name": "c", "topology": "parallel", "tors": 16, "ports": 4,
  {phases_events}
}}"#
        ))
        .unwrap()
    }

    #[test]
    fn phases_tile_the_trace_and_boundaries() {
        let s = spec(
            r#""phases": [
    {"workload": "poisson", "load": 50, "epochs": [0, 100]},
    {"workload": "incast", "degree": 8, "flow_bytes": 1000, "epochs": [100, 120]},
    {"workload": "poisson", "load": 25, "epochs": [120, 200]}
  ]"#,
        );
        let c = compile(s, Path::new(".")).unwrap();
        assert_eq!(c.boundaries.len(), 3);
        assert_eq!(c.duration, 200 * c.epoch_len);
        assert_eq!(c.boundaries[2], c.duration);
        // The incast burst arrives exactly at its phase start.
        let burst: Vec<_> = c
            .trace
            .flows()
            .iter()
            .filter(|f| f.arrival == 100 * c.epoch_len)
            .collect();
        assert_eq!(burst.len(), 8);
        // All arrivals stay inside the horizon.
        assert!(c.trace.flows().iter().all(|f| f.arrival < c.duration));
    }

    #[test]
    fn repeated_incast_bursts() {
        let s = spec(
            r#""phases": [
    {"workload": "incast", "degree": 4, "flow_bytes": 1000,
     "every_epochs": 10, "epochs": [0, 35]}
  ]"#,
        );
        let c = compile(s, Path::new(".")).unwrap();
        // Bursts at epochs 0, 10, 20, 30.
        assert_eq!(c.trace.len(), 4 * 4);
    }

    #[test]
    fn events_become_failure_actions_in_time_order() {
        let s = spec(
            r#""phases": [{"workload": "poisson", "load": 50, "epochs": [0, 100]}],
  "events": [
    {"at_epoch": 60, "action": "repair_links"},
    {"at_epoch": 20, "action": "fail_links",
     "links": [{"tor": 1, "port": 0, "dir": "egress"},
               {"tor": 2, "port": 1, "dir": "ingress"}]},
    {"at_epoch": 40, "action": "fail_random", "ratio": 0.1}
  ]"#,
        );
        let c = compile(s, Path::new(".")).unwrap();
        assert_eq!(c.failures.len(), 4, "two links + random + repair");
        assert!(c.failures.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(matches!(
            c.failures[0].1,
            FailureAction::FailLink { tor: 1, .. }
        ));
        assert!(matches!(c.failures[3].1, FailureAction::RepairAll));
    }

    #[test]
    fn phase_faults_and_inject_events_merge_in_stable_time_order() {
        let s = spec(
            r#""phases": [
    {"workload": "poisson", "load": 50, "epochs": [0, 50],
     "faults": {"gray": {"drop_prob": 0.5}}},
    {"workload": "poisson", "load": 50, "epochs": [50, 100],
     "faults": {"greedy": {"tors": [2]}}}
  ],
  "events": [
    {"at_epoch": 50, "inject": {"kind": "partition", "groups": 2}},
    {"at_epoch": 75, "inject": {"kind": "heal"}}
  ]"#,
        );
        let c = compile(s, Path::new(".")).unwrap();
        // gray start@0, [gray stop, greedy start, partition]@50·len,
        // heal@75·len, greedy stop@100·len — stops before the next
        // phase's starts at the shared boundary, events after both.
        let kinds: Vec<(Nanos, &'static str)> = c
            .injections
            .iter()
            .map(|(at, a)| {
                (
                    *at,
                    match a {
                        FaultAction::GrayStart { .. } => "gray+",
                        FaultAction::GrayStop => "gray-",
                        FaultAction::GreedyStart { .. } => "greedy+",
                        FaultAction::GreedyStop => "greedy-",
                        FaultAction::Partition(_) => "part+",
                        FaultAction::Heal => "part-",
                        _ => "other",
                    },
                )
            })
            .collect();
        let e = c.epoch_len;
        assert_eq!(
            kinds,
            vec![
                (0, "gray+"),
                (50 * e, "gray-"),
                (50 * e, "greedy+"),
                (50 * e, "part+"),
                (75 * e, "part-"),
                (100 * e, "greedy-"),
            ]
        );
        // Epoch-denominated flap durations convert at the epoch length.
        let s = spec(
            r#""phases": [{"workload": "poisson", "load": 50, "epochs": [0, 50]}],
  "events": [{"at_epoch": 5, "inject": {"kind": "flap_start", "ratio": 0.2,
              "up_epochs": 3, "down_epochs": 2}}]"#,
        );
        let c = compile(s, Path::new(".")).unwrap();
        assert!(matches!(
            c.injections[0],
            (at, FaultAction::FlapStart { up, down, .. })
                if at == 5 * c.epoch_len && up == 3 * c.epoch_len && down == 2 * c.epoch_len
        ));
    }

    #[test]
    fn same_spec_compiles_identically() {
        let build = || {
            let s = spec(r#""phases": [{"workload": "poisson", "load": 80, "epochs": [0, 50]}]"#);
            compile(s, Path::new(".")).unwrap()
        };
        let (a, b) = (build(), build());
        assert_eq!(a.trace.flows(), b.trace.flows());
        assert_eq!(a.boundaries, b.boundaries);
    }

    #[test]
    fn missing_trace_file_fails_at_compile_time() {
        let s =
            spec(r#""phases": [{"workload": "trace", "path": "no_such.tsv", "epochs": [0, 10]}]"#);
        let err = compile(s, Path::new("/nonexistent")).unwrap_err();
        assert!(err.contains("no_such.tsv"), "{err}");
    }
}
