//! Per-phase time-series derivation.
//!
//! The engines only snapshot cheap cumulative counters at phase
//! boundaries ([`metrics::PhaseSnapshot`]); everything a phase reports —
//! goodput over the phase, FCT percentiles of the flows that completed in
//! it, the phase's match ratio, the backlog left at its end — is derived
//! here after the run, from those snapshots plus the per-flow tracker.

use crate::compile::CompiledScenario;
use metrics::{FlowTracker, Json, PhaseSnapshot, Table};
use sim::stats::Cdf;
use sim::time::Nanos;
use workload::FlowTrace;

/// One phase's row of the time series.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase label from the spec.
    pub label: String,
    /// First epoch of the phase.
    pub start_epoch: u64,
    /// One past the last epoch.
    pub end_epoch: u64,
    /// Phase start in ns.
    pub start_ns: Nanos,
    /// Phase end in ns.
    pub end_ns: Nanos,
    /// Payload bytes delivered during the phase.
    pub delivered_bytes: u64,
    /// Phase goodput normalized to the host aggregate (1.0 = every ToR
    /// receives at full host rate for the whole phase).
    pub goodput_normalized: f64,
    /// Median FCT of flows completing in the phase (`None` if none did).
    pub fct_p50_ns: Option<f64>,
    /// 99th-percentile FCT of flows completing in the phase.
    pub fct_p99_ns: Option<f64>,
    /// Flows that completed during the phase.
    pub completed: usize,
    /// Accepts/grants within the phase (`None` for schedule-free engines
    /// or idle phases).
    pub match_ratio: Option<f64>,
    /// Bytes still queued when the phase ended.
    pub backlog_bytes: u64,
    /// Control messages dropped by gray failures during the phase (always
    /// 0 for the oblivious engine, which has no control plane).
    pub control_dropped: u64,
    /// Directed links the fault detector excluded without a ground-truth
    /// failure, at the phase end (false positives — gray failures cause
    /// these).
    pub detector_fp_links: u64,
    /// Ground-truth-failed directed links the detector had not excluded at
    /// the phase end (false negatives — detection lag causes these).
    pub detector_fn_links: u64,
    /// ToRs cut off from the largest connected group at the phase end
    /// (0 when unpartitioned).
    pub partitioned_tors: u64,
}

/// Derive the per-phase stats of one run from its boundary `snapshots`
/// (one per phase, in order) and the completed `tracker`.
pub fn phase_stats(
    compiled: &CompiledScenario,
    trace: &FlowTrace,
    tracker: &FlowTracker,
    snapshots: &[PhaseSnapshot],
) -> Vec<PhaseStat> {
    let phases = &compiled.spec.phases;
    assert_eq!(
        snapshots.len(),
        phases.len(),
        "one snapshot per phase boundary"
    );
    let host_bps = compiled.spec.net.host_bandwidth.bps();
    let n_tors = compiled.spec.net.n_tors;
    // One pass over the trace buckets every completion into its phase
    // (phases tile the timeline from 0, so a completion before boundary
    // `i` belongs to phase `i`; anything at or past the last boundary —
    // final deliveries carry timestamps just past `duration` — belongs
    // to the last phase, whose snapshot already counts it).
    let mut cdfs: Vec<Cdf> = phases.iter().map(|_| Cdf::new()).collect();
    let mut completed_per_phase = vec![0usize; phases.len()];
    for f in trace.flows() {
        if let Some(done) = tracker.completion(f.id) {
            let i = compiled
                .boundaries
                .partition_point(|&b| b <= done)
                .min(phases.len() - 1);
            cdfs[i].record((done - f.arrival) as f64);
            completed_per_phase[i] += 1;
        }
    }
    let mut out = Vec::with_capacity(phases.len());
    let mut prev = metrics::PhaseCounters::default();
    for (i, (phase, snap)) in phases.iter().zip(snapshots).enumerate() {
        let start_ns = phase.start_epoch * compiled.epoch_len;
        let end_ns = phase.end_epoch * compiled.epoch_len;
        let cdf = &mut cdfs[i];
        let completed = completed_per_phase[i];
        let delivered = snap.counters.delivered_bytes - prev.delivered_bytes;
        let phase_ns = (end_ns - start_ns) as f64;
        let per_tor_gbps = (delivered * 8) as f64 / phase_ns / n_tors as f64;
        let grants = snap.counters.grants - prev.grants;
        let accepts = snap.counters.accepts - prev.accepts;
        out.push(PhaseStat {
            label: phase.label.clone(),
            start_epoch: phase.start_epoch,
            end_epoch: phase.end_epoch,
            start_ns,
            end_ns,
            delivered_bytes: delivered,
            goodput_normalized: per_tor_gbps * 1e9 / host_bps as f64,
            fct_p50_ns: cdf.percentile(50.0),
            fct_p99_ns: cdf.percentile(99.0),
            completed,
            match_ratio: (grants > 0).then(|| accepts as f64 / grants as f64),
            backlog_bytes: snap.counters.backlog_bytes,
            control_dropped: snap.counters.control_dropped - prev.control_dropped,
            detector_fp_links: snap.counters.detector_fp_links,
            detector_fn_links: snap.counters.detector_fn_links,
            partitioned_tors: snap.counters.partitioned_tors,
        });
        prev = snap.counters;
    }
    out
}

/// The JSON array emitted under `metrics.series` in the results schema.
pub fn stats_to_json(stats: &[PhaseStat]) -> Json {
    Json::Arr(
        stats
            .iter()
            .map(|s| {
                let mut obj = Json::object();
                obj.push("label", s.label.as_str())
                    .push("start_epoch", s.start_epoch)
                    .push("end_epoch", s.end_epoch)
                    .push("start_ns", s.start_ns)
                    .push("end_ns", s.end_ns)
                    .push("delivered_bytes", s.delivered_bytes)
                    .push("goodput_normalized", s.goodput_normalized)
                    .push("fct_p50_ns", s.fct_p50_ns)
                    .push("fct_p99_ns", s.fct_p99_ns)
                    .push("completed", s.completed)
                    .push("match_ratio", s.match_ratio)
                    .push("backlog_bytes", s.backlog_bytes)
                    .push("control_dropped", s.control_dropped)
                    .push("detector_fp_links", s.detector_fp_links)
                    .push("detector_fn_links", s.detector_fn_links)
                    .push("partitioned_tors", s.partitioned_tors);
                obj
            })
            .collect(),
    )
}

/// The per-run text block: one table row per phase.
pub fn render_stats(system: &str, stats: &[PhaseStat]) -> String {
    let mut table = Table::new(
        format!("{system} — per-phase time series"),
        &[
            "phase",
            "epochs",
            "goodput",
            "fct_p50_ms",
            "fct_p99_ms",
            "completed",
            "match",
            "backlog_B",
            "ctl_drop",
            "det_fp",
            "det_fn",
            "part",
        ],
    );
    for s in stats {
        let opt_ms = |x: Option<f64>| x.map_or_else(|| "-".into(), |v| format!("{:.4}", v / 1e6));
        table.row(vec![
            s.label.clone(),
            format!("{}..{}", s.start_epoch, s.end_epoch),
            format!("{:.3}", s.goodput_normalized),
            opt_ms(s.fct_p50_ns),
            opt_ms(s.fct_p99_ns),
            format!("{}", s.completed),
            s.match_ratio
                .map_or_else(|| "-".into(), |r| format!("{r:.3}")),
            format!("{}", s.backlog_bytes),
            format!("{}", s.control_dropped),
            format!("{}", s.detector_fp_links),
            format!("{}", s.detector_fn_links),
            format!("{}", s.partitioned_tors),
        ]);
    }
    table.render()
}
