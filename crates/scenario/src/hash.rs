//! Stable content addressing for compiled scenarios.
//!
//! The serving daemon and the batch CLI cache scenario results by
//! content: two submissions that would produce byte-identical output must
//! map to the same key, and any input that can change a single output
//! byte must change it. Hashing the scenario *file* is not enough —
//! formatting, key order and comments-by-another-name (defaulted fields)
//! all change the bytes without changing the run — so the key is computed
//! over the **compiled** scenario: the merged flow trace, the failure
//! timeline, the phase boundaries, and every spec field that reaches the
//! rendered report (name, description, labels, engines, mode, fabric).
//!
//! The hash is a fixed FNV-1a/64 over a canonical byte encoding — not
//! `std::hash::Hasher`, whose output is explicitly unstable across
//! releases and platforms, which would silently invalidate (or worse,
//! mis-share) an on-disk cache.

use crate::compile::CompiledScenario;
use crate::spec::{EngineKind, WorkloadPhase};
use negotiator::SchedulerMode;
use topology::failures::LinkDir;
use topology::{FailureAction, FaultAction, FlapTargets, PartitionSpec};

/// Incremental FNV-1a (64-bit) over a canonical encoding. Deliberately
/// boring: stability across builds and platforms is the whole point.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: 0xCBF2_9CE4_8422_2325,
        }
    }

    /// Feed raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Feed a length-prefixed string (prefixing prevents `"ab","c"` from
    /// colliding with `"a","bc"`).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// Feed a u64 as fixed-width little-endian bytes.
    pub fn write_u64(&mut self, x: u64) -> &mut Self {
        self.write(&x.to_le_bytes())
    }

    /// Feed an f64 via its exact bit pattern.
    pub fn write_f64(&mut self, x: f64) -> &mut Self {
        self.write_u64(x.to_bits())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Render a digest the way cache files and wire messages carry it:
/// 16 lowercase hex digits.
pub fn hex(digest: u64) -> String {
    format!("{digest:016x}")
}

impl CompiledScenario {
    /// Content hash of everything that determines this scenario's output
    /// bytes. Equal hashes ⇒ byte-identical reports (modulo timing
    /// metadata, which is never cached or compared).
    pub fn content_hash(&self) -> u64 {
        let spec = &self.spec;
        let mut h = StableHasher::new();
        // A version tag so a future encoding change invalidates old cache
        // entries instead of colliding with them. v2: the adversarial
        // injection timeline joined the encoding, and the per-phase series
        // gained fault columns — every cached report's bytes changed.
        h.write_str("scenario-content-v2");
        h.write_str(&spec.name).write_str(&spec.description);
        h.write_str(spec.topology.label());
        h.write_u64(spec.net.n_tors as u64)
            .write_u64(spec.net.n_ports as u64)
            .write_u64(spec.net.port_bandwidth.bps())
            .write_u64(spec.net.host_bandwidth.bps())
            .write_u64(spec.net.propagation_delay);
        hash_mode(&mut h, spec.mode);
        h.write_u64(spec.seed);
        h.write_u64(spec.engines.len() as u64);
        for &engine in &spec.engines {
            h.write_str(engine_tag(engine));
        }
        // Phase labels and spans reach the rendered per-phase table; the
        // workload parameters themselves are captured by the merged trace
        // below, but hashing them too costs nothing and guards against a
        // future workload whose trace under-determines it.
        h.write_u64(spec.phases.len() as u64);
        for phase in &spec.phases {
            h.write_str(&phase.label)
                .write_u64(phase.start_epoch)
                .write_u64(phase.end_epoch);
            hash_workload(&mut h, &phase.workload);
        }
        h.write_u64(self.epoch_len).write_u64(self.duration);
        h.write_u64(self.boundaries.len() as u64);
        for &b in &self.boundaries {
            h.write_u64(b);
        }
        h.write_u64(self.trace.len() as u64);
        for flow in self.trace.flows() {
            h.write_u64(flow.src as u64)
                .write_u64(flow.dst as u64)
                .write_u64(flow.bytes)
                .write_u64(flow.arrival);
        }
        h.write_u64(self.failures.len() as u64);
        for (at, action) in &self.failures {
            h.write_u64(*at);
            hash_failure(&mut h, action);
        }
        h.write_u64(self.injections.len() as u64);
        for (at, action) in &self.injections {
            h.write_u64(*at);
            hash_fault(&mut h, action);
        }
        h.finish()
    }

    /// Content hash of one engine's run within this scenario — the unit
    /// the batch runner dedupes on before dispatch.
    pub fn run_hash(&self, engine: EngineKind) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("scenario-run-v1")
            .write_u64(self.content_hash())
            .write_str(engine_tag(engine));
        h.finish()
    }
}

fn engine_tag(engine: EngineKind) -> &'static str {
    match engine {
        EngineKind::Negotiator => "negotiator",
        EngineKind::Oblivious => "oblivious",
    }
}

fn hash_mode(h: &mut StableHasher, mode: SchedulerMode) {
    match mode {
        SchedulerMode::Base => {
            h.write_str("base");
        }
        SchedulerMode::Iterative { rounds } => {
            h.write_str("iterative").write_u64(rounds as u64);
        }
        SchedulerMode::DataSize => {
            h.write_str("datasize");
        }
        SchedulerMode::HolDelay { alpha } => {
            h.write_str("hol_delay").write_f64(alpha);
        }
        SchedulerMode::Stateful => {
            h.write_str("stateful");
        }
        SchedulerMode::Projector => {
            h.write_str("projector");
        }
    }
}

fn hash_workload(h: &mut StableHasher, workload: &WorkloadPhase) {
    match workload {
        WorkloadPhase::Poisson { dist, load } => {
            h.write_str("poisson")
                .write_str(dist.name())
                .write_f64(*load);
        }
        WorkloadPhase::Incast {
            degree,
            flow_bytes,
            every_epochs,
        } => {
            h.write_str("incast")
                .write_u64(*degree as u64)
                .write_u64(*flow_bytes)
                .write_u64(every_epochs.map_or(u64::MAX, |e| e));
        }
        WorkloadPhase::AllToAll { flow_bytes } => {
            h.write_str("all_to_all").write_u64(*flow_bytes);
        }
        WorkloadPhase::Trace { path } => {
            h.write_str("trace").write_str(path);
        }
    }
}

fn hash_failure(h: &mut StableHasher, action: &FailureAction) {
    match action {
        FailureAction::FailRandom { ratio, seed } => {
            h.write_str("fail_random")
                .write_f64(*ratio)
                .write_u64(*seed);
        }
        FailureAction::RepairAll => {
            h.write_str("repair_all");
        }
        FailureAction::FailLink { tor, port, dir } => {
            h.write_str("fail_link")
                .write_u64(*tor as u64)
                .write_u64(*port as u64)
                .write_str(match dir {
                    LinkDir::Egress => "egress",
                    LinkDir::Ingress => "ingress",
                });
        }
    }
}

fn hash_fault(h: &mut StableHasher, action: &FaultAction) {
    match action {
        FaultAction::FlapStart { targets, up, down } => {
            h.write_str("flap_start");
            match targets {
                FlapTargets::Links(links) => {
                    h.write_str("links").write_u64(links.len() as u64);
                    for &(tor, port, dir) in links {
                        h.write_u64(tor as u64)
                            .write_u64(port as u64)
                            .write_str(match dir {
                                LinkDir::Egress => "egress",
                                LinkDir::Ingress => "ingress",
                            });
                    }
                }
                FlapTargets::Random { ratio, seed } => {
                    h.write_str("random").write_f64(*ratio).write_u64(*seed);
                }
            }
            h.write_u64(*up).write_u64(*down);
        }
        FaultAction::FlapStop => {
            h.write_str("flap_stop");
        }
        FaultAction::Partition(spec) => {
            h.write_str("partition");
            match spec {
                PartitionSpec::Explicit(groups) => {
                    h.write_str("explicit").write_u64(groups.len() as u64);
                    for &g in groups {
                        h.write_u64(g as u64);
                    }
                }
                PartitionSpec::Random { groups, seed } => {
                    h.write_str("random")
                        .write_u64(*groups as u64)
                        .write_u64(*seed);
                }
            }
        }
        FaultAction::Heal => {
            h.write_str("heal");
        }
        FaultAction::GrayStart {
            drop_prob,
            seed,
            tors,
        } => {
            h.write_str("gray_start")
                .write_f64(*drop_prob)
                .write_u64(*seed);
            match tors {
                None => {
                    h.write_u64(u64::MAX);
                }
                Some(tors) => {
                    h.write_u64(tors.len() as u64);
                    for &t in tors {
                        h.write_u64(t as u64);
                    }
                }
            }
        }
        FaultAction::GrayStop => {
            h.write_str("gray_stop");
        }
        FaultAction::GreedyStart { tors } => {
            h.write_str("greedy_start").write_u64(tors.len() as u64);
            for &t in tors {
                h.write_u64(t as u64);
            }
        }
        FaultAction::GreedyStop => {
            h.write_str("greedy_stop");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::spec::parse_scenario;
    use std::path::Path;

    fn compiled(text: &str) -> CompiledScenario {
        compile(parse_scenario(text).unwrap(), Path::new(".")).unwrap()
    }

    fn base(name: &str, seed: u64, load: u64) -> String {
        format!(
            r#"{{
  "name": "{name}", "topology": "parallel", "tors": 16, "ports": 4,
  "seed": {seed},
  "phases": [{{"workload": "poisson", "load": {load}, "epochs": [0, 20]}}]
}}"#
        )
    }

    #[test]
    fn identical_specs_hash_identically() {
        let a = compiled(&base("same", 3, 50));
        let b = compiled(&base("same", 3, 50));
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(
            a.run_hash(EngineKind::Negotiator),
            b.run_hash(EngineKind::Negotiator)
        );
    }

    #[test]
    fn formatting_does_not_change_the_hash() {
        // Same scenario, reordered keys and different whitespace.
        let a = compiled(&base("fmt", 3, 50));
        let b = compiled(
            r#"{ "phases": [{"epochs": [0, 20], "load": 50, "workload": "poisson"}],
                 "seed": 3, "ports": 4, "tors": 16, "topology": "parallel", "name": "fmt" }"#,
        );
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn every_output_relevant_field_moves_the_hash() {
        let anchor = compiled(&base("anchor", 3, 50)).content_hash();
        for other in [
            base("renamed", 3, 50), // name reaches the report header
            base("anchor", 4, 50),  // seed changes the workload + engine RNG
            base("anchor", 3, 60),  // load changes the trace
        ] {
            assert_ne!(compiled(&other).content_hash(), anchor, "{other}");
        }
        // A description only changes the artifact line, but that line is
        // output surface too.
        let described =
            base("anchor", 3, 50).replace("\"seed\": 3,", "\"seed\": 3, \"description\": \"d\",");
        assert_ne!(compiled(&described).content_hash(), anchor);
        // Engines differ per run.
        let c = compiled(&base("anchor", 3, 50));
        assert_ne!(
            c.run_hash(EngineKind::Negotiator),
            c.run_hash(EngineKind::Oblivious)
        );
    }

    #[test]
    fn every_injection_parameter_moves_the_hash() {
        let with_events = |events: &str| {
            base("anchor", 3, 50).replace(
                "\"seed\": 3,",
                &format!("\"seed\": 3, \"events\": [{events}],"),
            )
        };
        let anchor = compiled(&with_events(
            r#"{"at_epoch": 5, "inject": {"kind": "gray_start", "drop_prob": 0.5, "seed": 7}}"#,
        ))
        .content_hash();
        assert_ne!(anchor, compiled(&base("anchor", 3, 50)).content_hash());
        for events in [
            // Timing, probability, seed, scope — each must move the key.
            r#"{"at_epoch": 6, "inject": {"kind": "gray_start", "drop_prob": 0.5, "seed": 7}}"#,
            r#"{"at_epoch": 5, "inject": {"kind": "gray_start", "drop_prob": 0.6, "seed": 7}}"#,
            r#"{"at_epoch": 5, "inject": {"kind": "gray_start", "drop_prob": 0.5, "seed": 8}}"#,
            r#"{"at_epoch": 5, "inject": {"kind": "gray_start", "drop_prob": 0.5, "seed": 7, "tors": [1]}}"#,
            r#"{"at_epoch": 5, "inject": {"kind": "flap_start", "ratio": 0.5, "seed": 7,
                "up_epochs": 2, "down_epochs": 1}}"#,
            r#"{"at_epoch": 5, "inject": {"kind": "partition", "groups": 2, "seed": 7}}"#,
            r#"{"at_epoch": 5, "inject": {"kind": "greedy_start", "tors": [2]}}"#,
        ] {
            assert_ne!(
                compiled(&with_events(events)).content_hash(),
                anchor,
                "{events}"
            );
        }
        // A phase-level faults block keys the cache the same way.
        let phased = base("anchor", 3, 50).replace(
            r#""epochs": [0, 20]}"#,
            r#""epochs": [0, 20], "faults": {"gray": {"drop_prob": 0.5, "seed": 7}}}"#,
        );
        assert_ne!(
            compiled(&phased).content_hash(),
            compiled(&base("anchor", 3, 50)).content_hash()
        );
    }

    #[test]
    fn hex_digest_is_16_lowercase_digits() {
        let c = compiled(&base("hexy", 1, 50));
        let digest = hex(c.content_hash());
        assert_eq!(digest.len(), 16);
        assert!(digest.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(digest, digest.to_lowercase());
    }

    #[test]
    fn hasher_is_order_and_boundary_sensitive() {
        let mut a = StableHasher::new();
        a.write_str("ab").write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefixes keep fields apart");
        let mut c = StableHasher::new();
        c.write_u64(1).write_u64(2);
        let mut d = StableHasher::new();
        d.write_u64(2).write_u64(1);
        assert_ne!(c.finish(), d.finish());
    }
}
