//! Deferred scenario runs: one closure per engine, each owning (or
//! `Arc`-sharing) everything it needs so the harness can wrap it into a
//! sweep `RunSpec` and execute it on any worker thread. The closure plays
//! the compiled trace through its engine with the failure schedule and
//! phase probe attached, then derives the per-phase series — returning
//! plain data, never touching shared state.

use std::sync::Arc;

use crate::compile::CompiledScenario;
use crate::series::{self, PhaseStat};
use crate::spec::EngineKind;
use metrics::{trace::FlightRecorder, PhaseProbe, RunSummary};
use negotiator::{NegotiatorConfig, NegotiatorSim, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};

/// One live progress notification: a phase boundary just passed inside a
/// running engine. Purely observational — sinks receive no counters and
/// cannot influence the run, so attaching one preserves byte-identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProgress {
    /// System label of the run reporting progress (`nego/parallel`, ...).
    pub system: String,
    /// Index of the phase that just completed (0-based).
    pub phase: usize,
    /// Total number of phases in the scenario.
    pub phases: usize,
    /// Label of the completed phase.
    pub label: String,
}

/// Shared callback the daemon hands to a run to stream per-phase progress
/// while the simulation executes on a worker thread.
pub type ProgressSink = Arc<dyn Fn(PhaseProgress) + Send + Sync>;

/// What one scenario run measured.
#[derive(Debug, Clone)]
pub struct ScenarioRunOutput {
    /// Whole-run aggregates (same digest every experiment reports).
    pub summary: RunSummary,
    /// Whole-run accepts/grants ratio (`None` for the oblivious engine).
    pub match_ratio: Option<f64>,
    /// The per-phase time series.
    pub series: Vec<PhaseStat>,
    /// The run's text block (the per-phase table).
    pub rendered: String,
    /// Flight-recorder NDJSON (only when the run was built with tracing;
    /// byte-identical at any worker count, like every other output).
    pub trace: Option<String>,
}

/// One schedulable scenario run.
pub struct ScenarioRun {
    /// System label (`nego/parallel`, `oblivious/thin-clos`, ...).
    pub system: String,
    /// The deferred simulation; call on any thread.
    pub run: Box<dyn FnOnce() -> ScenarioRunOutput + Send + 'static>,
}

/// Build the scenario's runs, one per engine in spec order. `workers` is
/// the intra-run shard worker count (`--workers`); output is
/// byte-identical at any value, so it never enters the run hash.
pub fn build_runs(compiled: &CompiledScenario, workers: usize) -> Vec<ScenarioRun> {
    build_runs_traced(compiled, None, workers, None)
}

/// [`build_runs`] with an optional live progress sink, invoked from the
/// worker thread as each engine crosses each phase boundary.
pub fn build_runs_with_progress(
    compiled: &CompiledScenario,
    progress: Option<ProgressSink>,
    workers: usize,
) -> Vec<ScenarioRun> {
    build_runs_traced(compiled, progress, workers, None)
}

/// [`build_runs_with_progress`] with the flight recorder optionally
/// attached — `trace` is its ring capacity in events (`Some` enables
/// recording): each run then fills [`ScenarioRunOutput::trace`] with its
/// NDJSON. Tracing is observational — every other output byte is
/// identical to an untraced run, and the capacity shapes only the trace
/// bytes themselves (it never reaches results, hashes or cache keys).
pub fn build_runs_traced(
    compiled: &CompiledScenario,
    progress: Option<ProgressSink>,
    workers: usize,
    trace: Option<usize>,
) -> Vec<ScenarioRun> {
    compiled
        .spec
        .engines
        .iter()
        .map(|&engine| {
            let system = engine.label(compiled.spec.topology);
            let compiled = compiled.clone(); // Arc-shared trace, cloned spec
            let sys = system.clone();
            let progress = progress.clone();
            ScenarioRun {
                system,
                run: Box::new(move || {
                    run_engine(engine, &compiled, &sys, progress, workers, trace)
                }),
            }
        })
        .collect()
}

/// Probe for this run's boundaries, wired to `progress` when present.
fn make_probe(
    compiled: &CompiledScenario,
    system: &str,
    progress: Option<ProgressSink>,
) -> PhaseProbe {
    let probe = PhaseProbe::new(compiled.boundaries.clone());
    let Some(sink) = progress else {
        return probe;
    };
    let labels: Vec<String> = compiled
        .spec
        .phases
        .iter()
        .map(|p| p.label.clone())
        .collect();
    let system = system.to_string();
    probe.with_observer(Arc::new(move |index, _at| {
        sink(PhaseProgress {
            system: system.clone(),
            phase: index,
            phases: labels.len(),
            label: labels.get(index).cloned().unwrap_or_default(),
        });
    }))
}

fn run_engine(
    engine: EngineKind,
    compiled: &CompiledScenario,
    system: &str,
    progress: Option<ProgressSink>,
    workers: usize,
    record: Option<usize>,
) -> ScenarioRunOutput {
    let spec = &compiled.spec;
    let trace = Arc::clone(&compiled.trace);
    // Engine-internal randomness (arbiter rings, VLB spray) follows the
    // scenario seed so two scenarios differing only in `seed` diverge
    // everywhere, not just in the workload.
    let engine_seed = spec.seed ^ 0xDC0C_0FFE;
    let (summary, match_ratio, series, flight) = match engine {
        EngineKind::Negotiator => {
            let mut cfg = NegotiatorConfig::paper_default(spec.net.clone());
            cfg.seed = engine_seed;
            let mut sim = NegotiatorSim::with_options(
                cfg,
                spec.topology,
                SimOptions {
                    mode: spec.mode,
                    workers,
                    ..SimOptions::default()
                },
            );
            for (at, action) in &compiled.failures {
                sim.schedule_failure(*at, action.clone());
            }
            for (at, action) in &compiled.injections {
                sim.schedule_fault(*at, action.clone());
            }
            sim.set_phase_probe(make_probe(compiled, system, progress));
            if let Some(capacity) = record {
                sim.set_recorder(FlightRecorder::with_capacity(capacity, spec.net.n_tors));
            }
            let mut report = sim.run(&trace, compiled.duration);
            let stats = series::phase_stats(
                compiled,
                &trace,
                sim.tracker(),
                sim.phase_probe().expect("probe attached").snapshots(),
            );
            (
                report.summary(),
                sim.match_recorder().overall_ratio(),
                stats,
                sim.take_recorder(),
            )
        }
        EngineKind::Oblivious => {
            let mut cfg = ObliviousConfig::paper_default(spec.net.clone());
            cfg.seed = engine_seed;
            let mut sim = ObliviousSim::new(cfg, spec.topology);
            sim.set_workers(workers);
            for (at, action) in &compiled.failures {
                sim.schedule_failure(*at, action.clone());
            }
            for (at, action) in &compiled.injections {
                sim.schedule_fault(*at, action.clone());
            }
            sim.set_phase_probe(make_probe(compiled, system, progress));
            if let Some(capacity) = record {
                sim.set_recorder(FlightRecorder::with_capacity(capacity, spec.net.n_tors));
            }
            let mut report = sim.run(&trace, compiled.duration);
            let stats = series::phase_stats(
                compiled,
                &trace,
                sim.tracker(),
                sim.phase_probe().expect("probe attached").snapshots(),
            );
            (report.summary(), None, stats, sim.take_recorder())
        }
    };
    let rendered = series::render_stats(system, &series);
    ScenarioRunOutput {
        summary,
        match_ratio,
        series,
        rendered,
        trace: flight.map(|r| r.render_ndjson(system)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::spec::parse_scenario;
    use std::path::Path;

    fn compiled(extra: &str) -> CompiledScenario {
        let text = format!(
            r#"{{
  "name": "r", "topology": "parallel", "tors": 16, "ports": 4,
  "host_gbps": 200,
  "phases": [
    {{"label": "calm", "workload": "poisson", "load": 40, "epochs": [0, 60]}},
    {{"label": "storm", "workload": "poisson", "load": 90, "epochs": [60, 120]}}
  ]{extra}
}}"#
        );
        compile(parse_scenario(&text).unwrap(), Path::new(".")).unwrap()
    }

    #[test]
    fn both_engines_run_and_bucket_phases() {
        let c = compiled("");
        for run in build_runs(&c, 1) {
            let out = (run.run)();
            assert_eq!(out.series.len(), 2, "{}", run.system);
            assert!(out.series.iter().any(|p| p.completed > 0), "{}", run.system);
            // The storm phase offers more than double the calm load.
            assert!(
                out.series[1].delivered_bytes > out.series[0].delivered_bytes,
                "{}: {:?}",
                run.system,
                out.series
            );
            assert!(out.rendered.contains("per-phase time series"));
            let is_nego = run.system.starts_with("nego");
            assert_eq!(out.match_ratio.is_some(), is_nego, "{}", run.system);
            assert_eq!(
                out.series.iter().all(|p| p.match_ratio.is_none()),
                !is_nego,
                "{}",
                run.system
            );
        }
    }

    #[test]
    fn failure_event_dents_the_failed_phase() {
        // Fail a quarter of all links for the middle third of a
        // three-phase steady scenario: the negotiator's middle-phase
        // goodput must dip below both neighbors.
        let text = r#"{
  "name": "dent", "topology": "parallel", "tors": 16, "ports": 4,
  "host_gbps": 200,
  "engines": ["negotiator"],
  "phases": [
    {"workload": "poisson", "load": 100, "epochs": [0, 80]},
    {"workload": "poisson", "load": 100, "epochs": [80, 160]},
    {"workload": "poisson", "load": 100, "epochs": [160, 240]}
  ],
  "events": [
    {"at_epoch": 80, "action": "fail_random", "ratio": 0.25, "seed": 7},
    {"at_epoch": 160, "action": "repair_links"}
  ]
}"#;
        let c = compile(parse_scenario(text).unwrap(), Path::new(".")).unwrap();
        let runs = build_runs(&c, 2);
        assert_eq!(runs.len(), 1);
        let out = (runs.into_iter().next().unwrap().run)();
        let g: Vec<f64> = out.series.iter().map(|p| p.goodput_normalized).collect();
        assert!(
            g[1] < g[0] * 0.97 && g[1] < g[2],
            "failures must dent phase 1: {g:?}"
        );
    }

    #[test]
    fn phase_faults_dent_their_phase_and_fill_the_new_columns() {
        // A steady load with a gray middle phase: the detector false
        // positives and control drops must land in (exactly) that phase,
        // and data keeps flowing throughout.
        let text = r#"{
  "name": "gray", "topology": "parallel", "tors": 16, "ports": 4,
  "host_gbps": 200,
  "engines": ["negotiator"],
  "phases": [
    {"workload": "poisson", "load": 60, "epochs": [0, 60]},
    {"workload": "poisson", "load": 60, "epochs": [60, 120],
     "faults": {"gray": {"drop_prob": 1.0, "tors": [0, 1, 2]}}},
    {"workload": "poisson", "load": 60, "epochs": [120, 200]}
  ]
}"#;
        let c = compile(parse_scenario(text).unwrap(), Path::new(".")).unwrap();
        let out = (build_runs(&c, 2).into_iter().next().unwrap().run)();
        let s = &out.series;
        assert_eq!(s[0].control_dropped, 0, "{s:?}");
        assert!(s[1].control_dropped > 0, "{s:?}");
        assert!(s[1].detector_fp_links > 0, "{s:?}");
        assert_eq!(s[1].detector_fn_links, 0, "{s:?}");
        assert!(s.iter().all(|p| p.delivered_bytes > 0), "{s:?}");
        // The gray window ends with the phase: by the scenario end the
        // detector has re-included everything.
        assert_eq!(s[2].detector_fp_links, 0, "{s:?}");
        assert!(out.rendered.contains("ctl_drop"));
    }

    #[test]
    fn progress_sink_sees_every_phase_and_changes_nothing() {
        use std::sync::Mutex;
        let c = compiled("");
        let plain: Vec<_> = build_runs(&c, 1)
            .into_iter()
            .map(|r| (r.run)().rendered)
            .collect();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink: ProgressSink = {
            let seen = Arc::clone(&seen);
            Arc::new(move |p: PhaseProgress| seen.lock().unwrap().push(p))
        };
        let observed: Vec<_> = build_runs_with_progress(&c, Some(sink), 1)
            .into_iter()
            .map(|r| (r.run)().rendered)
            .collect();
        assert_eq!(plain, observed, "observation must not perturb the run");
        let events = seen.lock().unwrap();
        // Two engines × two phases, in order per engine.
        assert_eq!(events.len(), 4, "{events:?}");
        for run in events.chunks(2) {
            assert_eq!(run[0].phase, 0);
            assert_eq!(run[0].label, "calm");
            assert_eq!(run[1].phase, 1);
            assert_eq!(run[1].label, "storm");
            assert!(run.iter().all(|p| p.phases == 2));
        }
    }

    #[test]
    fn run_output_is_deterministic() {
        let c = compiled("");
        let once = |c: &CompiledScenario| {
            let out: Vec<_> = build_runs(c, 1).into_iter().map(|r| (r.run)()).collect();
            out.iter()
                .map(|o| (o.rendered.clone(), o.series.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(once(&c), once(&c));
    }
}
