//! The scenario schema and its strict validation.
//!
//! A scenario file is JSON (parsed with `metrics::json` — no external
//! dependencies) describing the fabric, the scheduler, a contiguous
//! sequence of workload phases measured in epochs, and a timeline of
//! link-state events. Validation is deliberately unforgiving: unknown
//! keys, overlapping or gapped phases, out-of-range ToR/port indices,
//! loads outside (0, 100] — everything fails with an error pointing at
//! the `line:column` of the offending token, before any simulation
//! starts. The schema is documented end-to-end in the README's
//! "Scenarios" section.

use metrics::json::{line_col, SpannedJson};
use negotiator::SchedulerMode;
use sim::Bandwidth;
use topology::failures::LinkDir;
use topology::{NetworkConfig, TopologyKind};
use workload::FlowSizeDist;

/// A validation error carrying the byte offset it points at (when the
/// offending token has one).
#[derive(Debug)]
struct SpecError {
    pos: Option<usize>,
    msg: String,
}

impl SpecError {
    fn at(pos: usize, msg: impl Into<String>) -> SpecError {
        SpecError {
            pos: Some(pos),
            msg: msg.into(),
        }
    }

    fn render(&self, text: &str) -> String {
        match self.pos {
            Some(pos) => {
                let (line, col) = line_col(text, pos);
                format!("line {line}, column {col}: {}", self.msg)
            }
            None => self.msg.clone(),
        }
    }
}

/// Which engine(s) a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The NegotiaToR epoch engine.
    Negotiator,
    /// The traffic-oblivious rotor + VLB baseline.
    Oblivious,
}

impl EngineKind {
    /// System label for result rows, e.g. `nego/parallel`.
    pub fn label(self, topology: TopologyKind) -> String {
        match self {
            EngineKind::Negotiator => format!("nego/{}", topology.label()),
            EngineKind::Oblivious => format!("oblivious/{}", topology.label()),
        }
    }
}

/// The traffic of one phase.
#[derive(Debug, Clone)]
pub enum WorkloadPhase {
    /// Poisson background traffic at a fractional load.
    Poisson {
        /// Flow-size distribution.
        dist: FlowSizeDist,
        /// Offered load as a fraction of the host aggregate.
        load: f64,
    },
    /// Synchronized incast burst(s): `degree` senders to one destination.
    Incast {
        /// Number of simultaneous senders.
        degree: usize,
        /// Bytes per flow.
        flow_bytes: u64,
        /// Repeat the burst every this many epochs; `None` bursts once at
        /// the phase start.
        every_epochs: Option<u64>,
    },
    /// One synchronized all-to-all shuffle at the phase start.
    AllToAll {
        /// Bytes per flow.
        flow_bytes: u64,
    },
    /// Replay a TSV flow trace (`workload::trace_io`), arrivals offset to
    /// the phase start; flows arriving past the phase end are dropped.
    Trace {
        /// Path, relative to the scenario file.
        path: String,
    },
}

/// One workload phase spanning `[start_epoch, end_epoch)`.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Human label (defaults to `phase<i>`), shown in tables and JSON.
    pub label: String,
    /// First epoch of the phase.
    pub start_epoch: u64,
    /// One past the last epoch of the phase.
    pub end_epoch: u64,
    /// The traffic this phase offers.
    pub workload: WorkloadPhase,
}

/// One timed link-state event (epochs are absolute).
#[derive(Debug, Clone)]
pub struct EventSpec {
    /// Epoch the event fires at.
    pub at_epoch: u64,
    /// What happens.
    pub action: EventAction,
}

/// The link-state change of an [`EventSpec`].
#[derive(Debug, Clone)]
pub enum EventAction {
    /// Fail the listed directed links.
    FailLinks(Vec<(usize, usize, LinkDir)>),
    /// Repair every link failed by earlier events.
    RepairLinks,
    /// Fail a uniform random fraction of all directed links.
    FailRandom {
        /// Fraction of directed links to fail, in (0, 1].
        ratio: f64,
        /// Sampling seed.
        seed: u64,
    },
}

/// A fully validated scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (`[a-z0-9_-]+`), used in result file names.
    pub name: String,
    /// One-line description, shown by `paper list` and in the JSON.
    pub description: String,
    /// Which flat topology to build.
    pub topology: TopologyKind,
    /// The fabric.
    pub net: NetworkConfig,
    /// Scheduling logic for the NegotiaToR engine (the oblivious baseline
    /// has no scheduler and ignores it).
    pub mode: SchedulerMode,
    /// Master seed: workload generation, engine-internal RNG and
    /// `fail_random` defaults all derive from it.
    pub seed: u64,
    /// Engines to run, in declaration order.
    pub engines: Vec<EngineKind>,
    /// Contiguous workload phases starting at epoch 0.
    pub phases: Vec<PhaseSpec>,
    /// Link-state events, sorted by epoch.
    pub events: Vec<EventSpec>,
}

impl ScenarioSpec {
    /// One past the last simulated epoch.
    pub fn total_epochs(&self) -> u64 {
        self.phases.last().map_or(0, |p| p.end_epoch)
    }
}

/// Parse and validate a scenario document. Every error names the
/// `line:column` of the offending token.
pub fn parse_scenario(text: &str) -> Result<ScenarioSpec, String> {
    let doc = SpannedJson::parse(text)?;
    validate(&doc).map_err(|e| e.render(text))
}

/// Fabric, bandwidth and horizon caps. The per-ToR state of both engines
/// is O(n²), so fabrics beyond a few thousand ToRs are out of reach
/// anyway; with these bounds every u64 product downstream — `epoch ·
/// epoch_len` (epoch_len < 2^18 ns, epochs < 2^30), `gbps · 10^9`,
/// `slot_len + propagation`, per-phase byte totals — stays far below
/// u64::MAX, so a typo'd scenario fails validation with a pointed error
/// instead of silently wrapping and simulating nonsense.
const MAX_TORS: u64 = 4096;
/// See [`MAX_TORS`].
const MAX_PORTS: u64 = 512;
/// See [`MAX_TORS`].
const MAX_EPOCHS: u64 = 1_000_000_000;
/// See [`MAX_TORS`]. 100 Tbps dwarfs any deployed port or host NIC.
const MAX_GBPS: u64 = 100_000;
/// See [`MAX_TORS`]. One full second of one-way propagation.
const MAX_PROPAGATION_NS: u64 = 1_000_000_000;
/// See [`MAX_TORS`]. A terabyte per flow.
const MAX_FLOW_BYTES: u64 = 1_000_000_000_000;
/// Iterative-matching rounds cap (delay state grows with rounds).
const MAX_ROUNDS: u64 = 64;

const TOP_KEYS: &[&str] = &[
    "name",
    "description",
    "topology",
    "tors",
    "ports",
    "port_gbps",
    "host_gbps",
    "propagation_ns",
    "mode",
    "seed",
    "engines",
    "phases",
    "events",
];

fn validate(doc: &SpannedJson) -> Result<ScenarioSpec, SpecError> {
    expect_obj(doc, "the scenario document")?;
    check_keys(doc, TOP_KEYS, "the scenario")?;

    let name = req_str(doc, "name")?;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
    {
        return Err(SpecError::at(
            doc.get("name").expect("required above").pos,
            format!("'name' must be non-empty [a-z0-9_-], got {name:?}"),
        ));
    }
    let description = opt_str(doc, "description")?.unwrap_or_default();
    let topology = match req_str(doc, "topology")?.as_str() {
        "parallel" => TopologyKind::Parallel,
        "thin_clos" => TopologyKind::ThinClos,
        other => {
            return Err(SpecError::at(
                doc.get("topology").expect("required above").pos,
                format!("'topology' must be \"parallel\" or \"thin_clos\", got {other:?}"),
            ))
        }
    };

    let n_tors = opt_u64_range(doc, "tors", 2, MAX_TORS)?.unwrap_or(128) as usize;
    let n_ports = opt_u64_range(doc, "ports", 1, MAX_PORTS)?.unwrap_or(8) as usize;
    if !n_tors.is_multiple_of(n_ports) {
        return Err(SpecError::at(
            doc.get("tors")
                .or_else(|| doc.get("ports"))
                .map_or(doc.pos, |v| v.pos),
            format!("'tors' ({n_tors}) must be divisible by 'ports' ({n_ports})"),
        ));
    }
    let net = NetworkConfig {
        n_tors,
        n_ports,
        port_bandwidth: Bandwidth::from_gbps(
            opt_u64_range(doc, "port_gbps", 1, MAX_GBPS)?.unwrap_or(100),
        ),
        host_bandwidth: Bandwidth::from_gbps(
            opt_u64_range(doc, "host_gbps", 1, MAX_GBPS)?.unwrap_or(400),
        ),
        propagation_delay: opt_u64_range(doc, "propagation_ns", 0, MAX_PROPAGATION_NS)?
            .unwrap_or(2_000),
    };

    let mode = parse_mode(doc)?;
    let seed = opt_u64_min(doc, "seed", 0)?.unwrap_or(1);
    let engines = parse_engines(doc)?;
    let phases = parse_phases(doc, &net)?;
    let events = parse_events(doc, &net, seed, phases.last().expect("non-empty").end_epoch)?;

    Ok(ScenarioSpec {
        name,
        description,
        topology,
        net,
        mode,
        seed,
        engines,
        phases,
        events,
    })
}

fn parse_mode(doc: &SpannedJson) -> Result<SchedulerMode, SpecError> {
    let Some(mode) = doc.get("mode") else {
        return Ok(SchedulerMode::Base);
    };
    if let Some(s) = mode.as_str() {
        return match s {
            "base" => Ok(SchedulerMode::Base),
            "datasize" => Ok(SchedulerMode::DataSize),
            "hol_delay" => Ok(SchedulerMode::HolDelay { alpha: 0.001 }),
            "stateful" => Ok(SchedulerMode::Stateful),
            "projector" => Ok(SchedulerMode::Projector),
            "iterative" => Ok(SchedulerMode::Iterative { rounds: 2 }),
            other => Err(SpecError::at(
                mode.pos,
                format!("unknown scheduler mode {other:?} (base, datasize, hol_delay, stateful, projector, iterative)"),
            )),
        };
    }
    // Object form for parameterized modes.
    expect_obj(mode, "'mode'")?;
    check_keys(mode, &["kind", "rounds", "alpha"], "'mode'")?;
    match req_str(mode, "kind")?.as_str() {
        "iterative" => {
            let rounds = opt_u64_range(mode, "rounds", 1, MAX_ROUNDS)?.unwrap_or(2) as usize;
            Ok(SchedulerMode::Iterative { rounds })
        }
        "hol_delay" => {
            let alpha = match mode.get("alpha") {
                None => 0.001,
                Some(v) => num_in_range(v, "'alpha'", 0.0, f64::INFINITY, false)?,
            };
            Ok(SchedulerMode::HolDelay { alpha })
        }
        other => Err(SpecError::at(
            mode.get("kind").expect("required above").pos,
            format!(
                "parameterized 'mode.kind' must be \"iterative\" or \"hol_delay\", got {other:?}"
            ),
        )),
    }
}

fn parse_engines(doc: &SpannedJson) -> Result<Vec<EngineKind>, SpecError> {
    let Some(engines) = doc.get("engines") else {
        return Ok(vec![EngineKind::Negotiator, EngineKind::Oblivious]);
    };
    let items = engines
        .as_array()
        .ok_or_else(|| SpecError::at(engines.pos, "'engines' must be an array of strings"))?;
    if items.is_empty() {
        return Err(SpecError::at(engines.pos, "'engines' must not be empty"));
    }
    let mut out = Vec::new();
    for item in items {
        let kind = match item.as_str() {
            Some("negotiator") => EngineKind::Negotiator,
            Some("oblivious") => EngineKind::Oblivious,
            _ => {
                return Err(SpecError::at(
                    item.pos,
                    "engine must be \"negotiator\" or \"oblivious\"",
                ))
            }
        };
        if out.contains(&kind) {
            return Err(SpecError::at(item.pos, "duplicate engine"));
        }
        out.push(kind);
    }
    Ok(out)
}

fn parse_phases(doc: &SpannedJson, net: &NetworkConfig) -> Result<Vec<PhaseSpec>, SpecError> {
    let phases = doc
        .get("phases")
        .ok_or_else(|| SpecError::at(doc.pos, "the scenario needs a 'phases' array"))?;
    let items = phases
        .as_array()
        .ok_or_else(|| SpecError::at(phases.pos, "'phases' must be an array"))?;
    if items.is_empty() {
        return Err(SpecError::at(phases.pos, "'phases' must not be empty"));
    }
    let mut out: Vec<PhaseSpec> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        expect_obj(item, "a phase")?;
        let label = opt_str(item, "label")?.unwrap_or_else(|| format!("phase{i}"));
        let epochs = item.get("epochs").ok_or_else(|| {
            SpecError::at(
                item.pos,
                format!("phase '{label}' needs an 'epochs' [start, end] pair"),
            )
        })?;
        let pair = epochs.as_array().unwrap_or(&[]);
        let (start_epoch, end_epoch) = match pair {
            [s, e] => (
                s.as_u64()
                    .ok_or_else(|| SpecError::at(s.pos, "epoch must be a non-negative integer"))?,
                e.as_u64()
                    .ok_or_else(|| SpecError::at(e.pos, "epoch must be a non-negative integer"))?,
            ),
            _ => {
                return Err(SpecError::at(
                    epochs.pos,
                    "'epochs' must be a [start, end] pair",
                ))
            }
        };
        if end_epoch <= start_epoch {
            return Err(SpecError::at(
                epochs.pos,
                format!(
                    "phase '{label}': end epoch {end_epoch} must exceed start epoch {start_epoch}"
                ),
            ));
        }
        if end_epoch > MAX_EPOCHS {
            return Err(SpecError::at(
                epochs.pos,
                format!(
                    "phase '{label}': end epoch {end_epoch} exceeds the {MAX_EPOCHS}-epoch cap"
                ),
            ));
        }
        // Phases must tile the timeline: contiguous, in order, from 0.
        let expected_start = out.last().map_or(0, |p: &PhaseSpec| p.end_epoch);
        match start_epoch.cmp(&expected_start) {
            std::cmp::Ordering::Less => {
                return Err(SpecError::at(
                    epochs.pos,
                    format!(
                        "phase '{label}' starts at epoch {start_epoch}, overlapping the previous phase (ends at {expected_start})"
                    ),
                ))
            }
            std::cmp::Ordering::Greater => {
                return Err(SpecError::at(
                    epochs.pos,
                    format!(
                        "phase '{label}' starts at epoch {start_epoch}, leaving a gap after epoch {expected_start} — phases must be contiguous"
                    ),
                ))
            }
            std::cmp::Ordering::Equal => {}
        }
        let workload = parse_workload(item, &label, net)?;
        out.push(PhaseSpec {
            label,
            start_epoch,
            end_epoch,
            workload,
        });
    }
    Ok(out)
}

fn parse_workload(
    phase: &SpannedJson,
    label: &str,
    net: &NetworkConfig,
) -> Result<WorkloadPhase, SpecError> {
    let kind = req_str(phase, "workload")?;
    let base = ["label", "epochs", "workload"];
    match kind.as_str() {
        "poisson" => {
            check_keys(
                phase,
                &[&base[..], &["dist", "load"]].concat(),
                "a poisson phase",
            )?;
            let load_val = phase.get("load").ok_or_else(|| {
                SpecError::at(
                    phase.pos,
                    format!("phase '{label}' needs a 'load' percentage"),
                )
            })?;
            let load = num_in_range(load_val, "'load'", 0.0, 100.0, true)? / 100.0;
            let dist = match opt_str(phase, "dist")?.as_deref() {
                None | Some("hadoop") => FlowSizeDist::hadoop(),
                Some("web_search") => FlowSizeDist::web_search(),
                Some("google") => FlowSizeDist::google(),
                Some(other) => {
                    return Err(SpecError::at(
                        phase.get("dist").expect("present").pos,
                        format!("unknown 'dist' {other:?} (hadoop, web_search, google)"),
                    ))
                }
            };
            Ok(WorkloadPhase::Poisson { dist, load })
        }
        "incast" => {
            check_keys(
                phase,
                &[&base[..], &["degree", "flow_bytes", "every_epochs"]].concat(),
                "an incast phase",
            )?;
            let degree_val = phase.get("degree").ok_or_else(|| {
                SpecError::at(phase.pos, format!("phase '{label}' needs a 'degree'"))
            })?;
            let degree = degree_val.as_u64().filter(|&d| d >= 1).ok_or_else(|| {
                SpecError::at(degree_val.pos, "'degree' must be a positive integer")
            })? as usize;
            if degree >= net.n_tors {
                return Err(SpecError::at(
                    degree_val.pos,
                    format!(
                        "incast degree {degree} out of range — the fabric has {} ToRs and one must receive",
                        net.n_tors
                    ),
                ));
            }
            let flow_bytes = req_u64_range(phase, "flow_bytes", 1, MAX_FLOW_BYTES, label)?;
            let every_epochs = opt_u64_range(phase, "every_epochs", 1, MAX_EPOCHS)?;
            Ok(WorkloadPhase::Incast {
                degree,
                flow_bytes,
                every_epochs,
            })
        }
        "all_to_all" => {
            check_keys(
                phase,
                &[&base[..], &["flow_bytes"]].concat(),
                "an all_to_all phase",
            )?;
            let flow_bytes = req_u64_range(phase, "flow_bytes", 1, MAX_FLOW_BYTES, label)?;
            Ok(WorkloadPhase::AllToAll { flow_bytes })
        }
        "trace" => {
            check_keys(phase, &[&base[..], &["path"]].concat(), "a trace phase")?;
            let path = req_str(phase, "path")?;
            Ok(WorkloadPhase::Trace { path })
        }
        other => Err(SpecError::at(
            phase.get("workload").expect("required above").pos,
            format!("unknown workload {other:?} (poisson, incast, all_to_all, trace)"),
        )),
    }
}

fn parse_events(
    doc: &SpannedJson,
    net: &NetworkConfig,
    scenario_seed: u64,
    total_epochs: u64,
) -> Result<Vec<EventSpec>, SpecError> {
    let Some(events) = doc.get("events") else {
        return Ok(Vec::new());
    };
    let items = events
        .as_array()
        .ok_or_else(|| SpecError::at(events.pos, "'events' must be an array"))?;
    let mut out = Vec::new();
    for (i, item) in items.iter().enumerate() {
        expect_obj(item, "an event")?;
        check_keys(
            item,
            &["at_epoch", "action", "links", "ratio", "seed"],
            "an event",
        )?;
        let at = item
            .get("at_epoch")
            .ok_or_else(|| SpecError::at(item.pos, "an event needs an 'at_epoch'"))?;
        let at_epoch = at
            .as_u64()
            .ok_or_else(|| SpecError::at(at.pos, "'at_epoch' must be a non-negative integer"))?;
        if at_epoch >= total_epochs {
            return Err(SpecError::at(
                at.pos,
                format!(
                    "event at epoch {at_epoch} is past the scenario end (epoch {total_epochs})"
                ),
            ));
        }
        let action = req_str(item, "action")?;
        // A key belonging to a *different* action must not be silently
        // dropped (the misplaced-parameter variant of the unknown-key rule).
        let reject_stray = |keys: &[&str], action: &str| -> Result<(), SpecError> {
            for &key in keys {
                if let Some(stray) = item.get(key) {
                    return Err(SpecError::at(
                        stray.pos,
                        format!("'{key}' does not apply to the '{action}' action"),
                    ));
                }
            }
            Ok(())
        };
        let action = match action.as_str() {
            "fail_links" => {
                reject_stray(&["ratio", "seed"], "fail_links")?;
                let links = item
                    .get("links")
                    .ok_or_else(|| SpecError::at(item.pos, "'fail_links' needs a 'links' array"))?;
                let entries = links
                    .as_array()
                    .filter(|l| !l.is_empty())
                    .ok_or_else(|| SpecError::at(links.pos, "'links' must be a non-empty array"))?;
                let mut parsed = Vec::new();
                for entry in entries {
                    parsed.push(parse_link(entry, net)?);
                }
                EventAction::FailLinks(parsed)
            }
            "repair_links" => {
                reject_stray(&["links", "ratio", "seed"], "repair_links")?;
                EventAction::RepairLinks
            }
            "fail_random" => {
                reject_stray(&["links"], "fail_random")?;
                let ratio_val = item
                    .get("ratio")
                    .ok_or_else(|| SpecError::at(item.pos, "'fail_random' needs a 'ratio'"))?;
                let ratio = num_in_range(ratio_val, "'ratio'", 0.0, 1.0, true)?;
                let seed = opt_u64_min(item, "seed", 0)?
                    .unwrap_or_else(|| scenario_seed ^ (0x5CE7A810 + i as u64));
                EventAction::FailRandom { ratio, seed }
            }
            other => {
                return Err(SpecError::at(
                    item.get("action").expect("required above").pos,
                    format!("unknown action {other:?} (fail_links, repair_links, fail_random)"),
                ))
            }
        };
        out.push(EventSpec { at_epoch, action });
    }
    out.sort_by_key(|e| e.at_epoch);
    Ok(out)
}

fn parse_link(
    entry: &SpannedJson,
    net: &NetworkConfig,
) -> Result<(usize, usize, LinkDir), SpecError> {
    expect_obj(entry, "a link")?;
    check_keys(entry, &["tor", "port", "dir"], "a link")?;
    let tor_val = entry
        .get("tor")
        .ok_or_else(|| SpecError::at(entry.pos, "a link needs a 'tor' index"))?;
    let tor = tor_val
        .as_u64()
        .ok_or_else(|| SpecError::at(tor_val.pos, "'tor' must be a non-negative integer"))?
        as usize;
    if tor >= net.n_tors {
        return Err(SpecError::at(
            tor_val.pos,
            format!(
                "ToR index {tor} out of range — the fabric has {} ToRs",
                net.n_tors
            ),
        ));
    }
    let port_val = entry
        .get("port")
        .ok_or_else(|| SpecError::at(entry.pos, "a link needs a 'port' index"))?;
    let port = port_val
        .as_u64()
        .ok_or_else(|| SpecError::at(port_val.pos, "'port' must be a non-negative integer"))?
        as usize;
    if port >= net.n_ports {
        return Err(SpecError::at(
            port_val.pos,
            format!(
                "port index {port} out of range — each ToR has {} uplink ports",
                net.n_ports
            ),
        ));
    }
    let dir = match opt_str(entry, "dir")?.as_deref() {
        None | Some("egress") => LinkDir::Egress,
        Some("ingress") => LinkDir::Ingress,
        Some(other) => {
            return Err(SpecError::at(
                entry.get("dir").expect("present").pos,
                format!("'dir' must be \"egress\" or \"ingress\", got {other:?}"),
            ))
        }
    };
    Ok((tor, port, dir))
}

// ---------------------------------------------------------------------
// Small typed accessors over SpannedJson, all error-reporting by position
// ---------------------------------------------------------------------

fn expect_obj(v: &SpannedJson, what: &str) -> Result<(), SpecError> {
    if v.members().is_some() {
        Ok(())
    } else {
        Err(SpecError::at(
            v.pos,
            format!("{what} must be an object, got {}", v.kind()),
        ))
    }
}

/// Reject members outside `allowed` (typo protection — a misspelled key
/// must not silently fall back to a default) and duplicate keys (lookups
/// return the first occurrence, so a repeated key's later value would be
/// silently dropped).
fn check_keys(v: &SpannedJson, allowed: &[&str], what: &str) -> Result<(), SpecError> {
    let mut seen: Vec<&str> = Vec::new();
    for (key_pos, key, _) in v.members().into_iter().flatten() {
        if seen.contains(&key.as_str()) {
            return Err(SpecError::at(
                *key_pos,
                format!("duplicate key {key:?} in {what} — the earlier value would win silently"),
            ));
        }
        seen.push(key);
        if !allowed.contains(&key.as_str()) {
            return Err(SpecError::at(
                *key_pos,
                format!(
                    "unknown key {key:?} in {what} (allowed: {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn req_str(v: &SpannedJson, key: &str) -> Result<String, SpecError> {
    match v.get(key) {
        None => Err(SpecError::at(
            v.pos,
            format!("missing required key '{key}'"),
        )),
        Some(s) => s.as_str().map(str::to_string).ok_or_else(|| {
            SpecError::at(s.pos, format!("'{key}' must be a string, got {}", s.kind()))
        }),
    }
}

fn opt_str(v: &SpannedJson, key: &str) -> Result<Option<String>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(s) => s.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
            SpecError::at(s.pos, format!("'{key}' must be a string, got {}", s.kind()))
        }),
    }
}

fn opt_u64_min(v: &SpannedJson, key: &str, min: u64) -> Result<Option<u64>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(n) => n
            .as_u64()
            .filter(|&x| x >= min)
            .map(Some)
            .ok_or_else(|| SpecError::at(n.pos, format!("'{key}' must be an integer >= {min}"))),
    }
}

fn opt_u64_range(v: &SpannedJson, key: &str, min: u64, max: u64) -> Result<Option<u64>, SpecError> {
    match opt_u64_min(v, key, min)? {
        Some(x) if x > max => Err(SpecError::at(
            v.get(key).expect("present").pos,
            format!("'{key}' = {x} exceeds the supported maximum of {max}"),
        )),
        other => Ok(other),
    }
}

fn req_u64_range(
    v: &SpannedJson,
    key: &str,
    min: u64,
    max: u64,
    label: &str,
) -> Result<u64, SpecError> {
    opt_u64_range(v, key, min, max)?
        .ok_or_else(|| SpecError::at(v.pos, format!("phase '{label}' needs a '{key}'")))
}

/// A number in `(lo, hi]` (exclusive low — loads and ratios of zero are
/// meaningless; `closed_hi` includes the upper bound).
fn num_in_range(
    v: &SpannedJson,
    what: &str,
    lo: f64,
    hi: f64,
    closed_hi: bool,
) -> Result<f64, SpecError> {
    let x = v.as_f64().ok_or_else(|| {
        SpecError::at(v.pos, format!("{what} must be a number, got {}", v.kind()))
    })?;
    let in_range = x.is_finite() && x > lo && if closed_hi { x <= hi } else { x < hi };
    if in_range {
        Ok(x)
    } else {
        Err(SpecError::at(
            v.pos,
            format!(
                "{what} = {x} is out of range ({lo}, {hi}{}",
                if closed_hi { "]" } else { ")" }
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra: &str) -> String {
        format!(
            r#"{{
  "name": "t",
  "topology": "parallel",
  "tors": 16,
  "ports": 4,
  "phases": [
    {{"workload": "poisson", "load": 50, "epochs": [0, 100]}}
  ]{extra}
}}"#
        )
    }

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = parse_scenario(&minimal("")).unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.net.n_tors, 16);
        assert_eq!(s.net.host_bandwidth.bps(), 400_000_000_000);
        assert_eq!(s.seed, 1);
        assert_eq!(s.engines.len(), 2);
        assert_eq!(s.total_epochs(), 100);
        assert!(matches!(s.mode, SchedulerMode::Base));
        let WorkloadPhase::Poisson { load, .. } = &s.phases[0].workload else {
            panic!("poisson phase")
        };
        assert!((load - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_key_points_at_line_and_column() {
        let text = "{\n  \"name\": \"t\",\n  \"topolojy\": \"parallel\",\n  \"phases\": []\n}";
        let err = parse_scenario(text).unwrap_err();
        assert!(err.starts_with("line 3, column 3:"), "{err}");
        assert!(err.contains("unknown key \"topolojy\""), "{err}");
    }

    #[test]
    fn overlapping_and_gapped_phases_rejected() {
        let text = r#"{
  "name": "t", "topology": "parallel", "tors": 16, "ports": 4,
  "phases": [
    {"workload": "poisson", "load": 50, "epochs": [0, 100]},
    {"workload": "poisson", "load": 80, "epochs": [90, 200]}
  ]
}"#;
        let err = parse_scenario(text).unwrap_err();
        assert!(err.contains("line 5"), "{err}");
        assert!(err.contains("overlapping"), "{err}");
        let gapped = text.replace("[90, 200]", "[110, 200]");
        let err = parse_scenario(&gapped).unwrap_err();
        assert!(err.contains("gap"), "{err}");
    }

    #[test]
    fn out_of_range_indices_rejected_with_position() {
        let text = minimal(
            r#",
  "events": [
    {"at_epoch": 10, "action": "fail_links",
     "links": [{"tor": 99, "port": 0, "dir": "egress"}]}
  ]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("ToR index 99 out of range"), "{err}");
        assert!(err.contains("line 11"), "{err}");
        let bad_port = text
            .replace("\"tor\": 99", "\"tor\": 3")
            .replace("\"port\": 0", "\"port\": 7");
        let err = parse_scenario(&bad_port).unwrap_err();
        assert!(err.contains("port index 7 out of range"), "{err}");
    }

    #[test]
    fn loads_ratios_and_epochs_validated() {
        let err =
            parse_scenario(&minimal("").replace("\"load\": 50", "\"load\": 150")).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = parse_scenario(&minimal("").replace("[0, 100]", "[100, 100]")).unwrap_err();
        assert!(err.contains("must exceed"), "{err}");
        let text = minimal(
            r#",
  "events": [{"at_epoch": 10, "action": "fail_random", "ratio": 1.5}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("'ratio' = 1.5 is out of range"), "{err}");
        let text = minimal(
            r#",
  "events": [{"at_epoch": 500, "action": "repair_links"}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("past the scenario end"), "{err}");
    }

    #[test]
    fn stray_action_parameters_rejected() {
        // A parameter belonging to a different action must not be
        // silently dropped.
        let text = minimal(
            r#",
  "events": [{"at_epoch": 10, "action": "fail_links", "ratio": 0.3,
              "links": [{"tor": 1, "port": 0, "dir": "egress"}]}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("'ratio' does not apply"), "{err}");
        let text = minimal(
            r#",
  "events": [{"at_epoch": 10, "action": "fail_random", "ratio": 0.3,
              "links": [{"tor": 1, "port": 0, "dir": "egress"}]}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("'links' does not apply"), "{err}");
    }

    #[test]
    fn duplicate_keys_rejected() {
        // The later value of a repeated key would silently lose to the
        // earlier one; reject it at the second occurrence.
        let text = minimal(
            r#",
  "seed": 1,
  "seed": 7"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("duplicate key \"seed\""), "{err}");
        assert!(err.contains("line 10"), "{err}");
    }

    #[test]
    fn fabric_and_horizon_caps_prevent_overflow() {
        let err =
            parse_scenario(&minimal("").replace("\"tors\": 16", "\"tors\": 1048576")).unwrap_err();
        assert!(err.contains("exceeds the supported maximum"), "{err}");
        let err =
            parse_scenario(&minimal("").replace("[0, 100]", "[0, 40000000000000000]")).unwrap_err();
        assert!(err.contains("epoch cap"), "{err}");
        // Bandwidths, propagation and flow sizes are capped too — e.g. a
        // 2e10 Gbps host aggregate would wrap `gbps · 10^9` in release
        // builds and silently mis-scale every Poisson load.
        for extra in [
            ",\n  \"host_gbps\": 20000000000",
            ",\n  \"port_gbps\": 20000000000",
            ",\n  \"propagation_ns\": 10000000000",
        ] {
            let err = parse_scenario(&minimal(extra)).unwrap_err();
            assert!(err.contains("exceeds the supported maximum"), "{err}");
        }
        let text = minimal("").replace(
            r#"{"workload": "poisson", "load": 50, "epochs": [0, 100]}"#,
            r#"{"workload": "incast", "degree": 4, "flow_bytes": 10000000000000000, "epochs": [0, 100]}"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("exceeds the supported maximum"), "{err}");
    }

    #[test]
    fn modes_and_engines_parse() {
        let text = minimal(
            r#",
  "mode": {"kind": "iterative", "rounds": 3},
  "engines": ["negotiator"]"#,
        );
        let s = parse_scenario(&text).unwrap();
        assert!(matches!(s.mode, SchedulerMode::Iterative { rounds: 3 }));
        assert_eq!(s.engines, vec![EngineKind::Negotiator]);
        let err = parse_scenario(&minimal(
            r#",
  "engines": []"#,
        ))
        .unwrap_err();
        assert!(err.contains("must not be empty"), "{err}");
        let err = parse_scenario(
            &minimal(
                r#",
  "mode": "fancy"#,
            )
            .replace("\"fancy", "\"fancy\""),
        )
        .unwrap_err();
        assert!(err.contains("unknown scheduler mode"), "{err}");
    }

    #[test]
    fn syntax_errors_point_at_the_spot() {
        let err = parse_scenario("{\n  \"name\": \"t\",,\n}").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn thin_clos_divisibility_checked() {
        let text = minimal("").replace("\"tors\": 16", "\"tors\": 18");
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("divisible"), "{err}");
    }
}
