//! The scenario schema and its strict validation.
//!
//! A scenario file is JSON (parsed with `metrics::json` — no external
//! dependencies) describing the fabric, the scheduler, a contiguous
//! sequence of workload phases measured in epochs, and a timeline of
//! link-state events. Validation is deliberately unforgiving: unknown
//! keys, overlapping or gapped phases, out-of-range ToR/port indices,
//! loads outside (0, 100] — everything fails with an error pointing at
//! the `line:column` of the offending token, before any simulation
//! starts. The schema is documented end-to-end in the README's
//! "Scenarios" section.

use metrics::json::{line_col, SpannedJson};
use negotiator::SchedulerMode;
use sim::time::Nanos;
use sim::Bandwidth;
use topology::failures::LinkDir;
use topology::{FaultAction, FlapTargets, NetworkConfig, PartitionSpec, TopologyKind};
use workload::FlowSizeDist;

/// A validation error carrying the byte offset it points at (when the
/// offending token has one).
#[derive(Debug)]
struct SpecError {
    pos: Option<usize>,
    msg: String,
}

impl SpecError {
    fn at(pos: usize, msg: impl Into<String>) -> SpecError {
        SpecError {
            pos: Some(pos),
            msg: msg.into(),
        }
    }

    fn render(&self, text: &str) -> String {
        match self.pos {
            Some(pos) => {
                let (line, col) = line_col(text, pos);
                format!("line {line}, column {col}: {}", self.msg)
            }
            None => self.msg.clone(),
        }
    }
}

/// Which engine(s) a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The NegotiaToR epoch engine.
    Negotiator,
    /// The traffic-oblivious rotor + VLB baseline.
    Oblivious,
}

impl EngineKind {
    /// System label for result rows, e.g. `nego/parallel`.
    pub fn label(self, topology: TopologyKind) -> String {
        match self {
            EngineKind::Negotiator => format!("nego/{}", topology.label()),
            EngineKind::Oblivious => format!("oblivious/{}", topology.label()),
        }
    }
}

/// The traffic of one phase.
#[derive(Debug, Clone)]
pub enum WorkloadPhase {
    /// Poisson background traffic at a fractional load.
    Poisson {
        /// Flow-size distribution.
        dist: FlowSizeDist,
        /// Offered load as a fraction of the host aggregate.
        load: f64,
    },
    /// Synchronized incast burst(s): `degree` senders to one destination.
    Incast {
        /// Number of simultaneous senders.
        degree: usize,
        /// Bytes per flow.
        flow_bytes: u64,
        /// Repeat the burst every this many epochs; `None` bursts once at
        /// the phase start.
        every_epochs: Option<u64>,
    },
    /// One synchronized all-to-all shuffle at the phase start.
    AllToAll {
        /// Bytes per flow.
        flow_bytes: u64,
    },
    /// Replay a TSV flow trace (`workload::trace_io`), arrivals offset to
    /// the phase start; flows arriving past the phase end are dropped.
    Trace {
        /// Path, relative to the scenario file.
        path: String,
    },
}

/// One workload phase spanning `[start_epoch, end_epoch)`.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Human label (defaults to `phase<i>`), shown in tables and JSON.
    pub label: String,
    /// First epoch of the phase.
    pub start_epoch: u64,
    /// One past the last epoch of the phase.
    pub end_epoch: u64,
    /// The traffic this phase offers.
    pub workload: WorkloadPhase,
    /// Faults active for exactly this phase's span: each entry starts at
    /// the phase start and its counterpart stop fires at the phase end.
    pub faults: Vec<InjectSpec>,
}

/// One timed link-state event (epochs are absolute).
#[derive(Debug, Clone)]
pub struct EventSpec {
    /// Epoch the event fires at.
    pub at_epoch: u64,
    /// What happens.
    pub action: EventAction,
}

/// The link-state change of an [`EventSpec`].
#[derive(Debug, Clone)]
pub enum EventAction {
    /// Fail the listed directed links.
    FailLinks(Vec<(usize, usize, LinkDir)>),
    /// Repair every link failed by earlier events.
    RepairLinks,
    /// Fail a uniform random fraction of all directed links.
    FailRandom {
        /// Fraction of directed links to fail, in (0, 1].
        ratio: f64,
        /// Sampling seed.
        seed: u64,
    },
    /// An adversarial fault injection (`topology::inject` family).
    Inject(InjectSpec),
}

/// One adversarial injection at the spec level: durations are measured
/// in epochs (the scenario's time unit) and converted to nanoseconds by
/// `compile`, which knows the epoch length.
#[derive(Debug, Clone)]
pub enum InjectSpec {
    /// Start a duty-cycled link oscillation.
    FlapStart {
        /// Links to oscillate.
        targets: FlapTargets,
        /// Connected epochs per cycle.
        up_epochs: u64,
        /// Dark epochs per cycle.
        down_epochs: u64,
    },
    /// Stop every flap.
    FlapStop,
    /// Partition the ToR set.
    Partition(PartitionSpec),
    /// Heal the partition.
    Heal,
    /// Start a gray failure (control-plane drops, data untouched).
    GrayStart {
        /// Per-(epoch, src, dst) drop probability in `(0, 1]`.
        drop_prob: f64,
        /// Decision seed.
        seed: u64,
        /// Affected source ToRs (`None` = every ToR).
        tors: Option<Vec<usize>>,
    },
    /// End the gray failure.
    GrayStop,
    /// Mark ToRs as greedy granters.
    GreedyStart {
        /// Misbehaving ToRs.
        tors: Vec<usize>,
    },
    /// Every ToR returns to honest granting.
    GreedyStop,
}

impl InjectSpec {
    /// The engine-level action, epoch durations converted at `epoch_len`.
    pub fn to_action(&self, epoch_len: Nanos) -> FaultAction {
        match self {
            InjectSpec::FlapStart {
                targets,
                up_epochs,
                down_epochs,
            } => FaultAction::FlapStart {
                targets: targets.clone(),
                up: up_epochs * epoch_len,
                down: down_epochs * epoch_len,
            },
            InjectSpec::FlapStop => FaultAction::FlapStop,
            InjectSpec::Partition(spec) => FaultAction::Partition(spec.clone()),
            InjectSpec::Heal => FaultAction::Heal,
            InjectSpec::GrayStart {
                drop_prob,
                seed,
                tors,
            } => FaultAction::GrayStart {
                drop_prob: *drop_prob,
                seed: *seed,
                tors: tors.clone(),
            },
            InjectSpec::GrayStop => FaultAction::GrayStop,
            InjectSpec::GreedyStart { tors } => FaultAction::GreedyStart { tors: tors.clone() },
            InjectSpec::GreedyStop => FaultAction::GreedyStop,
        }
    }

    /// The action that ends this fault at a phase's end boundary (used
    /// when the fault comes from a per-phase `faults` block).
    pub fn stop_action(&self) -> Option<FaultAction> {
        match self {
            InjectSpec::FlapStart { .. } => Some(FaultAction::FlapStop),
            InjectSpec::Partition(_) => Some(FaultAction::Heal),
            InjectSpec::GrayStart { .. } => Some(FaultAction::GrayStop),
            InjectSpec::GreedyStart { .. } => Some(FaultAction::GreedyStop),
            _ => None,
        }
    }
}

/// A fully validated scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (`[a-z0-9_-]+`), used in result file names.
    pub name: String,
    /// One-line description, shown by `paper list` and in the JSON.
    pub description: String,
    /// Which flat topology to build.
    pub topology: TopologyKind,
    /// The fabric.
    pub net: NetworkConfig,
    /// Scheduling logic for the NegotiaToR engine (the oblivious baseline
    /// has no scheduler and ignores it).
    pub mode: SchedulerMode,
    /// Master seed: workload generation, engine-internal RNG and
    /// `fail_random` defaults all derive from it.
    pub seed: u64,
    /// Engines to run, in declaration order.
    pub engines: Vec<EngineKind>,
    /// Contiguous workload phases starting at epoch 0.
    pub phases: Vec<PhaseSpec>,
    /// Link-state events, sorted by epoch.
    pub events: Vec<EventSpec>,
}

impl ScenarioSpec {
    /// One past the last simulated epoch.
    pub fn total_epochs(&self) -> u64 {
        self.phases.last().map_or(0, |p| p.end_epoch)
    }
}

/// Parse and validate a scenario document. Every error names the
/// `line:column` of the offending token.
pub fn parse_scenario(text: &str) -> Result<ScenarioSpec, String> {
    let doc = SpannedJson::parse(text)?;
    validate(&doc).map_err(|e| e.render(text))
}

/// Fabric, bandwidth and horizon caps. The per-ToR state of both engines
/// is O(n²), so fabrics beyond a few thousand ToRs are out of reach
/// anyway; with these bounds every u64 product downstream — `epoch ·
/// epoch_len` (epoch_len < 2^18 ns, epochs < 2^30), `gbps · 10^9`,
/// `slot_len + propagation`, per-phase byte totals — stays far below
/// u64::MAX, so a typo'd scenario fails validation with a pointed error
/// instead of silently wrapping and simulating nonsense.
const MAX_TORS: u64 = 4096;
/// See [`MAX_TORS`].
const MAX_PORTS: u64 = 512;
/// See [`MAX_TORS`].
const MAX_EPOCHS: u64 = 1_000_000_000;
/// See [`MAX_TORS`]. 100 Tbps dwarfs any deployed port or host NIC.
const MAX_GBPS: u64 = 100_000;
/// See [`MAX_TORS`]. One full second of one-way propagation.
const MAX_PROPAGATION_NS: u64 = 1_000_000_000;
/// See [`MAX_TORS`]. A terabyte per flow.
const MAX_FLOW_BYTES: u64 = 1_000_000_000_000;
/// Iterative-matching rounds cap (delay state grows with rounds).
const MAX_ROUNDS: u64 = 64;

const TOP_KEYS: &[&str] = &[
    "name",
    "description",
    "topology",
    "tors",
    "ports",
    "port_gbps",
    "host_gbps",
    "propagation_ns",
    "mode",
    "seed",
    "engines",
    "phases",
    "events",
];

fn validate(doc: &SpannedJson) -> Result<ScenarioSpec, SpecError> {
    expect_obj(doc, "the scenario document")?;
    check_keys(doc, TOP_KEYS, "the scenario")?;

    let name = req_str(doc, "name")?;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
    {
        return Err(SpecError::at(
            doc.get("name").expect("required above").pos,
            format!("'name' must be non-empty [a-z0-9_-], got {name:?}"),
        ));
    }
    let description = opt_str(doc, "description")?.unwrap_or_default();
    let topology = match req_str(doc, "topology")?.as_str() {
        "parallel" => TopologyKind::Parallel,
        "thin_clos" => TopologyKind::ThinClos,
        other => {
            return Err(SpecError::at(
                doc.get("topology").expect("required above").pos,
                format!("'topology' must be \"parallel\" or \"thin_clos\", got {other:?}"),
            ))
        }
    };

    let n_tors = opt_u64_range(doc, "tors", 2, MAX_TORS)?.unwrap_or(128) as usize;
    let n_ports = opt_u64_range(doc, "ports", 1, MAX_PORTS)?.unwrap_or(8) as usize;
    if !n_tors.is_multiple_of(n_ports) {
        return Err(SpecError::at(
            doc.get("tors")
                .or_else(|| doc.get("ports"))
                .map_or(doc.pos, |v| v.pos),
            format!("'tors' ({n_tors}) must be divisible by 'ports' ({n_ports})"),
        ));
    }
    let net = NetworkConfig {
        n_tors,
        n_ports,
        port_bandwidth: Bandwidth::from_gbps(
            opt_u64_range(doc, "port_gbps", 1, MAX_GBPS)?.unwrap_or(100),
        ),
        host_bandwidth: Bandwidth::from_gbps(
            opt_u64_range(doc, "host_gbps", 1, MAX_GBPS)?.unwrap_or(400),
        ),
        propagation_delay: opt_u64_range(doc, "propagation_ns", 0, MAX_PROPAGATION_NS)?
            .unwrap_or(2_000),
    };

    let mode = parse_mode(doc)?;
    let seed = opt_u64_min(doc, "seed", 0)?.unwrap_or(1);
    let engines = parse_engines(doc)?;
    let phases = parse_phases(doc, &net, seed)?;
    let events = parse_events(doc, &net, seed, phases.last().expect("non-empty").end_epoch)?;

    Ok(ScenarioSpec {
        name,
        description,
        topology,
        net,
        mode,
        seed,
        engines,
        phases,
        events,
    })
}

fn parse_mode(doc: &SpannedJson) -> Result<SchedulerMode, SpecError> {
    let Some(mode) = doc.get("mode") else {
        return Ok(SchedulerMode::Base);
    };
    if let Some(s) = mode.as_str() {
        return match s {
            "base" => Ok(SchedulerMode::Base),
            "datasize" => Ok(SchedulerMode::DataSize),
            "hol_delay" => Ok(SchedulerMode::HolDelay { alpha: 0.001 }),
            "stateful" => Ok(SchedulerMode::Stateful),
            "projector" => Ok(SchedulerMode::Projector),
            "iterative" => Ok(SchedulerMode::Iterative { rounds: 2 }),
            other => Err(SpecError::at(
                mode.pos,
                format!("unknown scheduler mode {other:?} (base, datasize, hol_delay, stateful, projector, iterative)"),
            )),
        };
    }
    // Object form for parameterized modes.
    expect_obj(mode, "'mode'")?;
    check_keys(mode, &["kind", "rounds", "alpha"], "'mode'")?;
    match req_str(mode, "kind")?.as_str() {
        "iterative" => {
            let rounds = opt_u64_range(mode, "rounds", 1, MAX_ROUNDS)?.unwrap_or(2) as usize;
            Ok(SchedulerMode::Iterative { rounds })
        }
        "hol_delay" => {
            let alpha = match mode.get("alpha") {
                None => 0.001,
                Some(v) => num_in_range(v, "'alpha'", 0.0, f64::INFINITY, false)?,
            };
            Ok(SchedulerMode::HolDelay { alpha })
        }
        other => Err(SpecError::at(
            mode.get("kind").expect("required above").pos,
            format!(
                "parameterized 'mode.kind' must be \"iterative\" or \"hol_delay\", got {other:?}"
            ),
        )),
    }
}

fn parse_engines(doc: &SpannedJson) -> Result<Vec<EngineKind>, SpecError> {
    let Some(engines) = doc.get("engines") else {
        return Ok(vec![EngineKind::Negotiator, EngineKind::Oblivious]);
    };
    let items = engines
        .as_array()
        .ok_or_else(|| SpecError::at(engines.pos, "'engines' must be an array of strings"))?;
    if items.is_empty() {
        return Err(SpecError::at(engines.pos, "'engines' must not be empty"));
    }
    let mut out = Vec::new();
    for item in items {
        let kind = match item.as_str() {
            Some("negotiator") => EngineKind::Negotiator,
            Some("oblivious") => EngineKind::Oblivious,
            _ => {
                return Err(SpecError::at(
                    item.pos,
                    "engine must be \"negotiator\" or \"oblivious\"",
                ))
            }
        };
        if out.contains(&kind) {
            return Err(SpecError::at(item.pos, "duplicate engine"));
        }
        out.push(kind);
    }
    Ok(out)
}

fn parse_phases(
    doc: &SpannedJson,
    net: &NetworkConfig,
    scenario_seed: u64,
) -> Result<Vec<PhaseSpec>, SpecError> {
    let phases = doc
        .get("phases")
        .ok_or_else(|| SpecError::at(doc.pos, "the scenario needs a 'phases' array"))?;
    let items = phases
        .as_array()
        .ok_or_else(|| SpecError::at(phases.pos, "'phases' must be an array"))?;
    if items.is_empty() {
        return Err(SpecError::at(phases.pos, "'phases' must not be empty"));
    }
    let mut out: Vec<PhaseSpec> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        expect_obj(item, "a phase")?;
        let label = opt_str(item, "label")?.unwrap_or_else(|| format!("phase{i}"));
        let epochs = item.get("epochs").ok_or_else(|| {
            SpecError::at(
                item.pos,
                format!("phase '{label}' needs an 'epochs' [start, end] pair"),
            )
        })?;
        let pair = epochs.as_array().unwrap_or(&[]);
        let (start_epoch, end_epoch) = match pair {
            [s, e] => (
                s.as_u64()
                    .ok_or_else(|| SpecError::at(s.pos, "epoch must be a non-negative integer"))?,
                e.as_u64()
                    .ok_or_else(|| SpecError::at(e.pos, "epoch must be a non-negative integer"))?,
            ),
            _ => {
                return Err(SpecError::at(
                    epochs.pos,
                    "'epochs' must be a [start, end] pair",
                ))
            }
        };
        if end_epoch <= start_epoch {
            return Err(SpecError::at(
                epochs.pos,
                format!(
                    "phase '{label}': end epoch {end_epoch} must exceed start epoch {start_epoch}"
                ),
            ));
        }
        if end_epoch > MAX_EPOCHS {
            return Err(SpecError::at(
                epochs.pos,
                format!(
                    "phase '{label}': end epoch {end_epoch} exceeds the {MAX_EPOCHS}-epoch cap"
                ),
            ));
        }
        // Phases must tile the timeline: contiguous, in order, from 0.
        let expected_start = out.last().map_or(0, |p: &PhaseSpec| p.end_epoch);
        match start_epoch.cmp(&expected_start) {
            std::cmp::Ordering::Less => {
                return Err(SpecError::at(
                    epochs.pos,
                    format!(
                        "phase '{label}' starts at epoch {start_epoch}, overlapping the previous phase (ends at {expected_start})"
                    ),
                ))
            }
            std::cmp::Ordering::Greater => {
                return Err(SpecError::at(
                    epochs.pos,
                    format!(
                        "phase '{label}' starts at epoch {start_epoch}, leaving a gap after epoch {expected_start} — phases must be contiguous"
                    ),
                ))
            }
            std::cmp::Ordering::Equal => {}
        }
        let workload = parse_workload(item, &label, net)?;
        let faults = match item.get("faults") {
            None => Vec::new(),
            Some(f) => parse_phase_faults(f, net, scenario_seed, i as u64)?,
        };
        out.push(PhaseSpec {
            label,
            start_epoch,
            end_epoch,
            workload,
            faults,
        });
    }
    Ok(out)
}

fn parse_workload(
    phase: &SpannedJson,
    label: &str,
    net: &NetworkConfig,
) -> Result<WorkloadPhase, SpecError> {
    let kind = req_str(phase, "workload")?;
    let base = ["label", "epochs", "workload", "faults"];
    match kind.as_str() {
        "poisson" => {
            check_keys(
                phase,
                &[&base[..], &["dist", "load"]].concat(),
                "a poisson phase",
            )?;
            let load_val = phase.get("load").ok_or_else(|| {
                SpecError::at(
                    phase.pos,
                    format!("phase '{label}' needs a 'load' percentage"),
                )
            })?;
            let load = num_in_range(load_val, "'load'", 0.0, 100.0, true)? / 100.0;
            let dist = match opt_str(phase, "dist")?.as_deref() {
                None | Some("hadoop") => FlowSizeDist::hadoop(),
                Some("web_search") => FlowSizeDist::web_search(),
                Some("google") => FlowSizeDist::google(),
                Some(other) => {
                    return Err(SpecError::at(
                        phase.get("dist").expect("present").pos,
                        format!("unknown 'dist' {other:?} (hadoop, web_search, google)"),
                    ))
                }
            };
            Ok(WorkloadPhase::Poisson { dist, load })
        }
        "incast" => {
            check_keys(
                phase,
                &[&base[..], &["degree", "flow_bytes", "every_epochs"]].concat(),
                "an incast phase",
            )?;
            let degree_val = phase.get("degree").ok_or_else(|| {
                SpecError::at(phase.pos, format!("phase '{label}' needs a 'degree'"))
            })?;
            let degree = degree_val.as_u64().filter(|&d| d >= 1).ok_or_else(|| {
                SpecError::at(degree_val.pos, "'degree' must be a positive integer")
            })? as usize;
            if degree >= net.n_tors {
                return Err(SpecError::at(
                    degree_val.pos,
                    format!(
                        "incast degree {degree} out of range — the fabric has {} ToRs and one must receive",
                        net.n_tors
                    ),
                ));
            }
            let flow_bytes = req_u64_range(phase, "flow_bytes", 1, MAX_FLOW_BYTES, label)?;
            let every_epochs = opt_u64_range(phase, "every_epochs", 1, MAX_EPOCHS)?;
            Ok(WorkloadPhase::Incast {
                degree,
                flow_bytes,
                every_epochs,
            })
        }
        "all_to_all" => {
            check_keys(
                phase,
                &[&base[..], &["flow_bytes"]].concat(),
                "an all_to_all phase",
            )?;
            let flow_bytes = req_u64_range(phase, "flow_bytes", 1, MAX_FLOW_BYTES, label)?;
            Ok(WorkloadPhase::AllToAll { flow_bytes })
        }
        "trace" => {
            check_keys(phase, &[&base[..], &["path"]].concat(), "a trace phase")?;
            let path = req_str(phase, "path")?;
            Ok(WorkloadPhase::Trace { path })
        }
        other => Err(SpecError::at(
            phase.get("workload").expect("required above").pos,
            format!("unknown workload {other:?} (poisson, incast, all_to_all, trace)"),
        )),
    }
}

fn parse_events(
    doc: &SpannedJson,
    net: &NetworkConfig,
    scenario_seed: u64,
    total_epochs: u64,
) -> Result<Vec<EventSpec>, SpecError> {
    let Some(events) = doc.get("events") else {
        return Ok(Vec::new());
    };
    let items = events
        .as_array()
        .ok_or_else(|| SpecError::at(events.pos, "'events' must be an array"))?;
    let mut out = Vec::new();
    for (i, item) in items.iter().enumerate() {
        expect_obj(item, "an event")?;
        check_keys(
            item,
            &["at_epoch", "action", "inject", "links", "ratio", "seed"],
            "an event",
        )?;
        let at = item
            .get("at_epoch")
            .ok_or_else(|| SpecError::at(item.pos, "an event needs an 'at_epoch'"))?;
        let at_epoch = at
            .as_u64()
            .ok_or_else(|| SpecError::at(at.pos, "'at_epoch' must be a non-negative integer"))?;
        if at_epoch >= total_epochs {
            return Err(SpecError::at(
                at.pos,
                format!(
                    "event at epoch {at_epoch} is past the scenario end (epoch {total_epochs})"
                ),
            ));
        }
        // A key belonging to a *different* action must not be silently
        // dropped (the misplaced-parameter variant of the unknown-key rule).
        let reject_stray = |keys: &[&str], action: &str| -> Result<(), SpecError> {
            for &key in keys {
                if let Some(stray) = item.get(key) {
                    return Err(SpecError::at(
                        stray.pos,
                        format!("'{key}' does not apply to the '{action}' action"),
                    ));
                }
            }
            Ok(())
        };
        // An event carries either a link-state 'action' or an adversarial
        // 'inject' — exactly one.
        if let Some(inject) = item.get("inject") {
            if item.get("action").is_some() {
                return Err(SpecError::at(
                    inject.pos,
                    "an event takes either 'action' or 'inject', not both",
                ));
            }
            for &key in &["links", "ratio", "seed"] {
                if let Some(stray) = item.get(key) {
                    return Err(SpecError::at(
                        stray.pos,
                        format!("'{key}' belongs inside the 'inject' object"),
                    ));
                }
            }
            let seed = scenario_seed ^ (0x1AF0_5EED + i as u64);
            out.push(EventSpec {
                at_epoch,
                action: EventAction::Inject(parse_inject(inject, net, seed)?),
            });
            continue;
        }
        let action = req_str(item, "action")?;
        let action = match action.as_str() {
            "fail_links" => {
                reject_stray(&["ratio", "seed"], "fail_links")?;
                let links = item
                    .get("links")
                    .ok_or_else(|| SpecError::at(item.pos, "'fail_links' needs a 'links' array"))?;
                let entries = links
                    .as_array()
                    .filter(|l| !l.is_empty())
                    .ok_or_else(|| SpecError::at(links.pos, "'links' must be a non-empty array"))?;
                let mut parsed = Vec::new();
                for entry in entries {
                    parsed.push(parse_link(entry, net)?);
                }
                EventAction::FailLinks(parsed)
            }
            "repair_links" => {
                reject_stray(&["links", "ratio", "seed"], "repair_links")?;
                EventAction::RepairLinks
            }
            "fail_random" => {
                reject_stray(&["links"], "fail_random")?;
                let ratio_val = item
                    .get("ratio")
                    .ok_or_else(|| SpecError::at(item.pos, "'fail_random' needs a 'ratio'"))?;
                let ratio = num_in_range(ratio_val, "'ratio'", 0.0, 1.0, true)?;
                let seed = opt_u64_min(item, "seed", 0)?
                    .unwrap_or_else(|| scenario_seed ^ (0x5CE7A810 + i as u64));
                EventAction::FailRandom { ratio, seed }
            }
            other => {
                return Err(SpecError::at(
                    item.get("action").expect("required above").pos,
                    format!(
                        "unknown action {other:?} (fail_links, repair_links, fail_random){}",
                        did_you_mean(other, &["fail_links", "repair_links", "fail_random"])
                    ),
                ))
            }
        };
        out.push(EventSpec { at_epoch, action });
    }
    out.sort_by_key(|e| e.at_epoch);
    Ok(out)
}

fn parse_link(
    entry: &SpannedJson,
    net: &NetworkConfig,
) -> Result<(usize, usize, LinkDir), SpecError> {
    expect_obj(entry, "a link")?;
    check_keys(entry, &["tor", "port", "dir"], "a link")?;
    let tor_val = entry
        .get("tor")
        .ok_or_else(|| SpecError::at(entry.pos, "a link needs a 'tor' index"))?;
    let tor = tor_val
        .as_u64()
        .ok_or_else(|| SpecError::at(tor_val.pos, "'tor' must be a non-negative integer"))?
        as usize;
    if tor >= net.n_tors {
        return Err(SpecError::at(
            tor_val.pos,
            format!(
                "ToR index {tor} out of range — the fabric has {} ToRs",
                net.n_tors
            ),
        ));
    }
    let port_val = entry
        .get("port")
        .ok_or_else(|| SpecError::at(entry.pos, "a link needs a 'port' index"))?;
    let port = port_val
        .as_u64()
        .ok_or_else(|| SpecError::at(port_val.pos, "'port' must be a non-negative integer"))?
        as usize;
    if port >= net.n_ports {
        return Err(SpecError::at(
            port_val.pos,
            format!(
                "port index {port} out of range — each ToR has {} uplink ports",
                net.n_ports
            ),
        ));
    }
    let dir = match opt_str(entry, "dir")?.as_deref() {
        None | Some("egress") => LinkDir::Egress,
        Some("ingress") => LinkDir::Ingress,
        Some(other) => {
            return Err(SpecError::at(
                entry.get("dir").expect("present").pos,
                format!("'dir' must be \"egress\" or \"ingress\", got {other:?}"),
            ))
        }
    };
    Ok((tor, port, dir))
}

// ---------------------------------------------------------------------
// Adversarial fault injection (`topology::inject` surface)
// ---------------------------------------------------------------------

const INJECT_KINDS: &[&str] = &[
    "flap_start",
    "flap_stop",
    "partition",
    "heal",
    "gray_start",
    "gray_stop",
    "greedy_start",
    "greedy_stop",
];

/// Parse an event's `inject` object, dispatching on its `kind`.
/// `default_seed` feeds any randomized sub-spec left without an explicit
/// seed, so omitting one still yields a reproducible scenario.
fn parse_inject(
    v: &SpannedJson,
    net: &NetworkConfig,
    default_seed: u64,
) -> Result<InjectSpec, SpecError> {
    expect_obj(v, "an 'inject'")?;
    let kind = req_str(v, "kind")?;
    match kind.as_str() {
        "flap_start" => {
            check_keys(
                v,
                &["kind", "links", "ratio", "seed", "up_epochs", "down_epochs"],
                "a 'flap_start' inject",
            )?;
            let targets = parse_flap_targets(v, net, default_seed)?;
            let up_epochs = need_u64(v, "up_epochs", 1, MAX_EPOCHS, "a 'flap_start' inject")?;
            let down_epochs = need_u64(v, "down_epochs", 1, MAX_EPOCHS, "a 'flap_start' inject")?;
            Ok(InjectSpec::FlapStart {
                targets,
                up_epochs,
                down_epochs,
            })
        }
        "flap_stop" => {
            check_keys(v, &["kind"], "a 'flap_stop' inject")?;
            Ok(InjectSpec::FlapStop)
        }
        "partition" => {
            check_keys(
                v,
                &["kind", "assign", "groups", "seed"],
                "a 'partition' inject",
            )?;
            Ok(InjectSpec::Partition(parse_partition(
                v,
                net,
                default_seed,
            )?))
        }
        "heal" => {
            check_keys(v, &["kind"], "a 'heal' inject")?;
            Ok(InjectSpec::Heal)
        }
        "gray_start" => {
            check_keys(
                v,
                &["kind", "drop_prob", "seed", "tors"],
                "a 'gray_start' inject",
            )?;
            let (drop_prob, seed, tors) = parse_gray(v, net, default_seed)?;
            Ok(InjectSpec::GrayStart {
                drop_prob,
                seed,
                tors,
            })
        }
        "gray_stop" => {
            check_keys(v, &["kind"], "a 'gray_stop' inject")?;
            Ok(InjectSpec::GrayStop)
        }
        "greedy_start" => {
            check_keys(v, &["kind", "tors"], "a 'greedy_start' inject")?;
            let tors_val = v.get("tors").ok_or_else(|| {
                SpecError::at(v.pos, "a 'greedy_start' inject needs a 'tors' array")
            })?;
            Ok(InjectSpec::GreedyStart {
                tors: parse_tor_list(tors_val, net)?,
            })
        }
        "greedy_stop" => {
            check_keys(v, &["kind"], "a 'greedy_stop' inject")?;
            Ok(InjectSpec::GreedyStop)
        }
        other => Err(SpecError::at(
            v.get("kind").expect("required above").pos,
            format!(
                "unknown inject kind {other:?} ({}){}",
                INJECT_KINDS.join(", "),
                did_you_mean(other, INJECT_KINDS)
            ),
        )),
    }
}

/// Parse a phase's `faults` block: every listed fault starts at the
/// phase start, and its counterpart stop fires at the phase end — the
/// declarative way to say "this phase runs under adversity".
fn parse_phase_faults(
    v: &SpannedJson,
    net: &NetworkConfig,
    scenario_seed: u64,
    phase_i: u64,
) -> Result<Vec<InjectSpec>, SpecError> {
    expect_obj(v, "'faults'")?;
    check_keys(
        v,
        &["flap", "partition", "gray", "greedy"],
        "a phase 'faults' block",
    )?;
    // Distinct default-seed lanes per phase and per fault family.
    let lane = |family: u64| scenario_seed ^ (0xFA01_7000 + 4 * phase_i + family);
    let mut out = Vec::new();
    if let Some(flap) = v.get("flap") {
        expect_obj(flap, "'faults.flap'")?;
        check_keys(
            flap,
            &["links", "ratio", "seed", "up_epochs", "down_epochs"],
            "'faults.flap'",
        )?;
        let targets = parse_flap_targets(flap, net, lane(0))?;
        let up_epochs = need_u64(flap, "up_epochs", 1, MAX_EPOCHS, "'faults.flap'")?;
        let down_epochs = need_u64(flap, "down_epochs", 1, MAX_EPOCHS, "'faults.flap'")?;
        out.push(InjectSpec::FlapStart {
            targets,
            up_epochs,
            down_epochs,
        });
    }
    if let Some(part) = v.get("partition") {
        expect_obj(part, "'faults.partition'")?;
        check_keys(part, &["assign", "groups", "seed"], "'faults.partition'")?;
        out.push(InjectSpec::Partition(parse_partition(part, net, lane(1))?));
    }
    if let Some(gray) = v.get("gray") {
        expect_obj(gray, "'faults.gray'")?;
        check_keys(gray, &["drop_prob", "seed", "tors"], "'faults.gray'")?;
        let (drop_prob, seed, tors) = parse_gray(gray, net, lane(2))?;
        out.push(InjectSpec::GrayStart {
            drop_prob,
            seed,
            tors,
        });
    }
    if let Some(greedy) = v.get("greedy") {
        expect_obj(greedy, "'faults.greedy'")?;
        check_keys(greedy, &["tors"], "'faults.greedy'")?;
        let tors_val = greedy
            .get("tors")
            .ok_or_else(|| SpecError::at(greedy.pos, "'faults.greedy' needs a 'tors' array"))?;
        out.push(InjectSpec::GreedyStart {
            tors: parse_tor_list(tors_val, net)?,
        });
    }
    if out.is_empty() {
        return Err(SpecError::at(
            v.pos,
            "a 'faults' block needs at least one of flap, partition, gray, greedy",
        ));
    }
    Ok(out)
}

/// Flap targets: an explicit `links` list XOR a random `ratio` (with an
/// optional `seed` that only makes sense for the random form).
fn parse_flap_targets(
    v: &SpannedJson,
    net: &NetworkConfig,
    default_seed: u64,
) -> Result<FlapTargets, SpecError> {
    match (v.get("links"), v.get("ratio")) {
        (Some(_), Some(ratio)) => Err(SpecError::at(
            ratio.pos,
            "a flap takes either 'links' or a 'ratio', not both",
        )),
        (None, None) => Err(SpecError::at(
            v.pos,
            "a flap needs 'links' or a random 'ratio'",
        )),
        (Some(links), None) => {
            if let Some(seed) = v.get("seed") {
                return Err(SpecError::at(
                    seed.pos,
                    "'seed' only applies to a random ('ratio') flap",
                ));
            }
            let entries = links
                .as_array()
                .filter(|l| !l.is_empty())
                .ok_or_else(|| SpecError::at(links.pos, "'links' must be a non-empty array"))?;
            let mut parsed = Vec::new();
            for entry in entries {
                parsed.push(parse_link(entry, net)?);
            }
            Ok(FlapTargets::Links(parsed))
        }
        (None, Some(ratio_val)) => {
            let ratio = num_in_range(ratio_val, "'ratio'", 0.0, 1.0, true)?;
            let seed = opt_u64_min(v, "seed", 0)?.unwrap_or(default_seed);
            Ok(FlapTargets::Random { ratio, seed })
        }
    }
}

/// Partition spec: an explicit per-ToR `assign` array XOR a random
/// `groups` count (with an optional `seed` for the random form).
fn parse_partition(
    v: &SpannedJson,
    net: &NetworkConfig,
    default_seed: u64,
) -> Result<PartitionSpec, SpecError> {
    match (v.get("assign"), v.get("groups")) {
        (Some(_), Some(groups)) => Err(SpecError::at(
            groups.pos,
            "a partition takes either 'assign' or 'groups', not both",
        )),
        (None, None) => Err(SpecError::at(
            v.pos,
            "a partition needs a per-ToR 'assign' array or a random 'groups' count",
        )),
        (Some(assign), None) => {
            if let Some(seed) = v.get("seed") {
                return Err(SpecError::at(
                    seed.pos,
                    "'seed' only applies to a random ('groups') partition",
                ));
            }
            let entries = assign
                .as_array()
                .ok_or_else(|| SpecError::at(assign.pos, "'assign' must be an array"))?;
            if entries.len() != net.n_tors {
                return Err(SpecError::at(
                    assign.pos,
                    format!(
                        "'assign' lists {} groups but the fabric has {} ToRs",
                        entries.len(),
                        net.n_tors
                    ),
                ));
            }
            let mut groups = Vec::with_capacity(entries.len());
            for entry in entries {
                let g = entry
                    .as_u64()
                    .filter(|&g| g < net.n_tors as u64)
                    .ok_or_else(|| {
                        SpecError::at(
                            entry.pos,
                            format!("a group id must be an integer below {}", net.n_tors),
                        )
                    })?;
                groups.push(g as u32);
            }
            let first = groups[0];
            if groups.iter().all(|&g| g == first) {
                return Err(SpecError::at(
                    assign.pos,
                    "'assign' puts every ToR in one group — that is no partition",
                ));
            }
            Ok(PartitionSpec::Explicit(groups))
        }
        (None, Some(groups_val)) => {
            let groups = groups_val
                .as_u64()
                .filter(|&g| (2..=net.n_tors as u64).contains(&g))
                .ok_or_else(|| {
                    SpecError::at(
                        groups_val.pos,
                        format!("'groups' must be an integer in [2, {}]", net.n_tors),
                    )
                })? as u32;
            let seed = opt_u64_min(v, "seed", 0)?.unwrap_or(default_seed);
            Ok(PartitionSpec::Random { groups, seed })
        }
    }
}

/// Gray-failure parameters: required `drop_prob`, optional `seed` and
/// optional affected-`tors` scope.
fn parse_gray(
    v: &SpannedJson,
    net: &NetworkConfig,
    default_seed: u64,
) -> Result<(f64, u64, Option<Vec<usize>>), SpecError> {
    let prob_val = v
        .get("drop_prob")
        .ok_or_else(|| SpecError::at(v.pos, "a gray failure needs a 'drop_prob'"))?;
    let drop_prob = num_in_range(prob_val, "'drop_prob'", 0.0, 1.0, true)?;
    let seed = opt_u64_min(v, "seed", 0)?.unwrap_or(default_seed);
    let tors = match v.get("tors") {
        None => None,
        Some(tors_val) => Some(parse_tor_list(tors_val, net)?),
    };
    Ok((drop_prob, seed, tors))
}

/// A non-empty, duplicate-free list of in-range ToR indices.
fn parse_tor_list(v: &SpannedJson, net: &NetworkConfig) -> Result<Vec<usize>, SpecError> {
    let entries = v
        .as_array()
        .filter(|t| !t.is_empty())
        .ok_or_else(|| SpecError::at(v.pos, "'tors' must be a non-empty array"))?;
    let mut out = Vec::with_capacity(entries.len());
    for entry in entries {
        let tor = entry
            .as_u64()
            .filter(|&t| t < net.n_tors as u64)
            .ok_or_else(|| {
                SpecError::at(
                    entry.pos,
                    format!(
                        "ToR index out of range — the fabric has {} ToRs",
                        net.n_tors
                    ),
                )
            })? as usize;
        if out.contains(&tor) {
            return Err(SpecError::at(
                entry.pos,
                format!("duplicate ToR index {tor}"),
            ));
        }
        out.push(tor);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Small typed accessors over SpannedJson, all error-reporting by position
// ---------------------------------------------------------------------

fn expect_obj(v: &SpannedJson, what: &str) -> Result<(), SpecError> {
    if v.members().is_some() {
        Ok(())
    } else {
        Err(SpecError::at(
            v.pos,
            format!("{what} must be an object, got {}", v.kind()),
        ))
    }
}

/// Reject members outside `allowed` (typo protection — a misspelled key
/// must not silently fall back to a default) and duplicate keys (lookups
/// return the first occurrence, so a repeated key's later value would be
/// silently dropped).
fn check_keys(v: &SpannedJson, allowed: &[&str], what: &str) -> Result<(), SpecError> {
    let mut seen: Vec<&str> = Vec::new();
    for (key_pos, key, _) in v.members().into_iter().flatten() {
        if seen.contains(&key.as_str()) {
            return Err(SpecError::at(
                *key_pos,
                format!("duplicate key {key:?} in {what} — the earlier value would win silently"),
            ));
        }
        seen.push(key);
        if !allowed.contains(&key.as_str()) {
            return Err(SpecError::at(
                *key_pos,
                format!(
                    "unknown key {key:?} in {what} (allowed: {}){}",
                    allowed.join(", "),
                    did_you_mean(key, allowed)
                ),
            ));
        }
    }
    Ok(())
}

/// ` — did you mean "x"?` when a candidate sits within a small edit
/// distance of the input, else empty. Candidates are scanned in sorted
/// order (mirroring the lint module's sorted-rule lookup) so ties break
/// the same way on every platform.
fn did_you_mean(input: &str, candidates: &[&str]) -> String {
    let mut sorted: Vec<&str> = candidates.to_vec();
    sorted.sort_unstable();
    let mut best: Option<(usize, &str)> = None;
    for cand in sorted {
        let d = edit_distance(input, cand);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, cand));
        }
    }
    match best {
        // One edit is always plausible; two only on longer names, so
        // short keys like "at" never suggest an unrelated "al".
        Some((d, cand)) if d >= 1 && (d == 1 || (d == 2 && input.len() >= 5)) => {
            format!(" — did you mean {cand:?}?")
        }
        _ => String::new(),
    }
}

/// Levenshtein distance, two-row dynamic program over bytes (keys are
/// ASCII identifiers).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            curr[j + 1] = subst.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

fn req_str(v: &SpannedJson, key: &str) -> Result<String, SpecError> {
    match v.get(key) {
        None => Err(SpecError::at(
            v.pos,
            format!("missing required key '{key}'"),
        )),
        Some(s) => s.as_str().map(str::to_string).ok_or_else(|| {
            SpecError::at(s.pos, format!("'{key}' must be a string, got {}", s.kind()))
        }),
    }
}

fn opt_str(v: &SpannedJson, key: &str) -> Result<Option<String>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(s) => s.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
            SpecError::at(s.pos, format!("'{key}' must be a string, got {}", s.kind()))
        }),
    }
}

fn opt_u64_min(v: &SpannedJson, key: &str, min: u64) -> Result<Option<u64>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(n) => n
            .as_u64()
            .filter(|&x| x >= min)
            .map(Some)
            .ok_or_else(|| SpecError::at(n.pos, format!("'{key}' must be an integer >= {min}"))),
    }
}

fn opt_u64_range(v: &SpannedJson, key: &str, min: u64, max: u64) -> Result<Option<u64>, SpecError> {
    match opt_u64_min(v, key, min)? {
        Some(x) if x > max => Err(SpecError::at(
            v.get(key).expect("present").pos,
            format!("'{key}' = {x} exceeds the supported maximum of {max}"),
        )),
        other => Ok(other),
    }
}

fn req_u64_range(
    v: &SpannedJson,
    key: &str,
    min: u64,
    max: u64,
    label: &str,
) -> Result<u64, SpecError> {
    opt_u64_range(v, key, min, max)?
        .ok_or_else(|| SpecError::at(v.pos, format!("phase '{label}' needs a '{key}'")))
}

/// Like [`req_u64_range`] but phrased for non-phase containers.
fn need_u64(v: &SpannedJson, key: &str, min: u64, max: u64, what: &str) -> Result<u64, SpecError> {
    opt_u64_range(v, key, min, max)?
        .ok_or_else(|| SpecError::at(v.pos, format!("{what} needs a '{key}'")))
}

/// A number in `(lo, hi]` (exclusive low — loads and ratios of zero are
/// meaningless; `closed_hi` includes the upper bound).
fn num_in_range(
    v: &SpannedJson,
    what: &str,
    lo: f64,
    hi: f64,
    closed_hi: bool,
) -> Result<f64, SpecError> {
    let x = v.as_f64().ok_or_else(|| {
        SpecError::at(v.pos, format!("{what} must be a number, got {}", v.kind()))
    })?;
    let in_range = x.is_finite() && x > lo && if closed_hi { x <= hi } else { x < hi };
    if in_range {
        Ok(x)
    } else {
        Err(SpecError::at(
            v.pos,
            format!(
                "{what} = {x} is out of range ({lo}, {hi}{}",
                if closed_hi { "]" } else { ")" }
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra: &str) -> String {
        format!(
            r#"{{
  "name": "t",
  "topology": "parallel",
  "tors": 16,
  "ports": 4,
  "phases": [
    {{"workload": "poisson", "load": 50, "epochs": [0, 100]}}
  ]{extra}
}}"#
        )
    }

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = parse_scenario(&minimal("")).unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.net.n_tors, 16);
        assert_eq!(s.net.host_bandwidth.bps(), 400_000_000_000);
        assert_eq!(s.seed, 1);
        assert_eq!(s.engines.len(), 2);
        assert_eq!(s.total_epochs(), 100);
        assert!(matches!(s.mode, SchedulerMode::Base));
        let WorkloadPhase::Poisson { load, .. } = &s.phases[0].workload else {
            panic!("poisson phase")
        };
        assert!((load - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_key_points_at_line_and_column() {
        let text = "{\n  \"name\": \"t\",\n  \"topolojy\": \"parallel\",\n  \"phases\": []\n}";
        let err = parse_scenario(text).unwrap_err();
        assert!(err.starts_with("line 3, column 3:"), "{err}");
        assert!(err.contains("unknown key \"topolojy\""), "{err}");
    }

    #[test]
    fn overlapping_and_gapped_phases_rejected() {
        let text = r#"{
  "name": "t", "topology": "parallel", "tors": 16, "ports": 4,
  "phases": [
    {"workload": "poisson", "load": 50, "epochs": [0, 100]},
    {"workload": "poisson", "load": 80, "epochs": [90, 200]}
  ]
}"#;
        let err = parse_scenario(text).unwrap_err();
        assert!(err.contains("line 5"), "{err}");
        assert!(err.contains("overlapping"), "{err}");
        let gapped = text.replace("[90, 200]", "[110, 200]");
        let err = parse_scenario(&gapped).unwrap_err();
        assert!(err.contains("gap"), "{err}");
    }

    #[test]
    fn out_of_range_indices_rejected_with_position() {
        let text = minimal(
            r#",
  "events": [
    {"at_epoch": 10, "action": "fail_links",
     "links": [{"tor": 99, "port": 0, "dir": "egress"}]}
  ]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("ToR index 99 out of range"), "{err}");
        assert!(err.contains("line 11"), "{err}");
        let bad_port = text
            .replace("\"tor\": 99", "\"tor\": 3")
            .replace("\"port\": 0", "\"port\": 7");
        let err = parse_scenario(&bad_port).unwrap_err();
        assert!(err.contains("port index 7 out of range"), "{err}");
    }

    #[test]
    fn loads_ratios_and_epochs_validated() {
        let err =
            parse_scenario(&minimal("").replace("\"load\": 50", "\"load\": 150")).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = parse_scenario(&minimal("").replace("[0, 100]", "[100, 100]")).unwrap_err();
        assert!(err.contains("must exceed"), "{err}");
        let text = minimal(
            r#",
  "events": [{"at_epoch": 10, "action": "fail_random", "ratio": 1.5}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("'ratio' = 1.5 is out of range"), "{err}");
        let text = minimal(
            r#",
  "events": [{"at_epoch": 500, "action": "repair_links"}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("past the scenario end"), "{err}");
    }

    #[test]
    fn stray_action_parameters_rejected() {
        // A parameter belonging to a different action must not be
        // silently dropped.
        let text = minimal(
            r#",
  "events": [{"at_epoch": 10, "action": "fail_links", "ratio": 0.3,
              "links": [{"tor": 1, "port": 0, "dir": "egress"}]}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("'ratio' does not apply"), "{err}");
        let text = minimal(
            r#",
  "events": [{"at_epoch": 10, "action": "fail_random", "ratio": 0.3,
              "links": [{"tor": 1, "port": 0, "dir": "egress"}]}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("'links' does not apply"), "{err}");
    }

    #[test]
    fn duplicate_keys_rejected() {
        // The later value of a repeated key would silently lose to the
        // earlier one; reject it at the second occurrence.
        let text = minimal(
            r#",
  "seed": 1,
  "seed": 7"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("duplicate key \"seed\""), "{err}");
        assert!(err.contains("line 10"), "{err}");
    }

    #[test]
    fn fabric_and_horizon_caps_prevent_overflow() {
        let err =
            parse_scenario(&minimal("").replace("\"tors\": 16", "\"tors\": 1048576")).unwrap_err();
        assert!(err.contains("exceeds the supported maximum"), "{err}");
        let err =
            parse_scenario(&minimal("").replace("[0, 100]", "[0, 40000000000000000]")).unwrap_err();
        assert!(err.contains("epoch cap"), "{err}");
        // Bandwidths, propagation and flow sizes are capped too — e.g. a
        // 2e10 Gbps host aggregate would wrap `gbps · 10^9` in release
        // builds and silently mis-scale every Poisson load.
        for extra in [
            ",\n  \"host_gbps\": 20000000000",
            ",\n  \"port_gbps\": 20000000000",
            ",\n  \"propagation_ns\": 10000000000",
        ] {
            let err = parse_scenario(&minimal(extra)).unwrap_err();
            assert!(err.contains("exceeds the supported maximum"), "{err}");
        }
        let text = minimal("").replace(
            r#"{"workload": "poisson", "load": 50, "epochs": [0, 100]}"#,
            r#"{"workload": "incast", "degree": 4, "flow_bytes": 10000000000000000, "epochs": [0, 100]}"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("exceeds the supported maximum"), "{err}");
    }

    #[test]
    fn modes_and_engines_parse() {
        let text = minimal(
            r#",
  "mode": {"kind": "iterative", "rounds": 3},
  "engines": ["negotiator"]"#,
        );
        let s = parse_scenario(&text).unwrap();
        assert!(matches!(s.mode, SchedulerMode::Iterative { rounds: 3 }));
        assert_eq!(s.engines, vec![EngineKind::Negotiator]);
        let err = parse_scenario(&minimal(
            r#",
  "engines": []"#,
        ))
        .unwrap_err();
        assert!(err.contains("must not be empty"), "{err}");
        let err = parse_scenario(
            &minimal(
                r#",
  "mode": "fancy"#,
            )
            .replace("\"fancy", "\"fancy\""),
        )
        .unwrap_err();
        assert!(err.contains("unknown scheduler mode"), "{err}");
    }

    #[test]
    fn inject_events_parse_and_default_seeds_derive() {
        let text = minimal(
            r#",
  "events": [
    {"at_epoch": 5, "inject": {"kind": "gray_start", "drop_prob": 0.5, "tors": [0, 1]}},
    {"at_epoch": 40, "inject": {"kind": "gray_stop"}},
    {"at_epoch": 10, "inject": {"kind": "flap_start", "ratio": 0.1,
                                "up_epochs": 2, "down_epochs": 1}},
    {"at_epoch": 20, "inject": {"kind": "partition", "groups": 2}},
    {"at_epoch": 30, "inject": {"kind": "heal"}},
    {"at_epoch": 50, "inject": {"kind": "greedy_start", "tors": [3]}}
  ]"#,
        );
        let s = parse_scenario(&text).unwrap();
        assert_eq!(s.events.len(), 6);
        // Sorted by epoch; spot-check the gray event and its derived seed.
        let EventAction::Inject(InjectSpec::GrayStart {
            drop_prob,
            seed,
            tors,
        }) = &s.events[0].action
        else {
            panic!("gray_start first, got {:?}", s.events[0]);
        };
        assert!((drop_prob - 0.5).abs() < 1e-12);
        assert_eq!(*seed, 1 ^ 0x1AF0_5EED); // scenario seed 1, event index 0
        assert_eq!(tors.as_deref(), Some(&[0usize, 1][..]));
        let EventAction::Inject(InjectSpec::FlapStart {
            targets,
            up_epochs,
            down_epochs,
        }) = &s.events[1].action
        else {
            panic!("flap_start second");
        };
        assert!(
            matches!(targets, FlapTargets::Random { ratio, .. } if (ratio - 0.1).abs() < 1e-12)
        );
        assert_eq!((*up_epochs, *down_epochs), (2, 1));
    }

    #[test]
    fn inject_validation_points_at_the_token() {
        // action XOR inject.
        let text = minimal(
            r#",
  "events": [{"at_epoch": 1, "action": "repair_links", "inject": {"kind": "heal"}}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("either 'action' or 'inject'"), "{err}");
        // Flap needs exactly one target form.
        let text = minimal(
            r#",
  "events": [{"at_epoch": 1, "inject": {"kind": "flap_start",
    "ratio": 0.1, "links": [{"tor": 0, "port": 0}], "up_epochs": 1, "down_epochs": 1}}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("not both"), "{err}");
        // Explicit partition must cover the fabric and actually split it.
        let text = minimal(
            r#",
  "events": [{"at_epoch": 1, "inject": {"kind": "partition", "assign": [0, 1]}}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(
            err.contains("lists 2 groups but the fabric has 16"),
            "{err}"
        );
        let all_zero = format!("[{}]", vec!["0"; 16].join(", "));
        let text = minimal(&format!(
            r#",
  "events": [{{"at_epoch": 1, "inject": {{"kind": "partition", "assign": {all_zero}}}}}]"#
        ));
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("no partition"), "{err}");
        // drop_prob range, greedy tor range and duplicates.
        let text = minimal(
            r#",
  "events": [{"at_epoch": 1, "inject": {"kind": "gray_start", "drop_prob": 1.5}}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("'drop_prob' = 1.5 is out of range"), "{err}");
        let text = minimal(
            r#",
  "events": [{"at_epoch": 1, "inject": {"kind": "greedy_start", "tors": [3, 3]}}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("duplicate ToR index 3"), "{err}");
        // Event-level parameters must live inside the inject object.
        let text = minimal(
            r#",
  "events": [{"at_epoch": 1, "seed": 4, "inject": {"kind": "heal"}}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("'seed' belongs inside the 'inject'"), "{err}");
    }

    #[test]
    fn phase_faults_block_parses_and_validates() {
        let text = minimal("").replace(
            r#"{"workload": "poisson", "load": 50, "epochs": [0, 100]}"#,
            r#"{"workload": "poisson", "load": 50, "epochs": [0, 100],
      "faults": {"gray": {"drop_prob": 0.3}, "greedy": {"tors": [1, 2]}}}"#,
        );
        let s = parse_scenario(&text).unwrap();
        assert_eq!(s.phases[0].faults.len(), 2);
        assert!(matches!(
            s.phases[0].faults[0],
            InjectSpec::GrayStart { .. }
        ));
        assert!(matches!(
            &s.phases[0].faults[1],
            InjectSpec::GreedyStart { tors } if tors == &[1, 2]
        ));
        let empty = text.replace(
            r#""faults": {"gray": {"drop_prob": 0.3}, "greedy": {"tors": [1, 2]}}"#,
            r#""faults": {}"#,
        );
        let err = parse_scenario(&empty).unwrap_err();
        assert!(err.contains("at least one of"), "{err}");
    }

    #[test]
    fn typos_get_a_did_you_mean_hint() {
        let text = minimal(
            r#",
  "events": [{"at_epoch": 1, "action": "fail_linsk",
              "links": [{"tor": 0, "port": 0}]}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("did you mean \"fail_links\"?"), "{err}");
        let text = minimal(
            r#",
  "events": [{"at_epoch": 1, "inject": {"kind": "grey_start", "drop_prob": 0.5}}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("did you mean \"gray_start\"?"), "{err}");
        // Unknown keys get the same treatment via check_keys.
        let text = minimal(
            r#",
  "events": [{"at_epoch": 1, "inject": {"kind": "gray_start", "drop_probb": 0.5}}]"#,
        );
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("did you mean \"drop_prob\"?"), "{err}");
        // A wildly wrong name earns no guess.
        let err = parse_scenario(&minimal("").replace("\"topology\"", "\"zzzzzz\"")).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn syntax_errors_point_at_the_spot() {
        let err = parse_scenario("{\n  \"name\": \"t\",,\n}").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn thin_clos_divisibility_checked() {
        let text = minimal("").replace("\"tors\": 16", "\"tors\": 18");
        let err = parse_scenario(&text).unwrap_err();
        assert!(err.contains("divisible"), "{err}");
    }
}
