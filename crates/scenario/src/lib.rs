#![warn(missing_docs)]

//! Declarative, file-driven fabric experiments.
//!
//! Every experiment the harness originally shipped is hard-coded Rust in
//! `bench::experiments`. This crate turns the same ingredients — the
//! workload generators, trace replay, the link-failure machinery and the
//! two deterministic engines — into a *scenario engine*: a JSON file
//! declares the fabric, a sequence of **workload phases** (any generator
//! or a replayed trace, each with a load and an epoch span) and a
//! **timeline of events** at absolute epochs (`fail_links`,
//! `repair_links`, `fail_random`, plus the adversarial `inject` family —
//! flapping links, partitions, gray failures, greedy granters — also
//! available as a per-phase `faults` block); the crate compiles it into
//! one flow trace, one failure schedule, one fault-injection schedule and
//! one list of phase boundaries, and runs it through both engines. Each run feeds a
//! [`metrics::PhaseProbe`], so the output carries an epoch-bucketed time
//! series — goodput, FCT percentiles, match ratio and queue backlog per
//! phase — next to the usual aggregates.
//!
//! Pipeline:
//!
//! * [`spec`] — the schema and its strict validation. Scenario files are
//!   user-authored, so every error (unknown key, overlapping phases,
//!   out-of-range ToR index) points at a `line:column` in the file, and
//!   everything is rejected before any simulation starts.
//! * [`compile`] — [`ScenarioSpec`] → [`CompiledScenario`]: phase specs
//!   become one merged [`workload::FlowTrace`], events become a
//!   [`topology::FailureSchedule`] input, phase ends become probe
//!   boundaries.
//! * [`runner`] — one deferred run closure per engine, ready to be
//!   wrapped into the sweep machinery's `RunSpec`s and executed across
//!   `--jobs` workers (the harness side lives in `bench::scenario`).
//! * [`series`] — turns probe snapshots + the flow tracker into the
//!   per-phase [`PhaseStat`] rows, their JSON form and the text table.
//!
//! Determinism: a compiled scenario is a pure function of the file's
//! contents; probes never influence the simulation; and runs execute
//! through the same ordered pool as every experiment — so scenario output
//! is byte-identical at any `--jobs`, which `bench` asserts in its
//! determinism suite.

pub mod compile;
pub mod hash;
pub mod runner;
pub mod series;
pub mod spec;

pub use compile::{compile, CompiledScenario};
pub use hash::StableHasher;
pub use runner::{
    build_runs, build_runs_traced, build_runs_with_progress, PhaseProgress, ProgressSink,
    ScenarioRun, ScenarioRunOutput,
};
pub use series::PhaseStat;
pub use spec::{parse_scenario, EngineKind, InjectSpec, PhaseSpec, ScenarioSpec, WorkloadPhase};
