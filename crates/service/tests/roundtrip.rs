//! End-to-end daemon tests against a live in-process server on an
//! ephemeral port — the acceptance criteria of the serving subsystem:
//!
//! * a submitted scenario's result is **byte-identical** to the offline
//!   `paper scenario <file> --json --no-timing` document;
//! * resubmitting is a cache hit served without simulation;
//! * concurrent submissions of distinct scenarios all complete with
//!   correct, uncorrupted results;
//! * identical in-flight submissions coalesce onto one job;
//! * graceful shutdown rejects new submissions with a clear error while
//!   draining everything already accepted.

use std::path::{Path, PathBuf};
// lint: allow(D003) tests drive the daemon with real concurrent clients by design
use std::sync::mpsc;

use service::{client, Disposition, ServeConfig, Server};

fn scenario_text(name: &str, seed: u64) -> String {
    format!(
        r#"{{
  "name": "{name}",
  "topology": "parallel",
  "tors": 16, "ports": 4, "host_gbps": 200,
  "seed": {seed},
  "phases": [
    {{"label": "calm", "workload": "poisson", "load": 40, "epochs": [0, 30]}},
    {{"label": "storm", "workload": "poisson", "load": 85, "epochs": [30, 60]}}
  ],
  "events": [
    {{"at_epoch": 30, "action": "fail_random", "ratio": 0.1, "seed": 9}},
    {{"at_epoch": 45, "action": "repair_links"}}
  ]
}}"#
    )
}

/// The offline ground truth: what `paper scenario <file> --json
/// --no-timing` would write for this text.
fn offline_document(text: &str) -> String {
    let compiled =
        bench::scenario::load_str(text, Path::new("<test>")).expect("test scenario is valid");
    let report = bench::scenario::run(&compiled, 2, 1);
    bench::scenario::deterministic_document(&report)
}

fn start_server(tag: &str, jobs: usize) -> (Server, String, PathBuf) {
    let out = std::env::temp_dir().join(format!("nego-service-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        workers: 2,
        out: out.clone(),
        scenarios_dir: out.join("scenarios"),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    (server, addr, out)
}

#[test]
fn submit_is_byte_identical_then_cache_hits() {
    let (_server, addr, out) = start_server("identity", 2);
    let text = scenario_text("identity", 11);
    let expected = offline_document(&text);

    let mut phase_events = 0usize;
    let first = client::submit(&addr, &text, 0, |event| {
        if event.get("event").and_then(metrics::Json::as_str) == Some("phase") {
            phase_events += 1;
        }
    })
    .expect("first submission");
    assert_eq!(first.disposition, Disposition::Simulated);
    assert_eq!(
        first.document, expected,
        "daemon result must be byte-identical"
    );
    assert_eq!(
        phase_events, 4,
        "two engines x two phases streamed live progress"
    );

    // Resubmission: served from the cache, same bytes, no progress
    // events (nothing simulates).
    let mut events_on_hit = 0usize;
    let second = client::submit(&addr, &text, 0, |_| events_on_hit += 1).expect("resubmission");
    assert_eq!(second.disposition, Disposition::CacheHit);
    assert_eq!(second.document, expected);
    assert_eq!(events_on_hit, 1, "just the 'cached' notice");
    // The cache entry is on disk where the CLI would look for it.
    let compiled = bench::scenario::load_str(&text, Path::new("<test>")).unwrap();
    let entry = bench::cache::ResultCache::new(out.join("cache"))
        .lookup(compiled.content_hash())
        .expect("entry persisted");
    assert_eq!(entry.document, expected);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn concurrent_distinct_submissions_all_complete_correctly() {
    let (_server, addr, out) = start_server("concurrent", 4);
    let texts: Vec<String> = (0..4)
        .map(|i| scenario_text(&format!("concurrent{i}"), 100 + i as u64))
        .collect();
    let handles: Vec<_> = texts
        .iter()
        .map(|text| {
            let addr = addr.clone();
            let text = text.clone();
            // lint: allow(D003) concurrent submitters are the scenario under test
            std::thread::spawn(move || client::submit(&addr, &text, 0, |_| {}))
        })
        .collect();
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no panic").expect("submission succeeds"))
        .collect();
    for (text, outcome) in texts.iter().zip(&outcomes) {
        assert_eq!(outcome.disposition, Disposition::Simulated);
        assert_eq!(
            outcome.document,
            offline_document(text),
            "concurrent results must be correct and uncorrupted"
        );
    }
    // All four were distinct content hashes: four distinct documents.
    let mut docs: Vec<&str> = outcomes.iter().map(|o| o.document.as_str()).collect();
    docs.sort();
    docs.dedup();
    assert_eq!(docs.len(), 4);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn identical_inflight_submissions_coalesce() {
    let (_server, addr, out) = start_server("coalesce", 2);
    let text = scenario_text("coalesce", 77);
    // First submission: wait until the daemon confirms it queued (the
    // opening event) so the twin below is guaranteed to find it either
    // in flight or already cached — never simulate twice.
    // lint: allow(D003) channel sequences the racing submitters this test needs
    let (queued_tx, queued_rx) = mpsc::channel::<()>();
    let background = {
        let (addr, text) = (addr.clone(), text.clone());
        // lint: allow(D003) concurrent submitters are the scenario under test
        std::thread::spawn(move || {
            let mut first_event = Some(queued_tx);
            client::submit(&addr, &text, 0, |_| {
                if let Some(tx) = first_event.take() {
                    let _ = tx.send(());
                }
            })
        })
    };
    queued_rx.recv().expect("first submission queued");
    let twin = client::submit(&addr, &text, 0, |_| {}).expect("twin submission");
    let first = background
        .join()
        .expect("no panic")
        .expect("first submission");
    assert_eq!(first.disposition, Disposition::Simulated);
    assert_ne!(
        twin.disposition,
        Disposition::Simulated,
        "the twin must coalesce or hit the cache, never simulate again"
    );
    assert_eq!(twin.document, first.document);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn status_result_and_cancel_endpoints() {
    let (_server, addr, out) = start_server("endpoints", 1);
    // Occupy the single worker with a heavier scenario so the next job
    // stays queued long enough to cancel.
    let heavy = scenario_text("heavy", 1).replace("[30, 60]", "[30, 400]");
    let victim = scenario_text("victim", 2);
    let background = {
        let (addr, heavy) = (addr.clone(), heavy.clone());
        // lint: allow(D003) concurrent submitters are the scenario under test
        std::thread::spawn(move || client::submit(&addr, &heavy, 5, |_| {}))
    };
    // Queue the victim without streaming: 202 + a job id.
    let (status, body) =
        client::request_json(&addr, "POST", "/jobs", victim.as_bytes()).expect("submit victim");
    assert_eq!(status, 202, "{body}");
    let doc = metrics::Json::parse(body.trim()).expect("valid admission body");
    let id = doc
        .get("job")
        .and_then(metrics::Json::as_u64)
        .expect("job id");
    let location = format!("/jobs/{id}");
    // Status endpoint knows it.
    let (status, body) = client::request_json(&addr, "GET", &location, b"").unwrap();
    assert_eq!(status, 200);
    let parsed = metrics::Json::parse(body.trim()).unwrap();
    assert_eq!(parsed.get("job").and_then(metrics::Json::as_u64), Some(id));
    // Cancel it (or observe it finished if the worker got to it first —
    // scheduling is not guaranteed, but both outcomes must be coherent).
    let (status, body) = client::request_json(&addr, "DELETE", &location, b"").unwrap();
    match status {
        200 => {
            let (status, body) = client::request_json(&addr, "GET", &location, b"").unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("\"cancelled\""), "{body}");
            // No result for a cancelled job.
            let (status, _) =
                client::request_json(&addr, "GET", &format!("{location}/result"), b"").unwrap();
            assert_eq!(status, 409);
        }
        409 => assert!(body.contains("only queued jobs"), "{body}"),
        other => panic!("unexpected cancel status {other}: {body}"),
    }
    // Unknown job ids are clean 404s.
    let (status, _) = client::request_json(&addr, "GET", "/jobs/99999", b"").unwrap();
    assert_eq!(status, 404);
    background
        .join()
        .expect("no panic")
        .expect("heavy submission");
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn graceful_shutdown_rejects_new_work_and_drains() {
    let (mut server, addr, out) = start_server("shutdown", 2);
    let text = scenario_text("drainme", 5);
    let expected = offline_document(&text);
    // healthz reports ok before the drain.
    let (status, body) = client::request_json(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");
    // Begin the drain over the wire.
    let (status, body) = client::request_json(&addr, "POST", "/shutdown", b"").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    // New submissions get the clear rejection, not a hang or a reset.
    let err = client::submit(&addr, &text, 0, |_| {}).expect_err("must be rejected");
    assert!(err.contains("503"), "{err}");
    assert!(err.contains("shutting down"), "{err}");
    let (status, body) = client::request_json(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    // Complete the shutdown; afterwards the port no longer answers.
    server.shutdown();
    assert!(client::request_json(&addr, "GET", "/healthz", b"").is_err());
    // A fresh daemon on the same directories picks the cache right up:
    // run offline first, then serve — the submission is a cache hit.
    let (_server2, addr2, _) = {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            workers: 1,
            out: out.clone(),
            scenarios_dir: out.join("scenarios"),
            ..ServeConfig::default()
        })
        .expect("rebind");
        let addr = server.addr().to_string();
        (server, addr, ())
    };
    let compiled = bench::scenario::load_str(&text, Path::new("<test>")).unwrap();
    let report = bench::scenario::run(&compiled, 2, 1);
    bench::cache::ResultCache::new(out.join("cache"))
        .store(
            compiled.content_hash(),
            &bench::cache::CacheEntry {
                scenario: compiled.spec.name.clone(),
                rendered: report.rendered.clone(),
                document: bench::scenario::deterministic_document(&report),
            },
        )
        .expect("CLI-side store");
    let outcome = client::submit(&addr2, &text, 0, |_| {}).expect("served from CLI-written cache");
    assert_eq!(outcome.disposition, Disposition::CacheHit);
    assert_eq!(outcome.document, expected);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn invalid_submissions_fail_fast_with_positions() {
    let (_server, addr, out) = start_server("invalid", 1);
    // A syntax error names line:column; nothing is queued.
    let err = client::submit(&addr, "{\n  \"name\": oops\n}", 0, |_| {}).expect_err("must fail");
    assert!(err.contains("400"), "{err}");
    assert!(err.contains("line 2"), "{err}");
    // A semantic error (unknown key) too.
    let bad = scenario_text("ok-name", 3).replace("\"topology\"", "\"topolojy\"");
    let err = client::submit(&addr, &bad, 0, |_| {}).expect_err("must fail");
    assert!(err.contains("unknown key"), "{err}");
    let (_, body) = client::request_json(&addr, "GET", "/healthz", b"").unwrap();
    assert!(body.contains("\"jobs\": 0"), "nothing queued: {body}");
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn scenarios_endpoint_lists_the_library() {
    let (_server, addr, out) = start_server("library", 1);
    let dir = out.join("scenarios");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("one.json"), scenario_text("one", 1)).unwrap();
    let (status, body) = client::request_json(&addr, "GET", "/scenarios", b"").unwrap();
    assert_eq!(status, 200);
    let doc = metrics::Json::parse(body.trim()).unwrap();
    let scenarios = doc.get("scenarios").unwrap().as_array().unwrap();
    assert_eq!(scenarios.len(), 1);
    assert_eq!(
        scenarios[0].get("id").and_then(metrics::Json::as_str),
        Some("one")
    );
    assert_eq!(
        scenarios[0].get("epochs").and_then(metrics::Json::as_u64),
        Some(60)
    );
    let _ = std::fs::remove_dir_all(&out);
}
