#![warn(missing_docs)]

//! The scenario-serving subsystem: a long-running daemon in front of the
//! deterministic scenario/sweep core.
//!
//! After the batch harness (`bench`) every run was a one-shot CLI
//! invocation paying full simulation cost even for inputs already
//! computed. This crate adds the serving layer:
//!
//! * [`server`] — `paper serve`: a hand-rolled HTTP/1.1 daemon
//!   (`std::net::TcpListener`, no external dependencies) that validates
//!   scenario submissions with the strict `scenario` validator, queues
//!   them on a prioritized [`sim::pool::WorkerPool`], streams per-phase
//!   progress (via `metrics::PhaseProbe` boundary observers) and returns
//!   result documents **byte-identical** to an offline
//!   `paper scenario <file> --json --no-timing` run.
//! * [`client`] — `paper submit`: the matching wire client.
//! * [`jobs`] — the job table: states, progress events, followers, and
//!   the in-flight index that coalesces duplicate submissions.
//! * [`http`] — the shared minimal HTTP/1.1 reader/writer pair.
//! * [`library`] — the machine-readable scenario-library listing behind
//!   `paper list --json` and `GET /scenarios`.
//! * [`metrics`] — the `GET /metrics` Prometheus text exposition
//!   (job/pool/cache counters, stage timers, request-latency histogram).
//! * [`log`] — the daemon's one leveled logger (`--log-level`).
//!
//! Identity of work is content, not text: submissions are keyed by
//! `scenario::hash` — a stable digest over the *compiled* scenario — and
//! results live in the content-addressed cache (`bench::cache`) that the
//! batch CLI shares, so the daemon and `paper scenario` populate each
//! other.

pub mod client;
pub mod http;
pub mod jobs;
pub mod library;
pub mod log;
pub mod metrics;
pub mod server;

pub use client::{submit, Disposition, SubmitOutcome};
pub use log::LogLevel;
pub use server::{serve_forever, ServeConfig, Server, PROGRESS_SCHEMA_VERSION};
