//! The `paper submit` client: submit a scenario over the daemon's wire
//! protocol and stream progress until the result document arrives.
//!
//! The streaming response is NDJSON progress lines followed by a
//! `{"event":"result","bytes":N,...}` marker and exactly `N` raw bytes of
//! result document, so the document's bytes pass through untouched —
//! which is what lets the CI smoke job `cmp` them against an offline run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use metrics::Json;

use crate::http::{header_value, read_response_head};

/// Where a submission's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served from the content-addressed cache without simulating.
    CacheHit,
    /// Simulated by this submission.
    Simulated,
    /// Attached to an identical job another submission already had in
    /// flight.
    Coalesced,
}

impl Disposition {
    fn from_wire(label: &str) -> Disposition {
        match label {
            "hit" => Disposition::CacheHit,
            "coalesced" => Disposition::Coalesced,
            _ => Disposition::Simulated,
        }
    }
}

/// A completed submission.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The deterministic result document (trailing newline included) —
    /// byte-identical to `paper scenario <file> --json --no-timing`.
    pub document: String,
    /// Where the result came from.
    pub disposition: Disposition,
}

/// Submit `scenario_text` to the daemon at `addr`, invoking `on_event`
/// for every progress event, and return the result document.
pub fn submit(
    addr: &str,
    scenario_text: &str,
    priority: i64,
    mut on_event: impl FnMut(&Json),
) -> Result<SubmitOutcome, String> {
    let path = format!("/jobs?stream=1&priority={priority}");
    let stream = request(addr, "POST", &path, scenario_text.as_bytes())?;
    let mut reader = BufReader::new(stream);
    let (status, _headers) = read_response_head(&mut reader)?;
    if status != 200 {
        return Err(read_error(&mut reader, status));
    }
    // Progress lines until the result marker, then exactly `bytes` bytes.
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading event stream: {e}"))?;
        if n == 0 {
            return Err("daemon closed the stream before a result".to_string());
        }
        let event =
            Json::parse(line.trim_end()).map_err(|e| format!("malformed event {line:?}: {e}"))?;
        match event.get("event").and_then(Json::as_str) {
            Some("result") => {
                let bytes = event
                    .get("bytes")
                    .and_then(Json::as_u64)
                    .ok_or("result marker without a byte count")?
                    as usize;
                let disposition = event
                    .get("cache")
                    .and_then(Json::as_str)
                    .map(Disposition::from_wire)
                    .unwrap_or(Disposition::Simulated);
                let mut body = vec![0u8; bytes];
                reader
                    .read_exact(&mut body)
                    .map_err(|e| format!("reading {bytes}-byte result: {e}"))?;
                let document = String::from_utf8(body)
                    .map_err(|_| "result document is not UTF-8".to_string())?;
                return Ok(SubmitOutcome {
                    document,
                    disposition,
                });
            }
            Some("error") => {
                let message = event
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified daemon error");
                return Err(format!("job failed: {message}"));
            }
            _ => on_event(&event),
        }
    }
}

/// One non-streaming request; returns `(status, body)`.
pub fn request_json(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(u16, String), String> {
    let stream = request(addr, method, path, body)?;
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_response_head(&mut reader)?;
    let text = match header_value(&headers, "content-length") {
        Some(v) => {
            let len: usize = v
                .trim()
                .parse()
                .map_err(|_| format!("bad content-length {v:?}"))?;
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("reading body: {e}"))?;
            String::from_utf8(buf).map_err(|_| "body is not UTF-8".to_string())?
        }
        None => {
            let mut buf = String::new();
            reader
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading body: {e}"))?;
            buf
        }
    };
    Ok((status, text))
}

fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<TcpStream, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    )
    .and_then(|()| stream.write_all(body))
    .and_then(|()| stream.flush())
    .map_err(|e| format!("sending request to {addr}: {e}"))?;
    Ok(stream)
}

fn read_error(reader: &mut impl BufRead, status: u16) -> String {
    let mut body = String::new();
    let _ = reader.read_to_string(&mut body);
    let message = Json::parse(body.trim())
        .ok()
        .and_then(|doc| doc.get("error").and_then(Json::as_str).map(str::to_string))
        .unwrap_or(body);
    format!("daemon returned {status}: {}", message.trim())
}
