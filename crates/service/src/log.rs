//! One leveled logger for every daemon print.
//!
//! The daemon used to write unconditionally to stderr; now every print
//! goes through [`crate::log_error!`] / [`crate::log_info!`] /
//! [`crate::log_debug!`], gated on a process-wide [`LogLevel`] set once
//! from `paper serve --log-level`. Levels are ordered `error < info <
//! debug`: a level admits itself and everything below it. The logger is
//! service-zone only — engines stay print-free — and writes to stderr so
//! stdout remains reserved for result documents.

use std::sync::atomic::{AtomicU8, Ordering};

/// Daemon log verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Failures only (cache write errors, handler faults).
    Error = 0,
    /// Lifecycle messages: startup, shutdown, drain summary. The default.
    Info = 1,
    /// Per-request lines (method, path, status).
    Debug = 2,
}

impl LogLevel {
    /// Parse a `--log-level` value.
    pub fn parse(s: &str) -> Result<LogLevel, String> {
        match s {
            "error" => Ok(LogLevel::Error),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level '{other}' (expected error, info or debug)"
            )),
        }
    }

    /// The name `parse` accepts for this level.
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Set the process-wide level (called once at daemon startup).
pub fn set_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current level.
pub fn level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Error,
        1 => LogLevel::Info,
        _ => LogLevel::Debug,
    }
}

/// Is `at` admitted by the current level? (Macro plumbing; call the
/// macros, not this.)
pub fn enabled(at: LogLevel) -> bool {
    at <= level()
}

/// Emit one leveled line to stderr (macro plumbing).
pub fn write(at: LogLevel, args: std::fmt::Arguments<'_>) {
    if enabled(at) {
        eprintln!("{args}");
    }
}

/// Log at `error` level (always emitted).
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        $crate::log::write($crate::log::LogLevel::Error, format_args!($($arg)*))
    };
}

/// Log at `info` level (suppressed by `--log-level error`).
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        $crate::log::write($crate::log::LogLevel::Info, format_args!($($arg)*))
    };
}

/// Log at `debug` level (emitted only with `--log-level debug`).
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        $crate::log::write($crate::log::LogLevel::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        for level in [LogLevel::Error, LogLevel::Info, LogLevel::Debug] {
            assert_eq!(LogLevel::parse(level.label()), Ok(level));
        }
        assert!(LogLevel::parse("verbose").is_err());
        assert!(LogLevel::parse("INFO").is_err(), "levels are lowercase");
    }

    #[test]
    fn levels_gate_in_order() {
        // Not parallel-safe with other level tests, so one test covers
        // the whole ordering.
        set_level(LogLevel::Error);
        assert!(enabled(LogLevel::Error));
        assert!(!enabled(LogLevel::Info));
        assert!(!enabled(LogLevel::Debug));
        set_level(LogLevel::Debug);
        assert!(enabled(LogLevel::Info));
        assert!(enabled(LogLevel::Debug));
        set_level(LogLevel::Info);
        assert!(enabled(LogLevel::Info));
        assert!(!enabled(LogLevel::Debug));
    }
}
