//! The scenario-serving daemon.
//!
//! A long-running process built on the blocking `std::net` stack: an
//! accept loop hands each connection to a short-lived handler thread
//! (one request per connection), submissions are validated and compiled
//! with the scenario crate's strict validator **before** anything is
//! queued, and accepted jobs drain through a [`sim::pool::WorkerPool`] —
//! the same worker discipline the batch sweep engine uses. Results are
//! byte-identical to an offline `paper scenario <file> --json
//! --no-timing` run because both paths execute the same compiled runs
//! and assemble through `bench::scenario`.
//!
//! In front of the queue sits the content-addressed result cache
//! (`bench::cache`, shared on disk with the CLI): a submission whose
//! compiled content hash is already stored returns immediately without
//! simulating, and an identical submission already *in flight* coalesces
//! onto the running job instead of spawning a twin.
//!
//! Shutdown is graceful by construction: SIGTERM/ctrl-c (or `POST
//! /shutdown`) flips the draining flag — new submissions get a clear
//! `503`, everything already accepted runs to completion, streaming
//! clients receive their results, and cache entries only ever land via
//! write-to-temp + rename, so no signal timing can leave a torn file.
//!
//! Wire protocol (documented with examples in the README "Service"
//! section):
//!
//! | Endpoint                  | Meaning                                       |
//! |---------------------------|-----------------------------------------------|
//! | `GET /healthz`            | liveness + queue statistics                   |
//! | `GET /scenarios`          | machine-readable library listing              |
//! | `POST /jobs`              | submit scenario JSON (`?stream=1`, `?wait=1`, |
//! |                           | `?priority=N`)                                |
//! | `GET /jobs/<id>`          | status + progress events                      |
//! | `GET /jobs/<id>/result`   | the result document once done                 |
//! | `GET /jobs/<id>/trace`    | the job's flight-recorder NDJSON once done    |
//! | `GET /jobs/<id>/flows`    | slowest-flow span forensics (`?top=N`)        |
//! | `DELETE /jobs/<id>`       | cancel a still-queued job                     |
//! | `GET /metrics`            | Prometheus text exposition                    |
//! | `POST /shutdown`          | begin graceful shutdown                       |

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bench::cache::{CacheEntry, ResultCache};
use bench::scenario::{deterministic_document, execute_traced, load_str};
use metrics::Json;
use scenario::hash::hex;
use scenario::{CompiledScenario, PhaseProgress, ProgressSink};
use sim::pool::WorkerPool;

use crate::http::{read_request, respond, start_stream, Request};
use crate::jobs::{lock_recover, Admission, Follow, Job, JobState, JobTable};
use crate::library::library_json;
use crate::log::LogLevel;
use crate::metrics::{render_prometheus, HttpMetrics, MetricsInput};
use crate::{log_debug, log_error, log_info};

/// Version stamped on every NDJSON line the daemon streams (progress
/// events, the result marker, error events), so consumers can detect
/// layout changes without sniffing fields. Bumped when a line's shape
/// changes incompatibly.
pub const PROGRESS_SCHEMA_VERSION: u64 = 1;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, `HOST:PORT` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads draining the job queue.
    pub jobs: usize,
    /// Intra-run shard workers per simulation (`--workers`). Purely a
    /// wall-clock knob: served documents are byte-identical at any value,
    /// so the cache coalesces across worker counts.
    pub workers: usize,
    /// Results directory; the shared cache lives at `<out>/cache`.
    pub out: PathBuf,
    /// Scenario library directory (`GET /scenarios`); also anchors
    /// relative trace paths inside submitted scenarios.
    pub scenarios_dir: PathBuf,
    /// Daemon log verbosity (`--log-level error|info|debug`).
    pub log_level: LogLevel,
    /// Flight-recorder ring capacity per engine (`--trace-capacity`;
    /// `None` = the default 16Ki). Shapes only the recorded trace bytes —
    /// served documents, hashes and cache keys are capacity-blind.
    pub trace_capacity: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: bench::cli::DEFAULT_ADDR.to_string(),
            jobs: sim::pool::default_jobs(),
            workers: 1,
            out: PathBuf::from("results"),
            scenarios_dir: PathBuf::from("scenarios"),
            log_level: LogLevel::Info,
            trace_capacity: None,
        }
    }
}

struct ServerState {
    config: ServeConfig,
    cache: ResultCache,
    table: JobTable,
    pool: Mutex<Option<WorkerPool>>,
    /// Submissions are rejected (503) the moment this flips; status and
    /// result queries keep working while accepted jobs drain.
    draining: AtomicBool,
    /// The accept loop exits only here, after the drain completes.
    closed: AtomicBool,
    /// Request counter + latency histogram for `/metrics`.
    http: HttpMetrics,
    /// Cumulative flight-recorder ring-overflow drops across every job
    /// this daemon has run (`paper_trace_dropped_total`).
    trace_dropped: AtomicU64,
}

/// A running daemon: bind address, background accept loop, worker pool.
/// [`Server::shutdown`] (or dropping the handle) drains gracefully.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind `config.addr` and start serving in background threads.
    pub fn start(config: ServeConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking listener: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        crate::log::set_level(config.log_level);
        let state = Arc::new(ServerState {
            cache: ResultCache::new(config.out.join("cache")),
            pool: Mutex::new(Some(WorkerPool::new(config.jobs))),
            table: JobTable::new(),
            draining: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            http: HttpMetrics::new(),
            trace_dropped: AtomicU64::new(0),
            config,
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let state = Arc::clone(&state);
            let conns = Arc::clone(&conns);
            // lint: allow(D003) daemon accept loop; simulation work still runs on sim::pool
            std::thread::spawn(move || accept_loop(&listener, &state, &conns))
        };
        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Has graceful shutdown begun (signal, `POST /shutdown`, or
    /// [`Server::shutdown`])?
    pub fn draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// Drain gracefully: reject new submissions with a clear 503 (status
    /// and result queries keep answering), run every accepted job to
    /// completion, flush streaming clients, then stop accepting and join
    /// all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.state.draining.store(true, Ordering::SeqCst);
        if let Some(mut pool) = lock_recover(&self.state.pool).take() {
            pool.shutdown();
        }
        self.state.closed.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<_> = lock_recover(&self.conns).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run the daemon in the foreground until SIGTERM/ctrl-c (unix) or
/// `POST /shutdown`, then drain and return.
pub fn serve_forever(config: ServeConfig) -> Result<(), String> {
    install_signal_handlers();
    let mut server = Server::start(config)?;
    log_info!(
        "[serving on http://{} — cache {}, {} workers; ctrl-c or POST /shutdown to drain]",
        server.addr(),
        server.state.cache.dir().display(),
        server.state.config.jobs,
    );
    while !signal_received() && !server.draining() {
        std::thread::sleep(Duration::from_millis(100));
    }
    log_info!("[shutdown requested — draining in-flight jobs]");
    server.shutdown();
    let (total, _, coalesced) = server.state.table.stats();
    log_info!("[drained; {total} jobs served, {coalesced} coalesced]");
    Ok(())
}

// -------------------------------------------------------------------
// Signal plumbing: a flag flip is all a handler may safely do.
// -------------------------------------------------------------------

static SIGNALLED: AtomicBool = AtomicBool::new(false);

fn signal_received() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32);
    unsafe {
        signal(SIGINT, handler as usize);
        signal(SIGTERM, handler as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {
    // No portable std signal API; `POST /shutdown` remains available.
}

// -------------------------------------------------------------------
// Accept + dispatch
// -------------------------------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        if state.closed.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let state = Arc::clone(state);
                // lint: allow(D003) one thread per connection; simulation work still runs on sim::pool
                let handle = std::thread::spawn(move || handle_connection(stream, &state));
                let mut conns = lock_recover(conns);
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let request = match read_request(&mut reader) {
        Ok(Some(request)) => request,
        Ok(None) => return, // connection opened and closed, nothing sent
        Err(error) => {
            let _ = error_response(&mut stream, 400, &error);
            return;
        }
    };
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| route(&mut stream, &request, state)));
    let elapsed = started.elapsed().as_secs_f64();
    state.http.observe(elapsed);
    log_debug!(
        "[{} {} — {:.1} ms]",
        request.method,
        request.path,
        elapsed * 1e3
    );
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(_io)) => {
            // The peer went away mid-response; nothing sensible to do.
        }
        Err(_panic) => {
            // A handler bug answers with a typed 500 instead of silently
            // dropping the connection. Best-effort: the panic may have
            // struck after headers already went out.
            log_error!("[handler panicked on {} {}]", request.method, request.path);
            let _ = error_response(&mut stream, 500, "internal error handling request");
        }
    }
}

fn route(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<ServerState>,
) -> std::io::Result<()> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => handle_healthz(stream, state),
        ("GET", ["scenarios"]) => {
            let mut doc = library_json(&state.config.scenarios_dir).render();
            doc.push('\n');
            respond(stream, 200, "application/json", &[], doc.as_bytes())
        }
        ("POST", ["jobs"]) => handle_submit(stream, request, state),
        ("GET", ["jobs", id]) => handle_status(stream, id, state),
        ("GET", ["jobs", id, "result"]) => handle_result(stream, id, state),
        ("GET", ["jobs", id, "trace"]) => handle_trace(stream, id, state),
        ("GET", ["jobs", id, "flows"]) => handle_flows(stream, request, id, state),
        ("DELETE", ["jobs", id]) => handle_cancel(stream, id, state),
        ("GET", ["metrics"]) => handle_metrics(stream, state),
        ("POST", ["shutdown"]) => {
            state.draining.store(true, Ordering::SeqCst);
            let mut body = Json::object();
            body.push("status", "draining");
            json_response(stream, 200, &body)
        }
        (_, ["jobs", ..])
        | (_, ["scenarios"])
        | (_, ["healthz"])
        | (_, ["metrics"])
        | (_, ["shutdown"]) => error_response(stream, 405, "method not allowed"),
        _ => error_response(stream, 404, &format!("no route for {}", request.path)),
    }
}

fn handle_healthz(stream: &mut TcpStream, state: &Arc<ServerState>) -> std::io::Result<()> {
    let (total, active, coalesced) = state.table.stats();
    let mut body = Json::object();
    body.push(
        "status",
        if state.draining.load(Ordering::SeqCst) {
            "draining"
        } else {
            "ok"
        },
    )
    .push("jobs", total)
    .push("active", active)
    .push("coalesced", coalesced)
    .push("workers", state.config.jobs)
    .push("cache_dir", state.cache.dir().display().to_string());
    json_response(stream, 200, &body)
}

/// `GET /metrics`: Prometheus text exposition, gathered at scrape time
/// from the pool, job table, result cache, stage timers, and the HTTP
/// tally. Always answers — even mid-drain with the pool already gone.
fn handle_metrics(stream: &mut TcpStream, state: &Arc<ServerState>) -> std::io::Result<()> {
    let (admitted, active, coalesced) = state.table.stats();
    let pool = lock_recover(&state.pool).as_ref().map(|p| p.snapshot());
    let stages = bench::profile::snapshot();
    let text = render_prometheus(&MetricsInput {
        draining: state.draining.load(Ordering::SeqCst),
        jobs_admitted: admitted,
        jobs_active: active,
        jobs_coalesced: coalesced,
        pool,
        cache: state.cache.stats(),
        stages: &stages,
        http: &state.http,
        trace_dropped: state.trace_dropped.load(Ordering::Relaxed),
    });
    respond(
        stream,
        200,
        "text/plain; version=0.0.4; charset=utf-8",
        &[],
        text.as_bytes(),
    )
}

fn handle_submit(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<ServerState>,
) -> std::io::Result<()> {
    if state.draining.load(Ordering::SeqCst) {
        return error_response(stream, 503, "shutting down — not accepting new submissions");
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return error_response(stream, 400, "scenario body is not UTF-8");
    };
    let priority: i64 = match request.query_value("priority") {
        None => 0,
        Some(v) => match v.parse() {
            Ok(p) => p,
            Err(_) => return error_response(stream, 400, &format!("bad priority '{v}'")),
        },
    };
    let stream_mode = request.query_value("stream") == Some("1");
    let wait_mode = request.query_value("wait") == Some("1");
    // Validate + compile before anything queues: a bad scenario costs the
    // submitter one round trip and the daemon nothing.
    let origin = state.config.scenarios_dir.join("<submission>");
    let compiled = match load_str(text, &origin) {
        Ok(compiled) => compiled,
        Err(error) => return error_response(stream, 400, &error),
    };
    let hash = compiled.content_hash();
    if let Some(entry) = state.cache.lookup(hash) {
        return serve_cached(stream, stream_mode, hash, &entry);
    }
    let (job, disposition) = match state.table.admit(hash, &compiled.spec.name) {
        Admission::Coalesced(job) => (job, "coalesced"),
        Admission::New(job) => {
            if !dispatch(state, Arc::clone(&job), compiled, priority) {
                state.table.retire(&job);
                job.finish(JobState::Failed("daemon is shutting down".into()));
                return error_response(
                    stream,
                    503,
                    "shutting down — not accepting new submissions",
                );
            }
            (job, "miss")
        }
    };
    if stream_mode {
        stream_job(stream, &job, hash, disposition)
    } else if wait_mode {
        let mut cursor = usize::MAX; // skip events, wait for the end
        match job.follow(&mut cursor) {
            Follow::Finished(terminal) => finished_response(stream, &terminal, disposition),
            // A cursor pinned past every event only ever sees the terminal
            // state; if that invariant ever breaks, a typed 500 beats
            // panicking the worker thread.
            Follow::Events(_) => {
                error_response(stream, 500, "internal error: events on a pinned cursor")
            }
        }
    } else {
        let mut body = Json::object();
        body.push("job", job.id)
            .push("hash", hex(hash))
            .push("status", job.state().label())
            .push("cache", disposition)
            .push("location", format!("/jobs/{}", job.id));
        json_response(stream, 202, &body)
    }
}

/// Hand a new job to the worker pool. `false` when the pool is already
/// draining (the caller reports 503).
fn dispatch(
    state: &Arc<ServerState>,
    job: Arc<Job>,
    compiled: CompiledScenario,
    priority: i64,
) -> bool {
    let pool = lock_recover(&state.pool);
    let Some(pool) = pool.as_ref() else {
        return false;
    };
    let state = Arc::clone(state);
    pool.submit(priority, move || execute_job(&state, &job, &compiled))
        .is_some()
}

/// The worker-side job body: run the scenario with a progress sink wired
/// to the job record, store the cache entry atomically, finish the job.
fn execute_job(state: &Arc<ServerState>, job: &Arc<Job>, compiled: &CompiledScenario) {
    if !job.start() {
        // Cancelled while queued: never simulate, never cache.
        state.table.retire(job);
        return;
    }
    let sink: ProgressSink = {
        let job = Arc::clone(job);
        Arc::new(move |p: PhaseProgress| {
            let id = job.id;
            job.push_event(phase_event(&p, id));
        })
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Traced execution is the only execution path here: the recorded
        // NDJSON is what `GET /jobs/<id>/trace` serves, and because the
        // CLI's `--trace` runs the exact same function, the daemon's
        // trace and an offline trace of the same scenario are
        // byte-identical by construction.
        let (report, trace) = execute_traced(
            compiled,
            Some(sink),
            state.config.workers,
            state.config.trace_capacity,
        );
        let document = deterministic_document(&report);
        let entry = CacheEntry {
            scenario: compiled.spec.name.clone(),
            rendered: report.rendered,
            document: document.clone(),
        };
        if let Err(error) = state.cache.store(job.hash, &entry) {
            // A dead cache disk degrades to recomputation, never to a
            // failed job or a torn entry.
            log_error!("[cache: could not store {}: {error}]", hex(job.hash));
        }
        (document, trace)
    }));
    match outcome {
        Ok((document, trace)) => {
            state
                .trace_dropped
                .fetch_add(bench::traceq::dropped_total(&trace), Ordering::Relaxed);
            // Trace first, then the terminal transition: a follower that
            // observes Done must find the trace already attached.
            job.set_trace(Arc::new(trace));
            job.finish(JobState::Done(Arc::new(document)));
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "scenario run panicked".to_string());
            job.finish(JobState::Failed(msg));
        }
    }
    state.table.retire(job);
}

fn serve_cached(
    stream: &mut TcpStream,
    stream_mode: bool,
    hash: u64,
    entry: &CacheEntry,
) -> std::io::Result<()> {
    if stream_mode {
        let hash_hex = hex(hash);
        start_stream(
            stream,
            200,
            "application/x-ndjson",
            &[("X-Content-Hash", hash_hex.as_str()), ("X-Cache", "hit")],
        )?;
        // Cache hits never create a job, so this line carries no job id.
        let mut cached = event_json("cached");
        cached
            .push("hash", hash_hex.as_str())
            .push("scenario", entry.scenario.as_str());
        write_event(stream, &cached)?;
        write_result_marker(stream, entry.document.len(), "hit")?;
        stream.write_all(entry.document.as_bytes())?;
        stream.flush()
    } else {
        respond(
            stream,
            200,
            "application/json",
            &[("X-Content-Hash", hex(hash).as_str()), ("X-Cache", "hit")],
            entry.document.as_bytes(),
        )
    }
}

/// Follow `job` on a streaming connection: progress events as NDJSON
/// lines, then the result marker and the raw document.
fn stream_job(
    stream: &mut TcpStream,
    job: &Arc<Job>,
    hash: u64,
    disposition: &str,
) -> std::io::Result<()> {
    let hash_hex = hex(hash);
    start_stream(
        stream,
        200,
        "application/x-ndjson",
        &[
            ("X-Content-Hash", hash_hex.as_str()),
            ("X-Cache", disposition),
        ],
    )?;
    let mut opening = event_json(if disposition == "coalesced" {
        "coalesced"
    } else {
        "queued"
    });
    opening
        .push("job", job.id)
        .push("hash", hash_hex.as_str())
        .push("scenario", job.name.as_str());
    write_event(stream, &opening)?;
    let mut cursor = 0;
    loop {
        match job.follow(&mut cursor) {
            Follow::Events(events) => {
                for event in events {
                    write_event(stream, &event)?;
                }
            }
            Follow::Finished(JobState::Done(document)) => {
                write_result_marker(stream, document.len(), disposition)?;
                stream.write_all(document.as_bytes())?;
                return stream.flush();
            }
            Follow::Finished(JobState::Failed(message)) => {
                let mut event = event_json("error");
                event.push("job", job.id).push("message", message.as_str());
                return write_event(stream, &event);
            }
            Follow::Finished(other) => {
                let mut event = event_json("error");
                event
                    .push("job", job.id)
                    .push("message", format!("job {}", other.label()));
                return write_event(stream, &event);
            }
        }
    }
}

fn finished_response(
    stream: &mut TcpStream,
    terminal: &JobState,
    disposition: &str,
) -> std::io::Result<()> {
    match terminal {
        JobState::Done(document) => respond(
            stream,
            200,
            "application/json",
            &[("X-Cache", disposition)],
            document.as_bytes(),
        ),
        JobState::Failed(message) => error_response(stream, 500, message),
        other => error_response(stream, 409, &format!("job {}", other.label())),
    }
}

fn handle_status(
    stream: &mut TcpStream,
    id: &str,
    state: &Arc<ServerState>,
) -> std::io::Result<()> {
    let Some(job) = lookup(id, state) else {
        return error_response(stream, 404, &format!("no job '{id}'"));
    };
    let job_state = job.state();
    let mut body = Json::object();
    body.push("job", job.id)
        .push("hash", hex(job.hash))
        .push("scenario", job.name.as_str())
        .push("status", job_state.label())
        .push("events", Json::Arr(job.events()));
    if let JobState::Failed(message) = &job_state {
        body.push("error", message.as_str());
    }
    json_response(stream, 200, &body)
}

fn handle_result(
    stream: &mut TcpStream,
    id: &str,
    state: &Arc<ServerState>,
) -> std::io::Result<()> {
    let Some(job) = lookup(id, state) else {
        return error_response(stream, 404, &format!("no job '{id}'"));
    };
    match job.state() {
        JobState::Done(document) => respond(
            stream,
            200,
            "application/json",
            &[("X-Content-Hash", hex(job.hash).as_str())],
            document.as_bytes(),
        ),
        JobState::Failed(message) => error_response(stream, 500, &message),
        pending => error_response(stream, 409, &format!("job is {}", pending.label())),
    }
}

/// `GET /jobs/<id>/trace`: the flight-recorder NDJSON captured while the
/// job simulated. Only jobs that actually ran have one — cache hits never
/// create a job, and failed/cancelled jobs never attached a trace.
fn handle_trace(stream: &mut TcpStream, id: &str, state: &Arc<ServerState>) -> std::io::Result<()> {
    let Some(job) = lookup(id, state) else {
        return error_response(stream, 404, &format!("no job '{id}'"));
    };
    match job.state() {
        JobState::Done(_) => match job.trace() {
            Some(trace) => respond(
                stream,
                200,
                "application/x-ndjson",
                &[("X-Content-Hash", hex(job.hash).as_str())],
                trace.as_bytes(),
            ),
            None => error_response(stream, 404, "job finished without recording a trace"),
        },
        JobState::Failed(message) => error_response(stream, 500, &message),
        JobState::Cancelled => error_response(stream, 404, "job was cancelled before running"),
        pending => error_response(stream, 409, &format!("job is {}", pending.label())),
    }
}

/// `GET /jobs/<id>/flows?top=N`: the slowest-N completed flows of the
/// job's trace, with each flow's full span-milestone history. The body is
/// `bench::traceq::flows_json` — the same function `paper trace query
/// --top-fct N --json` prints — so daemon answers and offline forensics
/// can never drift apart.
fn handle_flows(
    stream: &mut TcpStream,
    request: &Request,
    id: &str,
    state: &Arc<ServerState>,
) -> std::io::Result<()> {
    let Some(job) = lookup(id, state) else {
        return error_response(stream, 404, &format!("no job '{id}'"));
    };
    let top = match request.query_value("top") {
        None => 10,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => return error_response(stream, 400, &format!("bad top '{v}'")),
        },
    };
    match job.state() {
        JobState::Done(_) => match job.trace() {
            Some(trace) => match bench::traceq::flows_json(&trace, top) {
                Ok(body) => json_response(stream, 200, &body),
                Err(error) => error_response(stream, 500, &error),
            },
            None => error_response(stream, 404, "job finished without recording a trace"),
        },
        JobState::Failed(message) => error_response(stream, 500, &message),
        JobState::Cancelled => error_response(stream, 404, "job was cancelled before running"),
        pending => error_response(stream, 409, &format!("job is {}", pending.label())),
    }
}

fn handle_cancel(
    stream: &mut TcpStream,
    id: &str,
    state: &Arc<ServerState>,
) -> std::io::Result<()> {
    let Some(job) = lookup(id, state) else {
        return error_response(stream, 404, &format!("no job '{id}'"));
    };
    if job.cancel() {
        state.table.retire(&job);
        let mut body = Json::object();
        body.push("job", job.id).push("status", "cancelled");
        json_response(stream, 200, &body)
    } else {
        error_response(
            stream,
            409,
            &format!(
                "job is {} — only queued jobs can be cancelled",
                job.state().label()
            ),
        )
    }
}

fn lookup(id: &str, state: &Arc<ServerState>) -> Option<Arc<Job>> {
    id.parse::<u64>().ok().and_then(|id| state.table.get(id))
}

// -------------------------------------------------------------------
// Small wire helpers
// -------------------------------------------------------------------

/// Start an NDJSON line: every streamed line opens with its event name
/// and [`PROGRESS_SCHEMA_VERSION`], so each line is self-describing.
fn event_json(kind: &str) -> Json {
    let mut event = Json::object();
    event
        .push("event", kind)
        .push("schema_version", PROGRESS_SCHEMA_VERSION);
    event
}

fn phase_event(p: &PhaseProgress, job_id: u64) -> Json {
    let mut event = event_json("phase");
    event
        .push("job", job_id)
        .push("system", p.system.as_str())
        .push("phase", p.phase)
        .push("phases", p.phases)
        .push("label", p.label.as_str());
    event
}

fn write_event(stream: &mut TcpStream, event: &Json) -> std::io::Result<()> {
    let mut line = event.render_compact();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn write_result_marker(
    stream: &mut TcpStream,
    bytes: usize,
    disposition: &str,
) -> std::io::Result<()> {
    let mut marker = event_json("result");
    marker.push("bytes", bytes).push("cache", disposition);
    write_event(stream, &marker)
}

fn json_response(stream: &mut TcpStream, status: u16, body: &Json) -> std::io::Result<()> {
    let mut text = body.render();
    text.push('\n');
    respond(stream, status, "application/json", &[], text.as_bytes())
}

fn error_response(stream: &mut TcpStream, status: u16, message: &str) -> std::io::Result<()> {
    let mut body = Json::object();
    body.push("error", message);
    json_response(stream, status, &body)
}
