//! The daemon's job table: every submission becomes a [`Job`] that moves
//! `Queued → Running → Done/Failed` (or `Cancelled` while still queued),
//! accumulating progress events along the way. Any number of followers —
//! the submitting connection in stream mode, later `GET /jobs/<id>`
//! polls — observe the same record; a condvar wakes streamers as events
//! land. The table also carries the in-flight index keyed by content
//! hash, which is what lets a duplicate submission coalesce onto a job
//! that is already queued or running instead of simulating again.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use metrics::Json;

/// Lock a mutex, shrugging off poisoning. A scenario that panics inside a
/// worker must not wedge the daemon: every critical section in this module
/// is a single-field transition, so the data is consistent even when the
/// holder died mid-section, and recovering beats panicking every follower.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Where a job stands. Terminal states carry what the follower needs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; the deterministic result document.
    Done(Arc<String>),
    /// The run failed (scenario panicked or the cache write trapped a
    /// fatal I/O error).
    Failed(String),
    /// Cancelled while still queued; it never simulated.
    Cancelled,
}

impl JobState {
    /// Short wire label for status JSON.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Has the job reached a state it can never leave?
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

struct JobInner {
    state: JobState,
    events: Vec<Json>,
    /// Flight-recorder NDJSON captured while the job simulated; served by
    /// `GET /jobs/<id>/trace`. Set before the terminal transition so a
    /// follower that observes `Done` always finds the trace present.
    trace: Option<Arc<String>>,
}

/// One submission's shared record.
pub struct Job {
    /// Job id, unique per daemon process.
    pub id: u64,
    /// Content hash of the compiled scenario.
    pub hash: u64,
    /// Scenario name (diagnostics; the hash is the identity).
    pub name: String,
    inner: Mutex<JobInner>,
    changed: Condvar,
}

/// What a blocking follower gets next.
#[derive(Debug, Clone, PartialEq)]
pub enum Follow {
    /// New progress events since the follower's cursor.
    Events(Vec<Json>),
    /// Terminal: the job's final state (never `Queued`/`Running`).
    Finished(JobState),
}

impl Job {
    fn new(id: u64, hash: u64, name: String) -> Arc<Job> {
        Arc::new(Job {
            id,
            hash,
            name,
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                events: Vec::new(),
                trace: None,
            }),
            changed: Condvar::new(),
        })
    }

    /// Current state (cloned).
    pub fn state(&self) -> JobState {
        lock_recover(&self.inner).state.clone()
    }

    /// All events recorded so far (cloned).
    pub fn events(&self) -> Vec<Json> {
        lock_recover(&self.inner).events.clone()
    }

    /// Append a progress event and wake followers.
    pub fn push_event(&self, event: Json) {
        let mut inner = lock_recover(&self.inner);
        inner.events.push(event);
        self.changed.notify_all();
    }

    /// Attach the flight-recorder NDJSON. Called by the executor before
    /// `finish(Done)`, so the trace is visible to anyone who sees the job
    /// as done.
    pub fn set_trace(&self, trace: Arc<String>) {
        lock_recover(&self.inner).trace = Some(trace);
    }

    /// The flight-recorder NDJSON, once the job has simulated.
    pub fn trace(&self) -> Option<Arc<String>> {
        lock_recover(&self.inner).trace.clone()
    }

    /// Move `Queued → Running`. Returns `false` (a no-op) if the job was
    /// cancelled first — the executor must then skip the simulation.
    pub fn start(&self) -> bool {
        let mut inner = lock_recover(&self.inner);
        if inner.state != JobState::Queued {
            return false;
        }
        inner.state = JobState::Running;
        self.changed.notify_all();
        true
    }

    /// Enter a terminal state and wake every follower. No-op if already
    /// terminal (a cancel that raced a completion loses).
    pub fn finish(&self, state: JobState) {
        assert!(state.is_terminal(), "finish takes a terminal state");
        let mut inner = lock_recover(&self.inner);
        if inner.state.is_terminal() {
            return;
        }
        inner.state = state;
        self.changed.notify_all();
    }

    /// Cancel if still queued. `true` when the cancellation won.
    pub fn cancel(&self) -> bool {
        let mut inner = lock_recover(&self.inner);
        if inner.state != JobState::Queued {
            return false;
        }
        inner.state = JobState::Cancelled;
        self.changed.notify_all();
        true
    }

    /// Block until there is something past `cursor`: either new events
    /// (cursor advances) or the terminal state once all events are drained.
    pub fn follow(&self, cursor: &mut usize) -> Follow {
        let mut inner = lock_recover(&self.inner);
        loop {
            if inner.events.len() > *cursor {
                let fresh = inner.events[*cursor..].to_vec();
                *cursor = inner.events.len();
                return Follow::Events(fresh);
            }
            if inner.state.is_terminal() {
                return Follow::Finished(inner.state.clone());
            }
            inner = self
                .changed
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Terminal jobs retained for `GET /jobs/<id>` history before the oldest
/// are evicted. Results survive eviction anyway — they live in the
/// content-addressed cache — so this only bounds status history, keeping
/// a long-lived daemon's memory flat under a stream of submissions.
pub const MAX_RETAINED_JOBS: usize = 256;

/// The daemon's registry of jobs, plus the in-flight (hash → job) index
/// used to coalesce duplicate submissions.
#[derive(Default)]
pub struct JobTable {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    in_flight: Mutex<HashMap<u64, Arc<Job>>>,
    coalesced: AtomicUsize,
    served: AtomicUsize,
}

/// How a submission was admitted.
pub enum Admission {
    /// A new job was created; the caller must dispatch it.
    New(Arc<Job>),
    /// An identical job (same content hash) is already in flight; the
    /// caller follows it instead of dispatching anything.
    Coalesced(Arc<Job>),
}

impl JobTable {
    /// Fresh, empty table.
    pub fn new() -> JobTable {
        JobTable::default()
    }

    /// Admit a submission for `hash`: attach to an in-flight twin when
    /// one exists, otherwise register a new queued job.
    pub fn admit(&self, hash: u64, name: &str) -> Admission {
        let mut in_flight = lock_recover(&self.in_flight);
        if let Some(job) = in_flight.get(&hash) {
            if !job.state().is_terminal() {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return Admission::Coalesced(Arc::clone(job));
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let job = Job::new(id, hash, name.to_string());
        in_flight.insert(hash, Arc::clone(&job));
        self.served.fetch_add(1, Ordering::Relaxed);
        let mut jobs = lock_recover(&self.jobs);
        jobs.insert(id, Arc::clone(&job));
        // Keep the registry bounded: evict the oldest *terminal* jobs
        // beyond the cap (live jobs are never evicted; followers hold
        // their own Arc, so an evicted record only leaves the id lookup).
        if jobs.len() > MAX_RETAINED_JOBS {
            let mut terminal: Vec<u64> = jobs
                .iter()
                .filter(|(_, j)| j.state().is_terminal())
                .map(|(&id, _)| id)
                .collect();
            terminal.sort_unstable();
            let excess = jobs.len().saturating_sub(MAX_RETAINED_JOBS);
            for id in terminal.into_iter().take(excess) {
                jobs.remove(&id);
            }
        }
        Admission::New(job)
    }

    /// Drop `job` from the in-flight index (call on any terminal
    /// transition, so a resubmission starts fresh instead of attaching to
    /// a finished record).
    pub fn retire(&self, job: &Job) {
        let mut in_flight = lock_recover(&self.in_flight);
        if let Some(current) = in_flight.get(&job.hash) {
            if current.id == job.id {
                in_flight.remove(&job.hash);
            }
        }
    }

    /// Look up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        lock_recover(&self.jobs).get(&id).cloned()
    }

    /// `(total jobs ever admitted, currently non-terminal, coalesced
    /// submissions)`. The total counts admissions, not retained records —
    /// old terminal jobs are evicted past [`MAX_RETAINED_JOBS`].
    pub fn stats(&self) -> (usize, usize, usize) {
        let jobs = lock_recover(&self.jobs);
        let active = jobs.values().filter(|j| !j.state().is_terminal()).count();
        (
            self.served.load(Ordering::Relaxed),
            active,
            self.coalesced.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_follow() {
        let table = JobTable::new();
        let Admission::New(job) = table.admit(42, "s") else {
            panic!("fresh hash must admit a new job")
        };
        assert_eq!(job.state(), JobState::Queued);
        assert!(job.start());
        job.push_event(Json::Str("e0".into()));
        job.push_event(Json::Str("e1".into()));
        let mut cursor = 0;
        assert_eq!(
            job.follow(&mut cursor),
            Follow::Events(vec![Json::Str("e0".into()), Json::Str("e1".into())])
        );
        assert!(job.trace().is_none(), "no trace until the run records one");
        job.set_trace(Arc::new("{\"event\":\"trace_start\"}\n".to_string()));
        let doc = Arc::new("{}\n".to_string());
        job.finish(JobState::Done(Arc::clone(&doc)));
        assert!(job.trace().is_some());
        table.retire(&job);
        assert_eq!(
            job.follow(&mut cursor),
            Follow::Finished(JobState::Done(doc))
        );
        assert_eq!(table.get(job.id).unwrap().id, job.id);
        assert!(table.get(999).is_none());
    }

    #[test]
    fn duplicate_hash_coalesces_until_retired() {
        let table = JobTable::new();
        let Admission::New(first) = table.admit(7, "a") else {
            panic!("new")
        };
        let Admission::Coalesced(twin) = table.admit(7, "a") else {
            panic!("in-flight twin must coalesce")
        };
        assert_eq!(twin.id, first.id);
        assert_eq!(table.stats().2, 1, "one coalesced submission counted");
        // A different hash is its own job.
        let Admission::New(other) = table.admit(8, "b") else {
            panic!("new")
        };
        assert_ne!(other.id, first.id);
        // After the job retires, the same hash admits fresh again.
        first.start();
        first.finish(JobState::Done(Arc::new(String::new())));
        table.retire(&first);
        let Admission::New(fresh) = table.admit(7, "a") else {
            panic!("retired hash must admit a new job")
        };
        assert_ne!(fresh.id, first.id);
    }

    #[test]
    fn cancel_only_wins_while_queued() {
        let table = JobTable::new();
        let Admission::New(job) = table.admit(1, "c") else {
            panic!("new")
        };
        assert!(job.cancel());
        assert_eq!(job.state(), JobState::Cancelled);
        // The executor then refuses to start it.
        assert!(!job.start());
        // Cancelling again (or after finish) is a no-op.
        assert!(!job.cancel());
        let Admission::New(running) = table.admit(2, "r") else {
            panic!("new")
        };
        running.start();
        assert!(!running.cancel(), "running jobs complete");
    }

    #[test]
    fn terminal_jobs_are_evicted_past_the_cap_live_ones_never() {
        let table = JobTable::new();
        let Admission::New(live) = table.admit(0, "live") else {
            panic!("new")
        };
        live.start(); // stays Running for the whole test
        for i in 1..=(MAX_RETAINED_JOBS as u64 + 50) {
            let Admission::New(job) = table.admit(i, "churn") else {
                panic!("distinct hashes always admit")
            };
            job.start();
            job.finish(JobState::Done(Arc::new(String::new())));
            table.retire(&job);
        }
        // The registry is bounded; the oldest terminal records are gone,
        // the newest and the live one remain; totals still count it all.
        let (served, active, _) = table.stats();
        assert_eq!(served, MAX_RETAINED_JOBS + 51);
        assert_eq!(active, 1);
        assert!(table.get(live.id).is_some(), "live jobs are never evicted");
        assert!(table.get(2).is_none(), "oldest terminal job evicted");
        let newest = MAX_RETAINED_JOBS as u64 + 50;
        assert!(table.get(newest + 1).is_some(), "newest job retained");
    }

    #[test]
    fn followers_wake_across_threads() {
        let table = JobTable::new();
        let Admission::New(job) = table.admit(3, "w") else {
            panic!("new")
        };
        let follower = {
            let job = Arc::clone(&job);
            // lint: allow(D003) test exercises cross-thread event following; no sim output involved
            std::thread::spawn(move || {
                let mut cursor = 0;
                let mut seen = Vec::new();
                loop {
                    match job.follow(&mut cursor) {
                        Follow::Events(events) => seen.extend(events),
                        Follow::Finished(state) => return (seen, state),
                    }
                }
            })
        };
        job.start();
        for i in 0..3u64 {
            job.push_event(Json::UInt(i));
        }
        job.finish(JobState::Failed("boom".into()));
        let (seen, state) = follower.join().expect("follower");
        assert_eq!(seen, vec![Json::UInt(0), Json::UInt(1), Json::UInt(2)]);
        assert_eq!(state, JobState::Failed("boom".into()));
    }
}
