//! Machine-readable scenario-library listing.
//!
//! `paper list --json` and the daemon's `GET /scenarios` both serve this
//! document, so a client can discover what the daemon can run without
//! scraping human-oriented text. Every `*.json` under the library
//! directory appears exactly once (sorted by path): valid files carry
//! their id, phases and epochs; invalid files carry their validation
//! error instead of being silently skipped — a broken library file must
//! be as visible to machines as `paper list` makes it to humans.

use std::path::Path;

use metrics::Json;
use scenario::{parse_scenario, ScenarioSpec, WorkloadPhase};

/// The listing document: `{"scenarios": [...]}` with one entry per
/// library file, sorted by path.
pub fn library_json(dir: &Path) -> Json {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    let mut scenarios = Vec::with_capacity(files.len());
    for file in files {
        scenarios.push(entry_json(&file));
    }
    let mut root = Json::object();
    root.push("scenarios", Json::Arr(scenarios));
    root
}

fn entry_json(file: &Path) -> Json {
    let mut entry = Json::object();
    entry.push("path", file.display().to_string());
    let parsed = std::fs::read_to_string(file)
        .map_err(|e| e.to_string())
        .and_then(|text| parse_scenario(&text).map_err(|e| e.to_string()));
    let spec = match parsed {
        Ok(spec) => spec,
        Err(error) => {
            entry.push("error", error);
            return entry;
        }
    };
    if let Some(missing) = missing_trace(&spec, file) {
        entry.push("error", format!("trace file '{missing}' not found"));
        return entry;
    }
    entry
        .push("id", spec.name.as_str())
        .push("description", spec.description.as_str())
        .push("topology", spec.topology.label())
        .push("tors", spec.net.n_tors)
        .push("epochs", spec.total_epochs())
        .push(
            "engines",
            Json::Arr(
                spec.engines
                    .iter()
                    .map(|e| Json::Str(e.label(spec.topology)))
                    .collect(),
            ),
        )
        .push(
            "phases",
            Json::Arr(spec.phases.iter().map(phase_json).collect()),
        );
    entry
}

fn phase_json(phase: &scenario::PhaseSpec) -> Json {
    let mut p = Json::object();
    p.push("label", phase.label.as_str())
        .push(
            "epochs",
            Json::Arr(vec![
                Json::UInt(phase.start_epoch),
                Json::UInt(phase.end_epoch),
            ]),
        )
        .push(
            "workload",
            match &phase.workload {
                WorkloadPhase::Poisson { .. } => "poisson",
                WorkloadPhase::Incast { .. } => "incast",
                WorkloadPhase::AllToAll { .. } => "all_to_all",
                WorkloadPhase::Trace { .. } => "trace",
            },
        );
    p
}

/// The one error class that outlives spec validation: a referenced trace
/// file that is not there (mirrors `paper list`'s existence check —
/// listing stays O(file size), full compilation waits for a run).
fn missing_trace(spec: &ScenarioSpec, file: &Path) -> Option<String> {
    let base = file.parent().unwrap_or(Path::new("."));
    spec.phases.iter().find_map(|p| match &p.workload {
        WorkloadPhase::Trace { path } if !base.join(path).is_file() => Some(path.clone()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_library() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nego-library-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("ok.json"),
            r#"{"name": "ok", "description": "fine", "topology": "parallel",
               "tors": 16, "ports": 4,
               "phases": [{"label": "p", "workload": "poisson", "load": 50, "epochs": [0, 10]},
                          {"workload": "incast", "degree": 4, "flow_bytes": 1000, "epochs": [10, 20]}]}"#,
        )
        .unwrap();
        std::fs::write(dir.join("broken.json"), "{\"name\": oops").unwrap();
        std::fs::write(dir.join("notes.txt"), "not a scenario").unwrap();
        dir
    }

    #[test]
    fn lists_valid_and_broken_files_with_details() {
        let dir = tmp_library();
        let doc = library_json(&dir);
        let scenarios = doc.get("scenarios").unwrap().as_array().unwrap();
        assert_eq!(scenarios.len(), 2, "txt file excluded");
        // Sorted by path: broken.json before ok.json.
        let broken = &scenarios[0];
        assert!(broken
            .get("path")
            .unwrap()
            .as_str()
            .unwrap()
            .ends_with("broken.json"));
        assert!(broken
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("line"));
        assert!(broken.get("id").is_none(), "no id for an unparsable file");
        let ok = &scenarios[1];
        assert_eq!(ok.get("id").unwrap().as_str(), Some("ok"));
        assert_eq!(ok.get("epochs").unwrap().as_u64(), Some(20));
        let phases = ok.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("label").unwrap().as_str(), Some("p"));
        assert_eq!(phases[1].get("workload").unwrap().as_str(), Some("incast"));
        assert_eq!(
            phases[1].get("epochs").unwrap().as_array().unwrap()[1].as_u64(),
            Some(20)
        );
        // The whole document survives a render/parse round trip.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_listing() {
        let doc = library_json(Path::new("/nonexistent/nowhere"));
        assert_eq!(doc.get("scenarios").unwrap().as_array().unwrap().len(), 0);
    }
}
