//! The daemon's `/metrics` plane: Prometheus text exposition (version
//! 0.0.4), hand-rolled — the wire format is a dozen lines of rules, not
//! worth a dependency.
//!
//! Everything exported here is *service-side wall-clock observability*:
//! job lifecycle counters from the worker pool, queue depth and
//! utilization gauges, result-cache hit/miss totals, the per-stage
//! timers from `bench::profile`, and an HTTP request-latency histogram.
//! None of it touches engine state — the deterministic flight recorder
//! (`metrics::trace` in the workspace `metrics` crate) is the engine's
//! counterpart and is served separately via `GET /jobs/<id>/trace`.
//!
//! Naming follows Prometheus conventions: `paper_` prefix, `_total`
//! suffix on counters, base units (seconds, not millis), and a single
//! `stage` label on the stage-timer families (label values come from
//! [`bench::profile::Stage::label`], a closed set — no cardinality
//! risk).

use std::sync::atomic::{AtomicU64, Ordering};

use bench::profile::StageTotals;
use sim::pool::PoolSnapshot;

/// Histogram bucket upper bounds, paired with the exact `le` label text
/// so rendering never depends on float formatting. Spans sub-millisecond
/// cache hits through multi-second simulations.
const BUCKETS: [(f64, &str); 8] = [
    (0.001, "0.001"),
    (0.005, "0.005"),
    (0.025, "0.025"),
    (0.1, "0.1"),
    (0.25, "0.25"),
    (1.0, "1"),
    (5.0, "5"),
    (10.0, "10"),
];

/// Lock-free HTTP request tally: a request counter plus a fixed-bucket
/// latency histogram. One instance lives in the server state; every
/// connection handler calls [`HttpMetrics::observe`] once.
#[derive(Debug, Default)]
pub struct HttpMetrics {
    requests: AtomicU64,
    /// Per-bucket (non-cumulative) observation counts; `buckets[i]`
    /// counts observations where `BUCKETS[i-1].0 < t <= BUCKETS[i].0`.
    /// The final slot is the overflow (`+Inf`) bucket. Cumulation happens
    /// at render time.
    buckets: [AtomicU64; BUCKETS.len() + 1],
    sum_nanos: AtomicU64,
}

impl HttpMetrics {
    /// Fresh, all-zero tally.
    pub fn new() -> HttpMetrics {
        HttpMetrics::default()
    }

    /// Record one served request that took `seconds`.
    pub fn observe(&self, seconds: f64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let slot = BUCKETS
            .iter()
            .position(|&(bound, _)| seconds <= bound)
            .unwrap_or(BUCKETS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        let nanos = (seconds * 1e9).max(0.0) as u64;
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

/// Everything `/metrics` exports, gathered by the server at scrape time.
/// A plain struct keeps the renderer pure and unit-testable.
pub struct MetricsInput<'a> {
    /// Is graceful shutdown underway?
    pub draining: bool,
    /// Jobs ever admitted by the job table.
    pub jobs_admitted: usize,
    /// Jobs currently non-terminal.
    pub jobs_active: usize,
    /// Duplicate submissions coalesced onto in-flight jobs.
    pub jobs_coalesced: usize,
    /// Worker-pool lifecycle counters; `None` once the pool is drained
    /// (rendered as all-zero gauges so scrapes never fail mid-shutdown).
    pub pool: Option<PoolSnapshot>,
    /// Result-cache lifetime `(hits, misses)`.
    pub cache: (u64, u64),
    /// Per-stage wall-clock totals from `bench::profile`.
    pub stages: &'a [StageTotals],
    /// The HTTP tally.
    pub http: &'a HttpMetrics,
    /// Flight-recorder events dropped by ring overflow across all jobs
    /// this daemon has run. Nonzero means served traces (and every
    /// forensic answer derived from them) are missing their oldest
    /// events — alert on it, then raise `--trace-capacity`.
    pub trace_dropped: u64,
}

/// Render the full exposition. Ends with a newline; every family carries
/// `# HELP` and `# TYPE` headers exactly once.
pub fn render_prometheus(input: &MetricsInput<'_>) -> String {
    let mut out = String::new();
    let mut gauge = |name: &str, help: &str, value: f64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
            num(value)
        ));
    };
    gauge(
        "paper_draining",
        "1 once graceful shutdown has begun.",
        input.draining as u64 as f64,
    );
    gauge(
        "paper_jobs_active",
        "Jobs currently queued or running.",
        input.jobs_active as f64,
    );
    let pool = input.pool.unwrap_or(PoolSnapshot {
        workers: 0,
        queued: 0,
        running: 0,
        submitted: 0,
        completed: 0,
        failed: 0,
        cancelled: 0,
    });
    gauge(
        "paper_jobs_queued",
        "Jobs waiting in the worker-pool queue.",
        pool.queued as f64,
    );
    gauge(
        "paper_jobs_running",
        "Jobs executing on pool workers right now.",
        pool.running as f64,
    );
    gauge(
        "paper_pool_workers",
        "Worker threads draining the job queue.",
        pool.workers as f64,
    );
    let utilization = match pool.workers {
        0 => 0.0,
        w => pool.running as f64 / w as f64,
    };
    gauge(
        "paper_pool_utilization",
        "Fraction of pool workers busy (running / workers).",
        utilization,
    );
    let mut counter = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    counter(
        "paper_jobs_admitted_total",
        "Submissions admitted to the job table.",
        input.jobs_admitted as u64,
    );
    counter(
        "paper_jobs_coalesced_total",
        "Duplicate submissions coalesced onto an in-flight job.",
        input.jobs_coalesced as u64,
    );
    counter(
        "paper_jobs_submitted_total",
        "Jobs accepted by the worker pool.",
        pool.submitted,
    );
    counter(
        "paper_jobs_completed_total",
        "Jobs that ran to completion.",
        pool.completed,
    );
    counter(
        "paper_jobs_failed_total",
        "Jobs whose scenario panicked.",
        pool.failed,
    );
    counter(
        "paper_jobs_cancelled_total",
        "Jobs cancelled while still queued.",
        pool.cancelled,
    );
    let (hits, misses) = input.cache;
    counter(
        "paper_cache_hits_total",
        "Result-cache lookups that hit.",
        hits,
    );
    counter(
        "paper_cache_misses_total",
        "Result-cache lookups that missed (corrupt entries count here).",
        misses,
    );
    counter(
        "paper_http_requests_total",
        "HTTP requests served.",
        input.http.requests(),
    );
    counter(
        "paper_trace_dropped_total",
        "Flight-recorder events dropped by ring overflow across all jobs.",
        input.trace_dropped,
    );
    render_stages(&mut out, input.stages);
    render_histogram(&mut out, input.http);
    out
}

fn render_stages(out: &mut String, stages: &[StageTotals]) {
    out.push_str(concat!(
        "# HELP paper_stage_seconds_total Wall-clock seconds spent per pipeline stage.\n",
        "# TYPE paper_stage_seconds_total counter\n"
    ));
    for s in stages {
        out.push_str(&format!(
            "paper_stage_seconds_total{{stage=\"{}\"}} {}\n",
            s.stage,
            num(s.seconds)
        ));
    }
    out.push_str(concat!(
        "# HELP paper_stage_calls_total Completed calls per pipeline stage.\n",
        "# TYPE paper_stage_calls_total counter\n"
    ));
    for s in stages {
        out.push_str(&format!(
            "paper_stage_calls_total{{stage=\"{}\"}} {}\n",
            s.stage, s.calls
        ));
    }
}

fn render_histogram(out: &mut String, http: &HttpMetrics) {
    out.push_str(concat!(
        "# HELP paper_http_request_duration_seconds HTTP request latency.\n",
        "# TYPE paper_http_request_duration_seconds histogram\n"
    ));
    let mut cumulative = 0u64;
    for (i, &(_, le)) in BUCKETS.iter().enumerate() {
        cumulative += http.buckets[i].load(Ordering::Relaxed);
        out.push_str(&format!(
            "paper_http_request_duration_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
        ));
    }
    cumulative += http.buckets[BUCKETS.len()].load(Ordering::Relaxed);
    out.push_str(&format!(
        "paper_http_request_duration_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
    ));
    let sum = http.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9;
    out.push_str(&format!(
        "paper_http_request_duration_seconds_sum {}\n",
        num(sum)
    ));
    out.push_str(&format!(
        "paper_http_request_duration_seconds_count {cumulative}\n"
    ));
}

/// Prometheus float formatting: integral values render without a
/// fractional part, everything else with enough digits to round-trip.
fn num(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (HttpMetrics, Vec<StageTotals>) {
        let http = HttpMetrics::new();
        http.observe(0.0004); // le=0.001
        http.observe(0.02); // le=0.025
        http.observe(3.0); // le=5
        http.observe(60.0); // +Inf only
        let stages = vec![
            StageTotals {
                stage: "execute",
                calls: 2,
                seconds: 1.5,
            },
            StageTotals {
                stage: "cache_lookup",
                calls: 4,
                seconds: 0.25,
            },
        ];
        (http, stages)
    }

    fn render(http: &HttpMetrics, stages: &[StageTotals]) -> String {
        render_prometheus(&MetricsInput {
            draining: false,
            jobs_admitted: 7,
            jobs_active: 1,
            jobs_coalesced: 2,
            pool: Some(PoolSnapshot {
                workers: 4,
                queued: 3,
                running: 1,
                submitted: 7,
                completed: 5,
                failed: 1,
                cancelled: 0,
            }),
            cache: (10, 4),
            stages,
            http,
            trace_dropped: 6,
        })
    }

    #[test]
    fn exposition_is_wellformed_prometheus_text() {
        let (http, stages) = sample();
        let text = render(&http, &stages);
        assert!(text.ends_with('\n'));
        for line in text.lines() {
            if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
                continue;
            }
            // name{labels} value — name charset, one space, numeric value.
            let (name_part, value) = line.rsplit_once(' ').expect("metric line has a value");
            let name = name_part.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in {line:?}"
            );
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value in {line:?}"
            );
        }
        // Each family header appears exactly once.
        let helps = text.matches("# HELP paper_cache_hits_total").count();
        assert_eq!(helps, 1);
    }

    #[test]
    fn required_families_are_present() {
        let (http, stages) = sample();
        let text = render(&http, &stages);
        for family in [
            "paper_jobs_queued 3",
            "paper_jobs_running 1",
            "paper_jobs_completed_total 5",
            "paper_jobs_cancelled_total 0",
            "paper_jobs_coalesced_total 2",
            "paper_pool_utilization 0.25",
            "paper_cache_hits_total 10",
            "paper_cache_misses_total 4",
            "paper_http_requests_total 4",
            "paper_trace_dropped_total 6",
            "paper_stage_seconds_total{stage=\"execute\"} 1.5",
            "paper_stage_calls_total{stage=\"cache_lookup\"} 4",
        ] {
            assert!(text.contains(family), "missing {family:?} in:\n{text}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_equals_count() {
        let (http, stages) = sample();
        let text = render(&http, &stages);
        let bucket = |le: &str| -> u64 {
            let needle = format!("paper_http_request_duration_seconds_bucket{{le=\"{le}\"}} ");
            text.lines()
                .find_map(|l| l.strip_prefix(needle.as_str()))
                .unwrap_or_else(|| panic!("no bucket {le}"))
                .parse()
                .unwrap()
        };
        assert_eq!(bucket("0.001"), 1);
        assert_eq!(bucket("0.025"), 2, "cumulative across lower buckets");
        assert_eq!(bucket("5"), 3);
        assert_eq!(bucket("+Inf"), 4);
        assert!(text.contains("paper_http_request_duration_seconds_count 4"));
    }

    #[test]
    fn a_drained_pool_still_renders() {
        let http = HttpMetrics::new();
        let text = render_prometheus(&MetricsInput {
            draining: true,
            jobs_admitted: 0,
            jobs_active: 0,
            jobs_coalesced: 0,
            pool: None,
            cache: (0, 0),
            stages: &[],
            http: &http,
            trace_dropped: 0,
        });
        assert!(text.contains("paper_draining 1"));
        assert!(text.contains("paper_pool_utilization 0"));
    }
}
