//! A deliberately tiny HTTP/1.1 layer over `std::net`.
//!
//! The workspace builds offline with no crates.io dependencies, so the
//! daemon speaks exactly the slice of HTTP/1.1 it needs: one request per
//! connection (`Connection: close` on every response), `Content-Length`
//! bodies in both directions, and **close-delimited streaming** responses
//! — a response that carries no `Content-Length` is terminated by the
//! server closing the socket, which is how `POST /jobs?stream=1` pushes
//! progress lines while the simulation runs. Both the server and the
//! `paper submit` client parse with the same functions, so the wire
//! format is covered by one set of tests.

use std::io::{BufRead, Write};

/// Largest accepted request body (a scenario file); far above any real
/// scenario, far below a memory hazard.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// Largest accepted request/status/header line. Bounded for the same
/// reason as [`MAX_BODY`]: a peer must not be able to grow a handler's
/// memory without limit by never sending a newline.
pub const MAX_LINE: usize = 64 * 1024;

/// One parsed request head plus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path without the query string (`/jobs/3`).
    pub path: String,
    /// Decoded query pairs in order (`stream=1` → `("stream", "1")`).
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when the request carried none).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header value for `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one request from `reader`. `Ok(None)` when the peer closed the
/// connection before sending anything.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, String> {
    let Some(line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(format!("malformed request line {line:?}")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    let (path, query) = parse_target(target);
    let headers = read_headers(reader)?;
    let body = match header_value(&headers, "content-length") {
        None => Vec::new(),
        Some(v) => {
            let len: usize = v
                .trim()
                .parse()
                .map_err(|_| format!("bad content-length {v:?}"))?;
            if len > MAX_BODY {
                return Err(format!("body of {len} bytes exceeds the {MAX_BODY} cap"));
            }
            let mut body = vec![0u8; len];
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("reading {len}-byte body: {e}"))?;
            body
        }
    };
    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    }))
}

/// Read a response's status line and headers (the client side).
pub fn read_response_head(
    reader: &mut impl BufRead,
) -> Result<(u16, Vec<(String, String)>), String> {
    let line = read_line(reader)?.ok_or("connection closed before any response")?;
    let mut parts = line.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) => (v, c),
        _ => return Err(format!("malformed status line {line:?}")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| format!("bad status code {code:?}"))?;
    Ok((status, read_headers(reader)?))
}

/// First value of the (lowercased) header `name`.
pub fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Write a complete response with a `Content-Length` body.
pub fn respond(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

/// Start a close-delimited streaming response: status and headers now,
/// body bytes as the caller produces them, end-of-body when the caller
/// closes the connection.
pub fn start_stream(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nConnection: close\r\n",
        reason(status),
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.flush()
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// One CRLF- (or LF-) terminated line, without its terminator. `None` at
/// EOF before any byte. Reads through a [`MAX_LINE`] window so a peer
/// that never sends a newline cannot grow the buffer without bound.
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, String> {
    let mut line = String::new();
    // `&mut R` is itself `BufRead`, so the window borrows rather than
    // consumes the caller's reader.
    let mut limited = std::io::Read::take(&mut *reader, MAX_LINE as u64);
    let n = limited
        .read_line(&mut line)
        .map_err(|e| format!("reading line: {e}"))?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') && n == MAX_LINE {
        return Err(format!("line exceeds the {MAX_LINE}-byte cap"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn read_headers(reader: &mut impl BufRead) -> Result<Vec<(String, String)>, String> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or("connection closed inside headers")?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= 100 {
            return Err("more than 100 headers".to_string());
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    (path.to_string(), pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    fn parse(raw: &str) -> Result<Option<Request>, String> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw =
            "POST /jobs?stream=1&priority=-2 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query_value("stream"), Some("1"));
        assert_eq!(req.query_value("priority"), Some("-2"));
        assert_eq!(req.query_value("missing"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_a_bare_get_and_eof() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        // Closed-before-anything is a clean None, not an error.
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse("GARBAGE\r\n\r\n").is_err());
        assert!(parse("GET / SPDY/3\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort").is_err());
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(parse(&huge).unwrap_err().contains("cap"));
        // A request line (or header) that never ends must be cut off at
        // MAX_LINE, not buffered forever.
        let endless = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 10));
        assert!(parse(&endless).unwrap_err().contains("cap"));
        let endless_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "b".repeat(MAX_LINE + 10));
        assert!(parse(&endless_header).unwrap_err().contains("cap"));
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        respond(
            &mut wire,
            200,
            "application/json",
            &[("X-Cache", "hit")],
            b"{}",
        )
        .unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let (status, headers) = read_response_head(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert_eq!(header_value(&headers, "x-cache"), Some("hit"));
        assert_eq!(header_value(&headers, "content-length"), Some("2"));
        let mut body = Vec::new();
        reader.read_to_end(&mut body).unwrap();
        assert_eq!(body, b"{}");
    }

    #[test]
    fn streamed_response_head_then_free_body() {
        let mut wire = Vec::new();
        start_stream(&mut wire, 200, "application/x-ndjson", &[]).unwrap();
        wire.extend_from_slice(b"{\"event\":\"queued\"}\n");
        let mut reader = BufReader::new(wire.as_slice());
        let (status, headers) = read_response_head(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert_eq!(header_value(&headers, "content-length"), None);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "{\"event\":\"queued\"}\n");
    }
}
