//! Regenerate the paper's tables and figures — and serve them.
//!
//! ```text
//! paper <experiment-id>... [--duration-ms N] [--loads 10,50,100] [--seed N]
//!       [--jobs N] [--workers N] [--json] [--no-timing] [--out DIR] [--seeds A,B,C]
//! paper all --jobs 8 --json --out results/
//! paper scenario <file.json>... [--jobs N] [--workers N] [--json] [--no-timing] [--no-cache] [--out DIR]
//! paper scenario <file.json>... --trace out.ndjson [--trace-capacity N] [--workers N] [--json] [--out DIR]
//! paper serve [--addr HOST:PORT] [--jobs N] [--workers N] [--out DIR] [--log-level error|info|debug] [--trace-capacity N]
//! paper submit <file.json> [--addr HOST:PORT] [--priority N]
//! paper trace <file.ndjson> [--strict]
//! paper trace query <file.ndjson> [--kind NAME] [--tor N] [--flow N] [--epoch A..B] [--top-fct N] [--json]
//! paper trace diff <a.ndjson> <b.ndjson> [--context N]
//! paper list [--json]
//! paper lint [--json]
//! ```
//!
//! Experiments expand into independent runs executed across `--jobs`
//! worker threads, and each simulation can shard its per-ToR phase work
//! across `--workers` intra-run threads; output is byte-identical at any
//! job or worker count. `--json`
//! writes one machine-readable `results/<id>.json` per experiment
//! (schema: see `bench::results`), which `bench-diff` compares across
//! revisions to gate CI on regressions. `paper scenario` runs declarative
//! scenario files through the same machinery, deduping identical runs in
//! a batch and sharing the content-addressed result cache in `<out>/cache`
//! with the daemon. `paper serve` / `paper submit` are the serving pair:
//! a long-running daemon that queues submissions, streams per-phase
//! progress and returns results byte-identical to the offline
//! `--json --no-timing` form (wire protocol: README "Service").

use std::path::{Path, PathBuf};

use bench::cache::{CacheEntry, ResultCache};
use bench::experiments::{find_experiment, Args, Experiment, EXPERIMENTS};
use bench::{cli, results, scenario, sweep};
use metrics::Json;
use service::library::library_json;

fn main() {
    let parsed = cli::parse(std::env::args().skip(1).collect());
    let cli = match parsed {
        Ok(cli) => cli,
        Err(error) => {
            eprintln!("error: {error}\n");
            usage();
            std::process::exit(2);
        }
    };
    if cli.list {
        list(&cli);
        return;
    }
    if cli.lint {
        run_lint(&cli);
        return;
    }
    if cli.serve {
        let log_level = match service::LogLevel::parse(&cli.log_level) {
            Ok(level) => level,
            Err(error) => {
                // The CLI parser validates the token; this only fires if
                // the two lists ever drift apart.
                eprintln!("error: {error}");
                std::process::exit(2);
            }
        };
        let config = service::ServeConfig {
            addr: cli.addr.clone(),
            jobs: cli.jobs,
            workers: cli.workers,
            out: cli.out.clone(),
            scenarios_dir: Path::new("scenarios").to_path_buf(),
            log_level,
            trace_capacity: cli.trace_capacity,
        };
        if let Err(error) = service::serve_forever(config) {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(cmd) = &cli.trace_cmd {
        run_trace_cmd(cmd, &cli);
        return;
    }
    if let Some(path) = &cli.submit {
        submit(path, &cli);
        return;
    }
    if !cli.scenario.is_empty() {
        run_scenarios(&cli);
        return;
    }
    if cli.ids.is_empty() {
        usage();
        std::process::exit(2);
    }
    run_experiments(&cli);
}

fn run_experiments(cli: &cli::Cli) {
    let exps: Vec<&'static dyn Experiment> = cli
        .ids
        .iter()
        .map(|id| find_experiment(id).expect("ids validated by the parser"))
        .collect();
    let multi_seed = cli.seeds.len() > 1;
    for &seed in &cli.seeds {
        let args = Args {
            seed,
            ..cli.args.clone()
        };
        println!(
            "# NegotiaToR reproduction — duration {} ms per run, loads {:?}, seed {seed}\n",
            args.duration as f64 / 1e6,
            args.loads.iter().map(|l| l * 100.0).collect::<Vec<_>>(),
        );
        eprintln!("[{} experiments across {} jobs]", exps.len(), cli.jobs);
        let started = std::time::Instant::now();
        let reports = sweep::run_sweep(&exps, &args, cli.jobs);
        for report in &reports {
            println!("{}", report.rendered);
            eprintln!(
                "[{}: {} runs, {:.1}s simulated-run time]",
                report.id,
                report.results.len(),
                report.runs_wall_secs()
            );
        }
        if cli.json {
            write_json(cli, &reports, multi_seed);
        }
        eprintln!(
            "[sweep of {} experiments done in {:.1?}]",
            reports.len(),
            started.elapsed()
        );
    }
}

/// What one scenario of the batch resolved to.
enum Plan {
    /// Served from the content-addressed cache, no simulation.
    Cached(CacheEntry),
    /// Index into the freshly simulated batch.
    Fresh(usize),
}

/// Run a batch of scenario files: validate + compile everything up front
/// (any problem exits before a single epoch simulates), serve what the
/// content-addressed cache already has, dedupe identical runs among the
/// rest, execute on the shared pool, and populate the cache for next
/// time (and for the daemon).
fn run_scenarios(cli: &cli::Cli) {
    if cli.trace.is_some() {
        return run_traced_scenario(cli);
    }
    let compiled: Vec<_> = cli
        .scenario
        .iter()
        .map(|path| match scenario::load(path) {
            Ok(compiled) => compiled,
            Err(error) => {
                eprintln!("error: {error}");
                std::process::exit(2);
            }
        })
        .collect();
    let cache = ResultCache::new(cli.out.join("cache"));
    // Cache entries hold the deterministic (timing-free) document, so a
    // hit can only substitute for a run whose output carries no timing —
    // `--json` without `--no-timing` must simulate to measure wall time,
    // or the same command would write different schemas hot vs cold.
    let lookup = cli.cache && !(cli.json && cli.timing);
    let mut plans = Vec::with_capacity(compiled.len());
    let mut to_run = Vec::new();
    for c in &compiled {
        let hash = c.content_hash();
        match lookup.then(|| cache.lookup(hash)).flatten() {
            Some(entry) => {
                eprintln!(
                    "[scenario '{}': cache hit {} — skipping {} runs]",
                    c.spec.name,
                    ::scenario::hash::hex(hash),
                    c.spec.engines.len()
                );
                plans.push(Plan::Cached(entry));
            }
            None => {
                plans.push(Plan::Fresh(to_run.len()));
                to_run.push(c.clone());
            }
        }
    }
    let started = std::time::Instant::now();
    let outcome = if to_run.is_empty() {
        None
    } else {
        let runs: usize = to_run.iter().map(|c| c.spec.engines.len()).sum();
        eprintln!(
            "[{} scenario(s), {} runs across {} jobs]",
            to_run.len(),
            runs,
            cli.jobs
        );
        let outcome = scenario::run_batch(&to_run, cli.jobs, cli.workers);
        if outcome.coalesced > 0 {
            eprintln!(
                "[coalesced {} duplicate run(s) — identical content hash, simulated once]",
                outcome.coalesced
            );
        }
        Some(outcome)
    };
    // Populate the cache from the fresh reports (a batch can contain the
    // same scenario twice; store each hash once).
    if let Some(outcome) = &outcome {
        let mut stored = std::collections::HashSet::new();
        for (c, report) in to_run.iter().zip(&outcome.reports) {
            let hash = c.content_hash();
            if cli.cache && stored.insert(hash) {
                let entry = CacheEntry {
                    scenario: c.spec.name.clone(),
                    rendered: report.rendered.clone(),
                    document: scenario::deterministic_document(report),
                };
                if let Err(error) = cache.store(hash, &entry) {
                    eprintln!(
                        "error: caching {}: {error}",
                        cache.entry_path(hash).display()
                    );
                }
            }
        }
    }
    // Emit in input order: rendered text always, JSON files on --json.
    let fresh_report = |i: &usize| -> &sweep::SweepReport {
        &outcome.as_ref().expect("fresh plans imply a batch").reports[*i]
    };
    for plan in &plans {
        match plan {
            Plan::Cached(entry) => println!("{}", entry.rendered),
            Plan::Fresh(i) => println!("{}", fresh_report(i).rendered),
        }
    }
    if cli.json {
        for plan in &plans {
            match plan {
                Plan::Cached(entry) => {
                    let path = cli.out.join(format!("scenario-{}.json", entry.scenario));
                    if let Err(error) = std::fs::create_dir_all(&cli.out)
                        .and_then(|()| std::fs::write(&path, entry.document.as_bytes()))
                    {
                        eprintln!("error: writing {}: {error}", path.display());
                        std::process::exit(1);
                    }
                    eprintln!("[wrote {} (from cache)]", path.display());
                }
                Plan::Fresh(i) => {
                    write_json(cli, std::slice::from_ref(fresh_report(i)), false);
                }
            }
        }
    }
    eprintln!("[scenario batch done in {:.1?}]", started.elapsed());
}

/// `paper scenario <file>... --trace out.ndjson`: the traced scenario
/// path. Tracing requires simulating (a cache hit has no recorder), so
/// the cache lookup is bypassed — but the entries are still stored, and
/// the daemon's `GET /jobs/<id>/trace` for the same scenario is
/// byte-identical because both call `bench::scenario::execute_traced`.
/// A multi-file batch writes one trace per scenario, the given path
/// suffixed with each scenario's name (`t.ndjson` → `t-<name>.ndjson`).
fn run_traced_scenario(cli: &cli::Cli) {
    let compiled: Vec<_> = cli
        .scenario
        .iter()
        .map(|path| match scenario::load(path) {
            Ok(compiled) => compiled,
            Err(error) => {
                eprintln!("error: {error}");
                std::process::exit(2);
            }
        })
        .collect();
    let trace_path = cli.trace.as_ref().expect("checked by the parser");
    let multi = compiled.len() > 1;
    let started = std::time::Instant::now();
    let write = |path: &Path, bytes: &[u8]| -> std::io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, bytes)
    };
    for c in &compiled {
        eprintln!(
            "[scenario '{}': tracing {} run(s) — cache lookup bypassed]",
            c.spec.name,
            c.spec.engines.len()
        );
        let (report, trace) = scenario::execute_traced(c, None, cli.workers, cli.trace_capacity);
        let out_path = if multi {
            suffixed_trace_path(trace_path, &c.spec.name)
        } else {
            trace_path.clone()
        };
        if let Err(error) = write(&out_path, trace.as_bytes()) {
            eprintln!("error: writing {}: {error}", out_path.display());
            std::process::exit(1);
        }
        eprintln!(
            "[wrote {} ({} bytes of flight-recorder NDJSON)]",
            out_path.display(),
            trace.len()
        );
        if cli.cache {
            let cache = ResultCache::new(cli.out.join("cache"));
            let entry = CacheEntry {
                scenario: c.spec.name.clone(),
                rendered: report.rendered.clone(),
                document: scenario::deterministic_document(&report),
            };
            if let Err(error) = cache.store(c.content_hash(), &entry) {
                eprintln!("error: caching {}: {error}", c.spec.name);
            }
        }
        println!("{}", report.rendered);
        if cli.json {
            write_json(cli, std::slice::from_ref(&report), false);
        }
    }
    eprintln!("[traced scenario batch done in {:.1?}]", started.elapsed());
}

/// `t.ndjson` + scenario `storm` → `t-storm.ndjson`, so a batch's traces
/// land side by side without clobbering each other.
fn suffixed_trace_path(base: &Path, name: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let file = match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}-{name}.{ext}"),
        None => format!("{stem}-{name}"),
    };
    base.with_file_name(file)
}

/// `paper trace …`: summarize, query or diff flight-recorder NDJSON.
fn run_trace_cmd(cmd: &cli::TraceCmd, cli: &cli::Cli) {
    let read = |path: &Path| -> String {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("error: {}: {error}", path.display());
                std::process::exit(2);
            }
        }
    };
    match cmd {
        cli::TraceCmd::Summary(path) => {
            let text = read(path);
            match bench::tracecmd::summarize(&text) {
                Ok(summary) => print!("{summary}"),
                Err(error) => {
                    eprintln!("error: {}: {error}", path.display());
                    std::process::exit(1);
                }
            }
            let dropped = bench::traceq::dropped_total(&text);
            if cli.trace_strict && dropped > 0 {
                eprintln!(
                    "error: {}: {dropped} event(s) dropped by ring overflow (--strict)",
                    path.display()
                );
                std::process::exit(1);
            }
        }
        cli::TraceCmd::Query(path) => {
            let text = read(path);
            let opts = bench::traceq::QueryOpts {
                kind: cli.trace_kind.clone(),
                tor: cli.trace_tor,
                flow: cli.trace_flow,
                epochs: cli.trace_epochs,
                top_fct: cli.trace_top_fct,
                json: cli.json,
            };
            match bench::traceq::query(&text, &opts) {
                Ok(out) if out.ends_with('\n') => print!("{out}"),
                Ok(out) => println!("{out}"),
                Err(error) => {
                    eprintln!("error: {}: {error}", path.display());
                    std::process::exit(1);
                }
            }
        }
        cli::TraceCmd::Diff(a, b) => {
            let (text_a, text_b) = (read(a), read(b));
            let outcome = bench::traceq::diff(
                &a.display().to_string(),
                &text_a,
                &b.display().to_string(),
                &text_b,
                cli.trace_context,
            );
            print!("{}", outcome.report);
            if outcome.divergent {
                std::process::exit(1);
            }
        }
    }
}

/// `paper submit`: send one scenario file to a daemon, stream progress to
/// stderr, and print the result document (byte-identical to the offline
/// `--json --no-timing` form) on stdout.
fn submit(path: &Path, cli: &cli::Cli) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("error: {}: {error}", path.display());
            std::process::exit(2);
        }
    };
    let outcome = service::submit(&cli.addr, &text, cli.priority, |event| {
        let kind = event.get("event").and_then(Json::as_str).unwrap_or("?");
        match kind {
            "phase" => {
                let get = |k: &str| event.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
                eprintln!(
                    "[phase {}/{} '{}' done ({})]",
                    get("phase") as i64 + 1,
                    get("phases") as i64,
                    event.get("label").and_then(Json::as_str).unwrap_or("?"),
                    event.get("system").and_then(Json::as_str).unwrap_or("?"),
                );
            }
            _ => eprintln!("[{}]", event.render_compact()),
        }
    });
    match outcome {
        Ok(outcome) => {
            eprintln!(
                "[result: {}]",
                match outcome.disposition {
                    service::Disposition::CacheHit => "cache hit — served without simulating",
                    service::Disposition::Simulated => "simulated",
                    service::Disposition::Coalesced => {
                        "coalesced onto an identical in-flight job"
                    }
                }
            );
            print!("{}", outcome.document);
        }
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    }
}

/// `paper lint`: scan the workspace for determinism-invariant violations
/// (rules and zones: README "Static analysis"). Exit 0 when clean, 1 on
/// findings, 2 when the scan itself cannot run.
fn run_lint(cli: &cli::Cli) {
    let root = Path::new(".");
    if !root.join("crates").is_dir() {
        eprintln!("error: lint: run from the workspace root (no crates/ directory here)");
        std::process::exit(2);
    }
    let report = match lint::scan_workspace(root) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("error: lint: {error}");
            std::process::exit(2);
        }
    };
    if cli.json {
        println!("{}", lint::render_json(&report).render());
    } else {
        print!("{}", lint::render_text(&report));
    }
    if !report.findings.is_empty() {
        std::process::exit(1);
    }
}

fn list(cli: &cli::Cli) {
    if cli.json {
        // Machine-readable: experiments + the scenario library, one
        // document, so clients can discover everything a daemon can run.
        let mut doc = Json::object();
        let mut experiments = Vec::new();
        for exp in EXPERIMENTS {
            let mut e = Json::object();
            e.push("id", exp.id()).push("artifact", exp.artifact());
            experiments.push(e);
        }
        doc.push("experiments", Json::Arr(experiments));
        let library = library_json(Path::new("scenarios"));
        doc.push(
            "scenarios",
            library
                .get("scenarios")
                .cloned()
                .unwrap_or(Json::Arr(Vec::new())),
        );
        println!("{}", doc.render());
        return;
    }
    for exp in EXPERIMENTS {
        println!("{:<8} {}", exp.id(), exp.artifact());
    }
    list_scenarios(Path::new("scenarios"));
}

fn write_json(cli: &cli::Cli, reports: &[sweep::SweepReport], multi_seed: bool) {
    let timing_jobs = cli.timing.then_some(cli.jobs);
    match results::write_reports(&cli.out, reports, timing_jobs, multi_seed) {
        Ok(paths) => {
            for path in paths {
                eprintln!("[wrote {}]", path.display());
            }
        }
        Err(error) => {
            eprintln!("error: writing {}: {error}", cli.out.display());
            std::process::exit(1);
        }
    }
}

/// Enumerate the scenario library next to the experiment registry, one
/// line per file with its description — or its validation error, so a
/// broken library file is visible right in `paper list`. The entries are
/// the same ones `paper list --json` and `GET /scenarios` serve
/// (`service::library`), so the human and machine listings can never
/// disagree.
fn list_scenarios(dir: &Path) {
    let library = library_json(dir);
    let entries = library
        .get("scenarios")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    if entries.is_empty() {
        return;
    }
    println!("\nscenarios (paper scenario <file>):");
    for entry in entries {
        let path = entry.get("path").and_then(Json::as_str).unwrap_or("?");
        let line = match entry.get("error").and_then(Json::as_str) {
            Some(error) => format!("INVALID — {error}"),
            None => entry
                .get("description")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        };
        println!("{path:<36} {line}");
    }
}

fn usage() {
    eprintln!(
        "usage: paper <experiment-id>|all|list [--duration-ms N] [--loads 10,50,100]\n\
         \u{20}      [--seed N | --seeds A,B,C] [--jobs N] [--workers N] [--json] [--no-timing] [--out DIR]\n\
         \u{20}      paper scenario <file.json>... [--jobs N] [--workers N] [--json] [--no-timing] [--no-cache] [--out DIR]\n\
         \u{20}      paper scenario <file.json>... --trace out.ndjson [--trace-capacity N] [--workers N] [--json] [--out DIR]\n\
         \u{20}      paper serve [--addr HOST:PORT] [--jobs N] [--workers N] [--out DIR] [--log-level error|info|debug] [--trace-capacity N]\n\
         \u{20}      paper submit <file.json> [--addr HOST:PORT] [--priority N]\n\
         \u{20}      paper trace <file.ndjson> [--strict]\n\
         \u{20}      paper trace query <file.ndjson> [--kind NAME] [--tor N] [--flow N] [--epoch A..B] [--top-fct N] [--json]\n\
         \u{20}      paper trace diff <a.ndjson> <b.ndjson> [--context N]\n\
         \u{20}      paper list [--json]\n\
         \u{20}      paper lint [--json]"
    );
    eprintln!("experiments:");
    for exp in EXPERIMENTS {
        eprintln!("  {:<8} {}", exp.id(), exp.artifact());
    }
}
