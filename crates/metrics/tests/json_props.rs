//! Property tests for `metrics::json`: the writer/parser pair behind the
//! results schema, the scenario validator and the daemon's wire protocol.
//!
//! * `parse(render(v)) == v` over arbitrary nested objects/arrays — both
//!   the pretty and the compact (NDJSON) renderings;
//! * the same over documents shaped like real results files, including
//!   the per-phase `metrics.series` arrays;
//! * every parse error on a mutated document points at a `line:column`
//!   that actually exists in the mutated text.

use metrics::json::line_col;
use metrics::Json;
use proptest::prelude::*;

// -------------------------------------------------------------------
// Generators
// -------------------------------------------------------------------

/// Characters that exercise every escaping path: quotes, backslashes,
/// control characters, multi-byte UTF-8, plus boring ASCII.
const STRING_POOL: &[char] = &[
    'a', 'b', 'z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', 'é', '→', '🦀', ':', ',',
    '{', '}', '[', ']',
];

fn string_strategy() -> BoxedStrategy<String> {
    prop::collection::vec(0usize..STRING_POOL.len(), 0..8)
        .prop_map(|picks| picks.into_iter().map(|i| STRING_POOL[i]).collect())
        .boxed()
}

fn leaf_strategy() -> BoxedStrategy<Json> {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite floats only: JSON has no NaN/∞ (they render as null by
        // design, which is deliberately not a round trip).
        (-1.0e9f64..1.0e9).prop_map(Json::Num),
        any::<u64>().prop_map(Json::UInt),
        string_strategy().prop_map(Json::Str),
    ]
    .boxed()
}

/// Arbitrary JSON up to `depth` levels of nesting.
fn json_strategy(depth: u32) -> BoxedStrategy<Json> {
    if depth == 0 {
        return leaf_strategy();
    }
    let element = json_strategy(depth - 1);
    let member = (string_strategy(), json_strategy(depth - 1));
    prop_oneof![
        leaf_strategy(),
        prop::collection::vec(element, 0..5).prop_map(Json::Arr),
        prop::collection::vec(member, 0..5).prop_map(Json::Obj),
    ]
    .boxed()
}

/// A document shaped like a real `results/scenario-<name>.json`: runs
/// with a `metrics` object carrying scalars and a per-phase `series`
/// array — the shape `bench-diff` gates element-wise.
fn results_doc_strategy() -> BoxedStrategy<Json> {
    let phase_row =
        (0.0f64..2.0, 1u64..5_000_000, string_strategy()).prop_map(|(goodput, fct, label)| {
            let mut row = Json::object();
            row.push("label", label)
                .push("goodput_normalized", goodput)
                .push("fct_p99_ns", fct)
                .push("match_ratio", Json::Null);
            row
        });
    let run = (
        prop::collection::vec(phase_row, 1..5),
        0u64..u64::MAX,
        string_strategy(),
    )
        .prop_map(|(series, seed, system)| {
            let mut metrics = Json::object();
            metrics
                .push("goodput", 0.5f64)
                .push("series", Json::Arr(series));
            let mut run = Json::object();
            run.push("system", system)
                .push("seed", seed)
                .push("metrics", metrics);
            run
        });
    prop::collection::vec(run, 1..4)
        .prop_map(|runs| {
            let mut doc = Json::object();
            doc.push("schema_version", 1u64)
                .push("experiment", "scenario-prop")
                .push("runs", Json::Arr(runs));
            doc
        })
        .boxed()
}

/// Extract the `line N, column M` a parse error points at.
fn error_position(error: &str) -> Option<(usize, usize)> {
    let line_at = error.find("line ")?;
    let rest = &error[line_at + 5..];
    let (line, rest) = rest.split_once(", column ")?;
    let column: String = rest.chars().take_while(char::is_ascii_digit).collect();
    Some((line.parse().ok()?, column.parse().ok()?))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Arbitrary nested values survive render → parse exactly, in both
    /// renderings.
    #[test]
    fn render_parse_round_trips(value in json_strategy(3)) {
        let pretty = value.render();
        prop_assert_eq!(Json::parse(&pretty).expect("own rendering parses"), value.clone());
        let compact = value.render_compact();
        prop_assert_eq!(Json::parse(&compact).expect("compact rendering parses"), value.clone());
        // Rendering is deterministic: same value, same bytes, even after
        // a round trip through the parser.
        prop_assert_eq!(Json::parse(&pretty).unwrap().render(), pretty);
    }

    /// Results-shaped documents (with `metrics.series`) round-trip too.
    #[test]
    fn results_documents_round_trip(doc in results_doc_strategy()) {
        let text = doc.render();
        let back = Json::parse(&text).expect("results doc parses");
        prop_assert_eq!(back.clone(), doc.clone());
        // The series rows come back in order with their keys intact.
        let runs = back.get("runs").unwrap().as_array().unwrap();
        for run in runs {
            let series = run.get("metrics").unwrap().get("series").unwrap();
            for row in series.as_array().unwrap() {
                prop_assert!(row.get("label").is_some());
                prop_assert!(row.get("goodput_normalized").unwrap().as_f64().is_some());
            }
        }
    }

    /// Truncating a document anywhere inside it is always an error, and
    /// the error names a line:column that exists in the truncated text.
    #[test]
    fn truncation_errors_carry_valid_positions(doc in results_doc_strategy(), frac in 0.01f64..0.99) {
        let text = doc.render();
        let cut = ((text.len() as f64 * frac) as usize).clamp(1, text.len() - 1);
        // Cut on a char boundary.
        let cut = (cut..text.len()).find(|&i| text.is_char_boundary(i)).unwrap();
        let mutated = &text[..cut];
        let error = Json::parse(mutated).expect_err("truncated docs never parse");
        let (line, column) = error_position(&error)
            .unwrap_or_else(|| panic!("error without position: {error}"));
        let lines: Vec<&str> = mutated.split('\n').collect();
        prop_assert!(line >= 1 && line <= lines.len(), "{error}");
        // line_col clamps to the last position, so the column is at most
        // one past the line's character count.
        prop_assert!(column >= 1 && column <= lines[line - 1].chars().count() + 1, "{error}");
    }

    /// Corrupting one structural byte either still parses (the mutation
    /// landed inside a string or a number) or fails with a position that
    /// maps back into the mutated text.
    #[test]
    fn byte_corruption_errors_carry_valid_positions(
        value in json_strategy(2),
        pick in 0usize..1_000_000,
        replacement in 0usize..7,
    ) {
        let text = value.render();
        let positions: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
        let at = positions[pick % positions.len()];
        let bad = ['#', '}', ']', ',', ':', '"', '\\'][replacement];
        let mut mutated = String::with_capacity(text.len());
        mutated.push_str(&text[..at]);
        mutated.push(bad);
        mutated.push_str(&text[at + text[at..].chars().next().unwrap().len_utf8()..]);
        if let Err(error) = Json::parse(&mutated) {
            let (line, column) = error_position(&error)
                .unwrap_or_else(|| panic!("error without position: {error}"));
            let lines: Vec<&str> = mutated.split('\n').collect();
            prop_assert!(line >= 1 && line <= lines.len(), "{error}");
            prop_assert!(column >= 1 && column <= lines[line - 1].chars().count() + 1, "{error}");
            // And the position is verifiable against line_col's own math:
            // some byte offset in the mutated text maps to it.
            let found = (0..=mutated.len()).any(|b| line_col(&mutated, b) == (line, column));
            prop_assert!(found, "{error} points outside the text");
        }
    }
}
