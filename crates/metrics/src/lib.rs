#![warn(missing_docs)]

//! Measurement for the NegotiaToR evaluation.
//!
//! The paper reports (§4.1): 99th-percentile and average mice-flow FCT
//! (flows < 10 KB), goodput normalized to the 400 Gbps host aggregate,
//! per-epoch match ratio (Appendix A.1), receiver bandwidth time-series
//! (Appendix A.3/A.4) and incast finish times (§4.2). This crate implements
//! the recorders the simulators feed and the [`RunReport`] the harness
//! consumes:
//!
//! * [`FlowTracker`] — per-flow outstanding bytes and completion times,
//!   measured at the ToRs (flows start and end at ToRs, §4.1).
//! * [`FctReport`] / [`RunReport`] — derived statistics.
//! * [`matchratio::MatchRatioRecorder`] — accepts/grants per epoch.
//! * [`report`] — plain-text table rendering for the experiment harness.
//! * [`json`] — a dependency-free JSON writer/parser so sweep results are
//!   machine-readable (`results/<id>.json`, consumed by `bench-diff`) and
//!   scenario files are loadable with `line:column` error reporting.
//! * [`phase`] — phase-boundary counter snapshots feeding the scenario
//!   engine's per-phase time series.
//! * [`trace`] — the deterministic flight recorder: a bounded ring of
//!   epoch-stamped structured events both engines can emit, exported as
//!   NDJSON for `paper scenario --trace` and the daemon's trace endpoint.

pub mod fct;
pub mod json;
pub mod matchratio;
pub mod phase;
pub mod report;
pub mod trace;

pub use fct::{FctReport, FctSummary, FlowTracker, GoodputReport, RunReport, RunSummary};
pub use json::{Json, SpannedJson};
pub use matchratio::MatchRatioRecorder;
pub use phase::{PhaseCounters, PhaseObserver, PhaseProbe, PhaseSnapshot};
pub use report::Table;
pub use trace::{
    FlightRecorder, FlowSpans, TraceCursor, TraceEvent, TraceEventKind, DEFAULT_TRACE_CAPACITY,
    TRACE_SCHEMA_VERSION,
};
