//! Flow-completion tracking and run-level reports.

use sim::stats::Cdf;
use sim::time::Nanos;
use workload::FlowTrace;

/// Tracks outstanding bytes and completion times for every flow in a trace.
///
/// The simulators call [`FlowTracker::deliver`] whenever payload bytes for a
/// flow arrive at the destination ToR; completion is the delivery time of
/// the flow's last byte, and FCT is measured from the flow's arrival at the
/// source ToR (§4.1: "marking the start and end of flows at the ToRs").
#[derive(Debug, Clone)]
pub struct FlowTracker {
    arrivals: Vec<Nanos>,
    sizes: Vec<u64>,
    remaining: Vec<u64>,
    completions: Vec<Option<Nanos>>,
    delivered_payload: u64,
    n_completed: usize,
}

impl FlowTracker {
    /// Tracker for every flow in `trace`.
    pub fn new(trace: &FlowTrace) -> Self {
        let n = trace.len();
        let mut arrivals = Vec::with_capacity(n);
        let mut sizes = Vec::with_capacity(n);
        for f in trace.flows() {
            arrivals.push(f.arrival);
            sizes.push(f.bytes);
        }
        FlowTracker {
            arrivals,
            remaining: sizes.clone(),
            sizes,
            completions: vec![None; n],
            delivered_payload: 0,
            n_completed: 0,
        }
    }

    /// Record `bytes` of flow `id` arriving at the destination at `now`.
    /// Returns `true` if this delivery completed the flow. Over-delivery
    /// panics — it would mean the scheduler duplicated data.
    pub fn deliver(&mut self, id: u64, bytes: u64, now: Nanos) -> bool {
        let i = id as usize;
        assert!(
            self.remaining[i] >= bytes,
            "flow {id} over-delivered: {} remaining, {bytes} arriving",
            self.remaining[i]
        );
        self.remaining[i] -= bytes;
        self.delivered_payload += bytes;
        if self.remaining[i] == 0 && self.completions[i].is_none() {
            self.completions[i] = Some(now);
            self.n_completed += 1;
            true
        } else {
            false
        }
    }

    /// Completion time of flow `id`, if it finished.
    pub fn completion(&self, id: u64) -> Option<Nanos> {
        self.completions[id as usize]
    }

    /// FCT of flow `id`, if it finished.
    pub fn fct(&self, id: u64) -> Option<Nanos> {
        self.completions[id as usize].map(|c| c - self.arrivals[id as usize])
    }

    /// Bytes of flow `id` not yet delivered.
    pub fn remaining(&self, id: u64) -> u64 {
        self.remaining[id as usize]
    }

    /// Total payload bytes delivered so far.
    pub fn delivered_payload(&self) -> u64 {
        self.delivered_payload
    }

    /// Number of completed flows.
    pub fn completed_count(&self) -> usize {
        self.n_completed
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when the tracker has no flows.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }
}

/// FCT statistics over one class of flows.
#[derive(Debug, Clone, PartialEq)]
pub struct FctReport {
    /// Full FCT distribution in nanoseconds.
    pub cdf: Cdf,
    /// Flows in the class that completed.
    pub completed: usize,
    /// Flows in the class overall.
    pub total: usize,
}

impl FctReport {
    /// 99th-percentile FCT in ns (0 when no flow completed).
    pub fn p99_ns(&mut self) -> f64 {
        self.cdf.percentile(99.0).unwrap_or(0.0)
    }

    /// Mean FCT in ns.
    pub fn mean_ns(&self) -> f64 {
        self.cdf.mean()
    }

    /// Fraction of the class that completed within the run.
    pub fn completion_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.completed as f64 / self.total as f64
        }
    }

    /// Condense into the scalar summary the JSON emit carries. Unlike the
    /// report itself, the summary holds no per-flow samples, so it is
    /// cheap to keep for hundreds of runs of a sweep.
    pub fn summary(&mut self) -> FctSummary {
        FctSummary {
            p50_ns: self.cdf.percentile(50.0),
            p99_ns: self.cdf.percentile(99.0),
            mean_ns: if self.cdf.is_empty() {
                None
            } else {
                Some(self.mean_ns())
            },
            completed: self.completed,
            total: self.total,
        }
    }

    /// Machine-readable form: percentiles, mean and completion counts.
    pub fn to_json(&mut self) -> crate::Json {
        self.summary().to_json()
    }
}

/// The scalar digest of an [`FctReport`] (no sample vectors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FctSummary {
    /// Median FCT in ns (`None` when no flow completed).
    pub p50_ns: Option<f64>,
    /// 99th-percentile FCT in ns (`None` when no flow completed).
    pub p99_ns: Option<f64>,
    /// Mean FCT in ns (`None` when no flow completed).
    pub mean_ns: Option<f64>,
    /// Flows in the class that completed.
    pub completed: usize,
    /// Flows in the class overall.
    pub total: usize,
}

impl FctSummary {
    /// Machine-readable form: percentiles, mean and completion counts.
    pub fn to_json(&self) -> crate::Json {
        let mut obj = crate::Json::object();
        obj.push("p50_ns", self.p50_ns)
            .push("p99_ns", self.p99_ns)
            .push("mean_ns", self.mean_ns)
            .push("completed", self.completed as u64)
            .push("total", self.total as u64);
        obj
    }
}

/// Goodput over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodputReport {
    /// Payload bytes delivered to destination ToRs.
    pub delivered_bytes: u64,
    /// Measurement window in ns.
    pub duration: Nanos,
    /// Number of ToRs.
    pub n_tors: usize,
    /// Host-aggregate bandwidth per ToR in bits/s (normalization basis).
    pub host_bps: u64,
}

impl GoodputReport {
    /// Average per-ToR received goodput in Gbps.
    pub fn per_tor_gbps(&self) -> f64 {
        if self.duration == 0 {
            return 0.0;
        }
        (self.delivered_bytes * 8) as f64 / self.duration as f64 / self.n_tors as f64
    }

    /// Goodput normalized to the host aggregate (§4.1; 1.0 = every ToR
    /// receives at the full 400 Gbps host rate).
    pub fn normalized(&self) -> f64 {
        self.per_tor_gbps() * 1e9 / self.host_bps as f64
    }

    /// Machine-readable form: raw bytes plus the derived rates.
    pub fn to_json(&self) -> crate::Json {
        let mut obj = crate::Json::object();
        obj.push("delivered_bytes", self.delivered_bytes)
            .push("duration_ns", self.duration)
            .push("per_tor_gbps", self.per_tor_gbps())
            .push("normalized", self.normalized());
        obj
    }
}

/// Everything a simulator run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// FCT of mice flows (< 10 KB).
    pub mice: FctReport,
    /// FCT of all flows.
    pub all: FctReport,
    /// Goodput over the run.
    pub goodput: GoodputReport,
}

impl RunReport {
    /// Build a report from the trace and its tracker.
    ///
    /// `subset` optionally restricts FCT statistics to tagged flows (used
    /// by Figure 13(a) to separate background from incast flows); goodput
    /// always covers everything delivered.
    pub fn build(
        trace: &FlowTrace,
        tracker: &FlowTracker,
        duration: Nanos,
        n_tors: usize,
        host_bps: u64,
        subset: Option<&[bool]>,
    ) -> Self {
        let mut mice = FctReport {
            cdf: Cdf::new(),
            completed: 0,
            total: 0,
        };
        let mut all = FctReport {
            cdf: Cdf::new(),
            completed: 0,
            total: 0,
        };
        for f in trace.flows() {
            if let Some(tags) = subset {
                if !tags[f.id as usize] {
                    continue;
                }
            }
            all.total += 1;
            if f.is_mice() {
                mice.total += 1;
            }
            if let Some(fct) = tracker.fct(f.id) {
                all.completed += 1;
                all.cdf.record(fct as f64);
                if f.is_mice() {
                    mice.completed += 1;
                    mice.cdf.record(fct as f64);
                }
            }
        }
        RunReport {
            mice,
            all,
            goodput: GoodputReport {
                delivered_bytes: tracker.delivered_payload(),
                duration,
                n_tors,
                host_bps,
            },
        }
    }

    /// Condense into the scalar digest the sweep engine retains per run
    /// (full reports hold one sample per flow; summaries are a few words).
    pub fn summary(&mut self) -> RunSummary {
        RunSummary {
            mice: self.mice.summary(),
            all: self.all.summary(),
            goodput: self.goodput,
        }
    }

    /// Machine-readable form of the whole report (schema: `mice`/`all`
    /// FCT summaries + `goodput`), used by the sweep engine's JSON emit.
    pub fn to_json(&mut self) -> crate::Json {
        self.summary().to_json()
    }

    /// Finish time of a synchronized burst: latest completion among the
    /// flows, relative to their common arrival. `None` unless every flow
    /// completed (an unfinished incast has no finish time).
    pub fn burst_finish_time(trace: &FlowTrace, tracker: &FlowTracker) -> Option<Nanos> {
        let mut latest = 0;
        for f in trace.flows() {
            let done = tracker.completion(f.id)?;
            latest = latest.max(done - f.arrival);
        }
        Some(latest)
    }
}

/// The scalar digest of a [`RunReport`]: FCT summaries for both flow
/// classes plus the goodput figures, with no per-flow sample vectors —
/// what a sweep keeps per run and what the JSON emit reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Digest of mice-flow (< 10 KB) FCT.
    pub mice: FctSummary,
    /// Digest of all-flow FCT.
    pub all: FctSummary,
    /// Goodput over the run.
    pub goodput: GoodputReport,
}

impl RunSummary {
    /// Machine-readable form (same shape as [`RunReport::to_json`]).
    pub fn to_json(&self) -> crate::Json {
        let mut obj = crate::Json::object();
        obj.push("mice", self.mice.to_json())
            .push("all", self.all.to_json())
            .push("goodput", self.goodput.to_json());
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Flow;

    fn trace() -> FlowTrace {
        FlowTrace::new(vec![
            Flow {
                id: 0,
                src: 0,
                dst: 1,
                bytes: 1_000,
                arrival: 100,
            },
            Flow {
                id: 1,
                src: 2,
                dst: 1,
                bytes: 50_000,
                arrival: 200,
            },
        ])
    }

    #[test]
    fn delivery_completes_flows() {
        let t = trace();
        let mut tr = FlowTracker::new(&t);
        assert!(!tr.deliver(0, 500, 150));
        assert!(tr.deliver(0, 500, 300));
        assert_eq!(tr.fct(0), Some(200));
        assert_eq!(tr.completed_count(), 1);
        assert_eq!(tr.remaining(1), 50_000);
        assert_eq!(tr.delivered_payload(), 1_000);
    }

    #[test]
    #[should_panic(expected = "over-delivered")]
    fn over_delivery_is_a_bug() {
        let t = trace();
        let mut tr = FlowTracker::new(&t);
        tr.deliver(0, 1_001, 150);
    }

    #[test]
    fn report_splits_mice_and_all() {
        let t = trace();
        let mut tr = FlowTracker::new(&t);
        tr.deliver(0, 1_000, 1_100); // mice, FCT 1000
        tr.deliver(1, 50_000, 10_200); // elephant, FCT 10000
        let mut r = RunReport::build(&t, &tr, 20_000, 2, 400_000_000_000, None);
        assert_eq!(r.mice.total, 1);
        assert_eq!(r.all.total, 2);
        assert_eq!(r.mice.p99_ns(), 1_000.0);
        assert_eq!(r.all.cdf.len(), 2);
        assert_eq!(r.mice.completion_rate(), 1.0);
    }

    #[test]
    fn goodput_math() {
        // 2 ToRs, 1 µs, 25_000 B delivered => 200_000 bits / 1_000 ns / 2
        // = 100 Gbps per ToR; normalized to 400 Gbps = 0.25.
        let g = GoodputReport {
            delivered_bytes: 25_000,
            duration: 1_000,
            n_tors: 2,
            host_bps: 400_000_000_000,
        };
        assert_eq!(g.per_tor_gbps(), 100.0);
        assert_eq!(g.normalized(), 0.25);
    }

    #[test]
    fn subset_restricts_fct_but_not_goodput() {
        let t = trace();
        let mut tr = FlowTracker::new(&t);
        tr.deliver(0, 1_000, 1_100);
        tr.deliver(1, 50_000, 10_200);
        let tags = vec![true, false];
        let r = RunReport::build(&t, &tr, 20_000, 2, 400_000_000_000, Some(&tags));
        assert_eq!(r.all.total, 1);
        assert_eq!(r.goodput.delivered_bytes, 51_000);
    }

    #[test]
    fn report_serializes() {
        let t = trace();
        let mut tr = FlowTracker::new(&t);
        tr.deliver(0, 1_000, 1_100);
        tr.deliver(1, 50_000, 10_200);
        let mut r = RunReport::build(&t, &tr, 20_000, 2, 400_000_000_000, None);
        let j = r.to_json();
        let mice = j.get("mice").unwrap();
        assert_eq!(mice.get("p99_ns").unwrap().as_f64(), Some(1_000.0));
        assert_eq!(mice.get("total").unwrap().as_f64(), Some(1.0));
        let gp = j.get("goodput").unwrap();
        assert_eq!(gp.get("delivered_bytes").unwrap().as_f64(), Some(51_000.0));
        // Empty classes serialize as nulls, not NaNs.
        let mut empty = RunReport::build(&t, &FlowTracker::new(&t), 20_000, 2, 1, None);
        assert!(empty
            .to_json()
            .get("mice")
            .unwrap()
            .get("p99_ns")
            .unwrap()
            .is_null());
    }

    #[test]
    fn burst_finish_requires_all_completions() {
        let t = trace();
        let mut tr = FlowTracker::new(&t);
        tr.deliver(0, 1_000, 1_100);
        assert_eq!(RunReport::burst_finish_time(&t, &tr), None);
        tr.deliver(1, 50_000, 10_200);
        assert_eq!(RunReport::burst_finish_time(&t, &tr), Some(10_000));
    }
}
