//! Per-epoch match-ratio recording (Appendix A.1, Figure 14).
//!
//! The paper validates NegotiaToR Matching's efficiency analysis by
//! recording, for each epoch, the ratio of accepted grants to issued grants
//! and comparing it to the closed-form `E[Y] = 1 − (1 − 1/n)^n`.

/// Records grants and accepts per epoch.
#[derive(Debug, Clone, Default)]
pub struct MatchRatioRecorder {
    per_epoch: Vec<(u64, u64)>, // (grants, accepts)
}

impl MatchRatioRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one epoch's totals.
    pub fn record_epoch(&mut self, grants: u64, accepts: u64) {
        debug_assert!(accepts <= grants, "cannot accept more than granted");
        self.per_epoch.push((grants, accepts));
    }

    /// Number of epochs recorded.
    pub fn len(&self) -> usize {
        self.per_epoch.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.per_epoch.is_empty()
    }

    /// Match ratio of epoch `i` (`None` when that epoch issued no grants).
    pub fn epoch_ratio(&self, i: usize) -> Option<f64> {
        let (g, a) = self.per_epoch[i];
        (g > 0).then(|| a as f64 / g as f64)
    }

    /// Overall accepts/grants across all epochs with activity.
    pub fn overall_ratio(&self) -> Option<f64> {
        let (g, a) = self
            .per_epoch
            .iter()
            .fold((0u64, 0u64), |(g, a), &(eg, ea)| (g + eg, a + ea));
        (g > 0).then(|| a as f64 / g as f64)
    }

    /// `(epoch index, ratio)` points for plotting, skipping idle epochs.
    pub fn series(&self) -> Vec<(usize, f64)> {
        self.per_epoch
            .iter()
            .enumerate()
            .filter(|&(_i, &(g, _a))| g > 0)
            .map(|(i, &(g, a))| (i, a as f64 / g as f64))
            .collect()
    }
}

/// Theoretical matching efficiency `E[Y] = 1 − (1 − 1/n)^n` from §3.2.2:
/// the probability that a grant survives the ACCEPT step when `n` ToRs
/// compete uniformly. Monotonically decreases towards `1 − 1/e ≈ 0.632`.
pub fn theoretical_match_efficiency(n: usize) -> f64 {
    assert!(n > 1, "model needs at least two competing ToRs");
    1.0 - (1.0 - 1.0 / n as f64).powi(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut r = MatchRatioRecorder::new();
        r.record_epoch(10, 6);
        r.record_epoch(0, 0);
        r.record_epoch(10, 8);
        assert_eq!(r.epoch_ratio(0), Some(0.6));
        assert_eq!(r.epoch_ratio(1), None);
        assert_eq!(r.overall_ratio(), Some(0.7));
        assert_eq!(r.series(), vec![(0, 0.6), (2, 0.8)]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn empty_recorder() {
        let r = MatchRatioRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.overall_ratio(), None);
    }

    #[test]
    fn theory_matches_paper_figures() {
        // §A.1: thin-clos n=16 → 0.644, parallel n=128 → 0.634.
        assert!((theoretical_match_efficiency(16) - 0.644).abs() < 0.001);
        assert!((theoretical_match_efficiency(128) - 0.634).abs() < 0.001);
        // Limit: 1 - 1/e ≈ 0.632.
        assert!(
            (theoretical_match_efficiency(1_000_000) - (1.0 - 1.0 / std::f64::consts::E)).abs()
                < 1e-5
        );
    }

    #[test]
    fn theory_is_monotone_decreasing() {
        let mut prev = theoretical_match_efficiency(2);
        for n in 3..200 {
            let e = theoretical_match_efficiency(n);
            assert!(e < prev);
            prev = e;
        }
    }
}
