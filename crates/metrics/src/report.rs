//! Plain-text table rendering for the experiment harness.
//!
//! The harness regenerates the paper's tables and figure series as aligned
//! text so `cargo run -p service --bin paper` output can be compared to the
//! paper side by side.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format nanoseconds as microseconds with two decimals ("14.21 us").
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1_000.0)
}

/// Format nanoseconds as milliseconds with four decimals.
pub fn ms(ns: f64) -> String {
    format!("{:.4}", ns / 1_000_000.0)
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["load", "fct"]);
        t.row(vec!["10%".into(), "1.5".into()]);
        t.row(vec!["100%".into(), "22.75".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("load"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("x", &["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(us(14_210.0), "14.21");
        assert_eq!(ms(1_500_000.0), "1.5000");
        assert_eq!(pct(0.856), "85.6%");
    }
}
