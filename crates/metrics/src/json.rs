//! Hand-rolled JSON: a tiny writer/parser pair for the harness's
//! machine-readable results and for user-authored scenario files.
//!
//! The workspace builds offline with no crates.io dependencies, so instead
//! of serde this module carries the JSON the harness actually needs: an
//! ordered object model ([`Json`]), a deterministic pretty renderer (stable
//! key order, shortest-round-trip floats — the byte-identity the
//! determinism tests assert rests on this), and a strict recursive-descent
//! parser. The parser produces a [`SpannedJson`] tree carrying the byte
//! offset of every value and object key, so consumers of *user-authored*
//! files (scenario specs) can point semantic errors — unknown key, value
//! out of range — at an exact `line:column`; parse errors themselves are
//! reported the same way. [`Json::parse`] strips the spans for consumers
//! that only care about the data (`bench-diff`).

use std::fmt::Write as _;

/// 1-based `(line, column)` of byte offset `byte` in `text`, counting
/// columns in characters. Offsets past the end clamp to the last position.
pub fn line_col(text: &str, byte: usize) -> (usize, usize) {
    let (mut line, mut col) = (1, 1);
    for (i, c) in text.char_indices() {
        if i >= byte {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// A JSON value. Objects preserve insertion order so rendering is
/// deterministic and diffs of result files stay readable.
///
/// Unsigned integers get their own variant so values beyond f64's 2^53
/// integer range — notably hash-derived workload seeds — round-trip
/// exactly. [`PartialEq`] treats numerically equal `Num`/`UInt` values as
/// equal, so `parse(render(x)) == x` holds regardless of which variant a
/// whole number started in.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; non-finite values render as `null`.
    Num(f64),
    /// A non-negative integer, kept exact beyond 2^53.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            // A whole number is the same value whichever variant holds it.
            (Json::Num(a), Json::UInt(b)) | (Json::UInt(b), Json::Num(a)) => *a == *b as f64,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// An empty object, ready for [`Json::push`].
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key to an object. Panics on non-objects — misuse is a
    /// harness bug, not a data error.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number (`UInt` beyond 2^53 loses
    /// precision here; use [`Json::as_u64`] for exact integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The exact integer value, if this is a `UInt` or a whole `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(x) => Some(*x),
            Json::Num(x) if *x >= 0.0 && *x == x.trunc() && *x < u64::MAX as f64 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered members, if this is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Render as pretty-printed JSON (two-space indent, no trailing
    /// newline). Deterministic: same value, same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Render on a single line with no whitespace — the NDJSON event form
    /// the serving daemon streams. Parses back to the same value as
    /// [`Json::render`].
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::UInt(_) | Json::Str(_) => {
                self.write(out, 0)
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&fmt_f64(*x)),
            Json::UInt(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry the `line:column` of the
    /// offending input (scenario files are user-authored; byte offsets
    /// are unhelpful).
    pub fn parse(text: &str) -> Result<Json, String> {
        SpannedJson::parse(text).map(|s| s.to_json())
    }
}

/// A parsed JSON value annotated with the byte offset it starts at, so
/// semantic errors against user-authored files (scenario specs) can point
/// at `line:column` via [`line_col`] long after parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedJson {
    /// Byte offset of the value's first character in the source text.
    pub pos: usize,
    /// The value itself.
    pub node: SpannedNode,
}

/// The value inside a [`SpannedJson`]. Mirrors [`Json`], except object
/// members also carry the byte offset of their key.
#[derive(Debug, Clone, PartialEq)]
pub enum SpannedNode {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A non-negative integer, kept exact beyond 2^53.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<SpannedJson>),
    /// An object as an ordered `(key offset, key, value)` list.
    Obj(Vec<(usize, String, SpannedJson)>),
}

impl SpannedJson {
    /// Parse a JSON document keeping source positions. Errors carry the
    /// `line:column` of the offending input.
    pub fn parse(text: &str) -> Result<SpannedJson, String> {
        let mut p = Parser { text, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != text.len() {
            return Err(p.err_at(p.pos, "trailing data"));
        }
        Ok(value)
    }

    /// Strip the spans, leaving the plain value tree.
    pub fn to_json(&self) -> Json {
        match &self.node {
            SpannedNode::Null => Json::Null,
            SpannedNode::Bool(b) => Json::Bool(*b),
            SpannedNode::Num(x) => Json::Num(*x),
            SpannedNode::UInt(x) => Json::UInt(*x),
            SpannedNode::Str(s) => Json::Str(s.clone()),
            SpannedNode::Arr(items) => Json::Arr(items.iter().map(SpannedJson::to_json).collect()),
            SpannedNode::Obj(members) => Json::Obj(
                members
                    .iter()
                    .map(|(_, k, v)| (k.clone(), v.to_json()))
                    .collect(),
            ),
        }
    }

    /// Member of an object by key (first occurrence).
    pub fn get(&self, key: &str) -> Option<&SpannedJson> {
        match &self.node {
            SpannedNode::Obj(members) => {
                members.iter().find(|(_, k, _)| k == key).map(|(_, _, v)| v)
            }
            _ => None,
        }
    }

    /// The ordered `(key offset, key, value)` members, if this is an object.
    pub fn members(&self) -> Option<&[(usize, String, SpannedJson)]> {
        match &self.node {
            SpannedNode::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[SpannedJson]> {
        match &self.node {
            SpannedNode::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match &self.node {
            SpannedNode::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match &self.node {
            SpannedNode::Num(x) => Some(*x),
            SpannedNode::UInt(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The exact integer value, if this is a `UInt` or a whole `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        self.to_json().as_u64()
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match &self.node {
            SpannedNode::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short label for the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match &self.node {
            SpannedNode::Null => "null",
            SpannedNode::Bool(_) => "a boolean",
            SpannedNode::Num(_) | SpannedNode::UInt(_) => "a number",
            SpannedNode::Str(_) => "a string",
            SpannedNode::Arr(_) => "an array",
            SpannedNode::Obj(_) => "an object",
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::UInt(x)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::UInt(x as u64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Option<f64>> for Json {
    fn from(x: Option<f64>) -> Json {
        x.map_or(Json::Null, Json::Num)
    }
}
impl From<Option<u64>> for Json {
    fn from(x: Option<u64>) -> Json {
        x.map_or(Json::Null, Json::UInt)
    }
}

/// Deterministic float formatting: integral values print without a
/// fraction, everything else uses Rust's shortest round-trip form. JSON
/// has no NaN/∞, so non-finite values become `null`.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn bytes(&self) -> &[u8] {
        self.text.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    /// Format an error pointing at `pos` as `line:column`.
    fn err_at(&self, pos: usize, msg: impl std::fmt::Display) -> String {
        let (line, col) = line_col(self.text, pos);
        format!("{msg} at line {line}, column {col}")
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_at(self.pos, format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: SpannedNode) -> Result<SpannedNode, String> {
        if self.text[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err_at(self.pos, "invalid literal"))
        }
    }

    fn value(&mut self) -> Result<SpannedJson, String> {
        let pos = self.pos;
        let node = match self.peek() {
            Some(b'n') => self.literal("null", SpannedNode::Null),
            Some(b't') => self.literal("true", SpannedNode::Bool(true)),
            Some(b'f') => self.literal("false", SpannedNode::Bool(false)),
            Some(b'"') => self.string().map(SpannedNode::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err_at(self.pos, "unexpected input")),
        }?;
        Ok(SpannedJson { pos, node })
    }

    fn array(&mut self) -> Result<SpannedNode, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(SpannedNode::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(SpannedNode::Arr(items));
                }
                _ => return Err(self.err_at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<SpannedNode, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(SpannedNode::Obj(members));
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos;
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key_pos, key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(SpannedNode::Obj(members));
                }
                _ => return Err(self.err_at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        let start = self.pos;
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err_at(start, "unterminated string starting")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes()
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err_at(self.pos, "truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err_at(self.pos, "bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err_at(self.pos, "bad \\u escape"))?;
                            // Surrogates never appear in our own output;
                            // map them to U+FFFD rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err_at(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always on a boundary).
                    let c = self.text[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<SpannedNode, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = &self.text[start..self.pos];
        // Plain non-negative integer literals stay exact (seeds exceed
        // f64's 2^53 integer range); everything else goes through f64.
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(SpannedNode::UInt(x));
            }
        }
        text.parse::<f64>()
            .map(SpannedNode::Num)
            .map_err(|_| self.err_at(start, format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_back() {
        let mut obj = Json::object();
        obj.push("schema_version", 1u64)
            .push("name", "fig9")
            .push("loads", Json::Arr(vec![Json::Num(0.1), Json::Num(1.0)]))
            .push("missing", Json::Null)
            .push("ok", true);
        let text = obj.render();
        assert_eq!(Json::parse(&text).unwrap(), obj);
        // Stable key order in the rendering.
        let v = text.find("schema_version").unwrap();
        let n = text.find("name").unwrap();
        assert!(v < n);
    }

    #[test]
    fn compact_rendering_is_one_line_and_round_trips() {
        let text = r#"{"a": [1, 2.5, {"b": null}], "c": "x\ny", "d": false, "e": {}}"#;
        let j = Json::parse(text).unwrap();
        let compact = j.render_compact();
        assert!(!compact.contains('\n'), "{compact}");
        assert_eq!(
            compact,
            r#"{"a":[1,2.5,{"b":null}],"c":"x\ny","d":false,"e":{}}"#
        );
        assert_eq!(Json::parse(&compact).unwrap(), j);
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_f64(5.0), "5");
        assert_eq!(fmt_f64(-3.0), "-3");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(20240804.0), "20240804");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        // Round trip through parse.
        for x in [0.1, 1.0 / 3.0, 1e-9, 123456.789, -0.25] {
            let t = fmt_f64(x);
            assert_eq!(Json::parse(&t).unwrap().as_f64(), Some(x), "{t}");
        }
    }

    #[test]
    fn big_integers_stay_exact() {
        // Seeds beyond f64's 2^53 integer range must round-trip exactly.
        let seed: u64 = 9_007_199_254_740_993; // 2^53 + 1
        let mut obj = Json::object();
        obj.push("seed", seed).push("max", u64::MAX);
        let text = obj.render();
        assert!(text.contains("9007199254740993"), "{text}");
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(seed));
        assert_eq!(back.get("max").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back, obj);
        // Whole numbers compare equal across variants; distinct big
        // integers stay distinct (f64 would have collapsed them).
        assert_eq!(Json::Num(5.0), Json::UInt(5));
        assert_ne!(Json::UInt(seed), Json::UInt(seed - 1));
        // Too big for u64 falls back to a float.
        assert!(matches!(
            Json::parse("123456789012345678901234567890").unwrap(),
            Json::Num(_)
        ));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        let text = j.render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn parses_nested() {
        let text = r#" { "a": [1, 2.5, {"b": null}], "c": "x", "d": false } "#;
        let j = Json::parse(text).unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(j.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("d"), Some(&Json::Bool(false)));
        assert!(j.get("a").unwrap().as_array().unwrap()[2]
            .get("b")
            .unwrap()
            .is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_guards_type() {
        Json::Arr(vec![]).push("k", 1u64);
    }

    #[test]
    fn line_col_math() {
        let text = "ab\ncdé\nf";
        assert_eq!(line_col(text, 0), (1, 1));
        assert_eq!(line_col(text, 2), (1, 3)); // the newline itself
        assert_eq!(line_col(text, 3), (2, 1));
        // é is two bytes but one column.
        assert_eq!(line_col(text, 7), (2, 4));
        assert_eq!(line_col(text, 8), (3, 1));
        assert_eq!(line_col(text, 999), (3, 2)); // clamped past the end
    }

    #[test]
    fn errors_point_at_line_and_column() {
        // Missing ':' on line 3, right after the key.
        let err = Json::parse("{\n  \"a\": 1,\n  \"b\" 2\n}").unwrap_err();
        assert!(err.contains("line 3, column 7"), "{err}");
        // Trailing comma in an array on line 2.
        let err = Json::parse("[\n 1,\n]").unwrap_err();
        assert!(err.contains("line 3, column 1"), "{err}");
        // Bad literal midway through line 1.
        let err = Json::parse("{\"x\": nope}").unwrap_err();
        assert!(err.contains("line 1, column 7"), "{err}");
        // Trailing data after the document.
        let err = Json::parse("{}\n{}").unwrap_err();
        assert!(err.contains("trailing data at line 2, column 1"), "{err}");
        // Unterminated string points at its opening quote.
        let err = Json::parse("{\n  \"a\": \"open\n}").unwrap_err();
        assert!(err.contains("unterminated string"), "{err}");
        assert!(err.contains("line 2, column 8"), "{err}");
        // Truncated \u escape carries a position too.
        let err = Json::parse("[\"x\\u00").unwrap_err();
        assert!(err.contains("truncated \\u escape at line 1"), "{err}");
    }

    #[test]
    fn spanned_parse_records_positions() {
        let text = "{\n  \"phases\": [\n    {\"load\": 50}\n  ]\n}";
        let doc = SpannedJson::parse(text).unwrap();
        assert_eq!(line_col(text, doc.pos), (1, 1));
        let phases = doc.get("phases").unwrap();
        assert_eq!(line_col(text, phases.pos), (2, 13));
        let first = &phases.as_array().unwrap()[0];
        let (key_pos, key, value) = &first.members().unwrap()[0];
        assert_eq!(key, "load");
        assert_eq!(line_col(text, *key_pos), (3, 6));
        assert_eq!(value.as_f64(), Some(50.0));
        assert_eq!(value.as_u64(), Some(50));
        assert_eq!(value.kind(), "a number");
        // Stripping spans reproduces the plain parse.
        assert_eq!(doc.to_json(), Json::parse(text).unwrap());
    }
}
