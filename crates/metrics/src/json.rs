//! Hand-rolled JSON: a tiny writer/parser pair for the harness's
//! machine-readable results.
//!
//! The workspace builds offline with no crates.io dependencies, so instead
//! of serde this module carries the ~200 lines of JSON the sweep engine
//! actually needs: an ordered object model ([`Json`]), a deterministic
//! pretty renderer (stable key order, shortest-round-trip floats — the
//! byte-identity the determinism tests assert rests on this), and a strict
//! recursive-descent parser for `bench-diff` to read result files back.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so rendering is
/// deterministic and diffs of result files stay readable.
///
/// Unsigned integers get their own variant so values beyond f64's 2^53
/// integer range — notably hash-derived workload seeds — round-trip
/// exactly. [`PartialEq`] treats numerically equal `Num`/`UInt` values as
/// equal, so `parse(render(x)) == x` holds regardless of which variant a
/// whole number started in.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; non-finite values render as `null`.
    Num(f64),
    /// A non-negative integer, kept exact beyond 2^53.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            // A whole number is the same value whichever variant holds it.
            (Json::Num(a), Json::UInt(b)) | (Json::UInt(b), Json::Num(a)) => *a == *b as f64,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// An empty object, ready for [`Json::push`].
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key to an object. Panics on non-objects — misuse is a
    /// harness bug, not a data error.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number (`UInt` beyond 2^53 loses
    /// precision here; use [`Json::as_u64`] for exact integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The exact integer value, if this is a `UInt` or a whole `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(x) => Some(*x),
            Json::Num(x) if *x >= 0.0 && *x == x.trunc() && *x < u64::MAX as f64 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered members, if this is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Render as pretty-printed JSON (two-space indent, no trailing
    /// newline). Deterministic: same value, same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&fmt_f64(*x)),
            Json::UInt(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry the byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::UInt(x)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::UInt(x as u64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Option<f64>> for Json {
    fn from(x: Option<f64>) -> Json {
        x.map_or(Json::Null, Json::Num)
    }
}

/// Deterministic float formatting: integral values print without a
/// fraction, everything else uses Rust's shortest round-trip form. JSON
/// has no NaN/∞, so non-finite values become `null`.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates never appear in our own output;
                            // map them to U+FFFD rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always on a boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Plain non-negative integer literals stay exact (seeds exceed
        // f64's 2^53 integer range); everything else goes through f64.
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Json::UInt(x));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_back() {
        let mut obj = Json::object();
        obj.push("schema_version", 1u64)
            .push("name", "fig9")
            .push("loads", Json::Arr(vec![Json::Num(0.1), Json::Num(1.0)]))
            .push("missing", Json::Null)
            .push("ok", true);
        let text = obj.render();
        assert_eq!(Json::parse(&text).unwrap(), obj);
        // Stable key order in the rendering.
        let v = text.find("schema_version").unwrap();
        let n = text.find("name").unwrap();
        assert!(v < n);
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_f64(5.0), "5");
        assert_eq!(fmt_f64(-3.0), "-3");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(20240804.0), "20240804");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        // Round trip through parse.
        for x in [0.1, 1.0 / 3.0, 1e-9, 123456.789, -0.25] {
            let t = fmt_f64(x);
            assert_eq!(Json::parse(&t).unwrap().as_f64(), Some(x), "{t}");
        }
    }

    #[test]
    fn big_integers_stay_exact() {
        // Seeds beyond f64's 2^53 integer range must round-trip exactly.
        let seed: u64 = 9_007_199_254_740_993; // 2^53 + 1
        let mut obj = Json::object();
        obj.push("seed", seed).push("max", u64::MAX);
        let text = obj.render();
        assert!(text.contains("9007199254740993"), "{text}");
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(seed));
        assert_eq!(back.get("max").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back, obj);
        // Whole numbers compare equal across variants; distinct big
        // integers stay distinct (f64 would have collapsed them).
        assert_eq!(Json::Num(5.0), Json::UInt(5));
        assert_ne!(Json::UInt(seed), Json::UInt(seed - 1));
        // Too big for u64 falls back to a float.
        assert!(matches!(
            Json::parse("123456789012345678901234567890").unwrap(),
            Json::Num(_)
        ));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        let text = j.render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn parses_nested() {
        let text = r#" { "a": [1, 2.5, {"b": null}], "c": "x", "d": false } "#;
        let j = Json::parse(text).unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(j.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("d"), Some(&Json::Bool(false)));
        assert!(j.get("a").unwrap().as_array().unwrap()[2]
            .get("b")
            .unwrap()
            .is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_guards_type() {
        Json::Arr(vec![]).push("k", 1u64);
    }
}
