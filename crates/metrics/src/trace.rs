//! Deterministic flight recorder: a bounded ring of epoch-stamped events.
//!
//! Both engines can carry a [`FlightRecorder`] (behind an `Option`, so the
//! off state costs one branch per epoch) and emit structured events from
//! the *sequential* top of their main loop — after the parallel shards of
//! the previous epoch have merged — so a trace is a pure function of
//! (config, seed) and byte-identical at any `--workers` count. The ring is
//! preallocated at construction and never grows: recording is a store into
//! existing capacity, with no wall-clock reads and no allocation on the
//! hot path (lint D002/H001 apply to this module — `metrics` is an engine
//! zone). When the ring fills, the oldest events are overwritten and
//! counted in `dropped`, so a trace always holds the most recent window.
//!
//! Rendering to NDJSON ([`FlightRecorder::render_ndjson`]) happens once,
//! after the run, where allocation is fine. The text form is consumed by
//! `paper scenario --trace`, the daemon's `GET /jobs/{id}/trace` and the
//! `paper trace` summarizer; its field layout is documented in the README
//! "Observability" section and stamped with [`TRACE_SCHEMA_VERSION`].

use crate::json::Json;
use crate::phase::PhaseCounters;
use sim::time::Nanos;

/// Version stamped on every `trace_start` line. Bump on any change to
/// event names or field layout. v2 added the causal flow-lifecycle span
/// events (`flow_born` … `flow_complete`).
pub const TRACE_SCHEMA_VERSION: u64 = 2;

/// Default ring capacity (events). Chosen so a daemon retaining traces for
/// its full job table stays bounded: 16 Ki events × 48 B ≈ 768 KiB per
/// trace before rendering.
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

/// What a [`TraceEvent`] records. The three payload words `a`/`b`/`c` (and
/// `d`) are interpreted per kind — see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Control-plane outcomes for one epoch: `a` = REQUESTs sent, `b` =
    /// GRANTs issued, `c` = ACCEPTs made (deltas since the previous
    /// epoch). Emitted only when at least one delta is nonzero.
    Sched,
    /// Control messages dropped (gray failures): `a` = dropped this epoch,
    /// `b` = cumulative total.
    ControlDrop,
    /// Fault-detector divergence from ground truth changed: `a` = links
    /// currently excluded but healthy (false positives), `b` = links down
    /// but not excluded (false negatives).
    Detector,
    /// Scheduled fault activity applied at this epoch: `a` = injected
    /// fault actions (flap/partition/gray/greedy), `b` = plain link
    /// fail/repair events, `c` = cumulative total of both.
    Fault,
    /// A ToR's queued backlog reached a new high-water mark: `a` = ToR
    /// index, `b` = backlog bytes. Emitted when the backlog first becomes
    /// nonzero and thereafter only when it doubles the previous mark, so
    /// a congested run cannot flood the ring.
    Backlog,
    /// A workload phase boundary passed: `a` = phase index, `b` =
    /// delivered bytes, `c` = backlog bytes, `d` = partitioned ToRs.
    Phase,
    /// A flow arrived at its source ToR: `a` = flow id, `b` = src ToR,
    /// `c` = dst ToR, `d` = flow bytes.
    FlowBorn,
    /// First REQUEST covering the flow's (src, dst) pair after its birth:
    /// `a` = flow id, `b` = src ToR, `c` = dst ToR.
    FlowRequest,
    /// First GRANT covering the flow's pair: same payload as
    /// [`TraceEventKind::FlowRequest`].
    FlowGrant,
    /// First ACCEPT (scheduled transmission slot) covering the flow's
    /// pair: same payload as [`TraceEventKind::FlowRequest`].
    FlowAccept,
    /// The flow's first payload bytes were dequeued toward the
    /// destination: `a` = flow id, `b` = bytes sent so far.
    FlowFirstTx,
    /// The flow's last byte was delivered (completion *is* last-packet
    /// dequeue at the destination ToR): `a` = flow id, `b` = FCT in ns,
    /// `c` = src ToR, `d` = dst ToR.
    FlowComplete,
}

impl TraceEventKind {
    /// The `"event"` field value on the NDJSON line.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Sched => "sched",
            TraceEventKind::ControlDrop => "control_drop",
            TraceEventKind::Detector => "detector",
            TraceEventKind::Fault => "fault",
            TraceEventKind::Backlog => "backlog_watermark",
            TraceEventKind::Phase => "phase",
            TraceEventKind::FlowBorn => "flow_born",
            TraceEventKind::FlowRequest => "flow_request",
            TraceEventKind::FlowGrant => "flow_grant",
            TraceEventKind::FlowAccept => "flow_accept",
            TraceEventKind::FlowFirstTx => "flow_first_tx",
            TraceEventKind::FlowComplete => "flow_complete",
        }
    }
}

/// One fixed-size recorded event. `Copy` so ring writes are plain stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the epoch (or slot) that emitted the event.
    pub at: Nanos,
    /// Epoch (negotiator) or slot (oblivious) index.
    pub epoch: u64,
    /// Event kind; selects the meaning of the payload words.
    pub kind: TraceEventKind,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
    /// Fourth payload word.
    pub d: u64,
}

/// Cumulative engine counters the recorder diffs against between epochs.
/// Engines fill whichever fields they track; the recorder turns them into
/// delta/transition events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCursor {
    /// REQUEST messages sent so far.
    pub requests: u64,
    /// GRANTs issued so far.
    pub grants: u64,
    /// ACCEPTs made so far.
    pub accepts: u64,
    /// Control messages dropped so far.
    pub control_dropped: u64,
    /// Current detector false-positive link count.
    pub detector_fp: u64,
    /// Current detector false-negative link count.
    pub detector_fn: u64,
}

/// Preallocated, bounded recorder of [`TraceEvent`]s.
///
/// Construct with [`FlightRecorder::with_capacity`], hand it to an engine
/// before `run()`, take it back afterwards and render. All recording
/// methods are allocation-free; `n_tors` sizes the per-ToR watermark table
/// up front.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    events: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
    last: TraceCursor,
    watermarks: Vec<u64>,
}

impl FlightRecorder {
    /// Recorder holding at most `capacity` events, tracking backlog
    /// watermarks for `n_tors` ToRs. `capacity` must be nonzero.
    pub fn with_capacity(capacity: usize, n_tors: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight recorder capacity must be nonzero");
        FlightRecorder {
            events: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
            last: TraceCursor::default(),
            watermarks: vec![0; n_tors],
        }
    }

    /// Recorder with [`DEFAULT_TRACE_CAPACITY`].
    pub fn new(n_tors: usize) -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_TRACE_CAPACITY, n_tors)
    }

    /// Events currently held, oldest first.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    // lint: hot-path
    /// Append one event, overwriting the oldest when full. Called from
    /// engine main loops: a branch and a store, nothing else.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.events.capacity() {
            // lint: allow(H001) push into preallocated capacity; the ring never grows
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head += 1;
            if self.head == self.events.len() {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    // lint: hot-path
    /// Diff `now` against the previous epoch's cursor and emit `sched`,
    /// `control_drop` and `detector` events for whatever changed.
    #[inline]
    pub fn epoch_counters(&mut self, at: Nanos, epoch: u64, now: TraceCursor) {
        let (dr, dg, da) = (
            now.requests - self.last.requests,
            now.grants - self.last.grants,
            now.accepts - self.last.accepts,
        );
        if dr | dg | da != 0 {
            self.record(TraceEvent {
                at,
                epoch,
                kind: TraceEventKind::Sched,
                a: dr,
                b: dg,
                c: da,
                d: 0,
            });
        }
        let dd = now.control_dropped - self.last.control_dropped;
        if dd != 0 {
            self.record(TraceEvent {
                at,
                epoch,
                kind: TraceEventKind::ControlDrop,
                a: dd,
                b: now.control_dropped,
                c: 0,
                d: 0,
            });
        }
        if now.detector_fp != self.last.detector_fp || now.detector_fn != self.last.detector_fn {
            self.record(TraceEvent {
                at,
                epoch,
                kind: TraceEventKind::Detector,
                a: now.detector_fp,
                b: now.detector_fn,
                c: 0,
                d: 0,
            });
        }
        self.last = now;
    }

    // lint: hot-path
    /// Record fault-schedule activity: `injected` adversarial actions and
    /// `links` plain fail/repair events applied at this epoch. No-op when
    /// both are zero.
    #[inline]
    pub fn fault_applied(&mut self, at: Nanos, epoch: u64, injected: u64, links: u64, total: u64) {
        if injected | links != 0 {
            self.record(TraceEvent {
                at,
                epoch,
                kind: TraceEventKind::Fault,
                a: injected,
                b: links,
                c: total,
                d: 0,
            });
        }
    }

    // lint: hot-path
    /// Offer one ToR's current backlog; emits a `backlog_watermark` event
    /// only when it first becomes nonzero or doubles the previous mark.
    #[inline]
    pub fn backlog_sample(&mut self, at: Nanos, epoch: u64, tor: usize, bytes: u64) {
        let mark = &mut self.watermarks[tor];
        if bytes > 0 && (*mark == 0 || bytes >= *mark * 2) {
            *mark = bytes;
            self.record(TraceEvent {
                at,
                epoch,
                kind: TraceEventKind::Backlog,
                a: tor as u64,
                b: bytes,
                c: 0,
                d: 0,
            });
        }
    }

    // lint: hot-path
    /// Record a workload phase boundary from the same counters the
    /// [`crate::PhaseProbe`] snapshot carries.
    #[inline]
    pub fn phase_boundary(&mut self, at: Nanos, epoch: u64, phase: u64, c: &PhaseCounters) {
        self.record(TraceEvent {
            at,
            epoch,
            kind: TraceEventKind::Phase,
            a: phase,
            b: c.delivered_bytes,
            c: c.backlog_bytes,
            d: c.partitioned_tors,
        });
    }

    /// Iterate events oldest-first (accounting for ring wrap).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, recent) = if self.dropped > 0 {
            let (a, b) = self.events.split_at(self.head);
            (b, a)
        } else {
            (&self.events[..], &self.events[..0])
        };
        wrapped.iter().chain(recent.iter())
    }

    /// Render the trace as NDJSON: a `trace_start` header, one line per
    /// event oldest-first, and a `trace_end` footer carrying the held and
    /// dropped counts. Called once after the run — allocation is fine
    /// here.
    pub fn render_ndjson(&self, system: &str) -> String {
        let mut out = String::new();
        let mut start = Json::object();
        start
            .push("event", "trace_start")
            .push("schema_version", TRACE_SCHEMA_VERSION)
            .push("system", system)
            .push("capacity", self.events.capacity() as u64);
        out.push_str(&start.render_compact());
        out.push('\n');
        for ev in self.events() {
            let mut line = Json::object();
            line.push("event", ev.kind.name())
                .push("epoch", ev.epoch)
                .push("t_ns", ev.at);
            match ev.kind {
                TraceEventKind::Sched => {
                    line.push("requests", ev.a)
                        .push("grants", ev.b)
                        .push("accepts", ev.c);
                }
                TraceEventKind::ControlDrop => {
                    line.push("dropped", ev.a).push("total", ev.b);
                }
                TraceEventKind::Detector => {
                    line.push("fp_links", ev.a).push("fn_links", ev.b);
                }
                TraceEventKind::Fault => {
                    line.push("injected", ev.a)
                        .push("link_events", ev.b)
                        .push("total", ev.c);
                }
                TraceEventKind::Backlog => {
                    line.push("tor", ev.a).push("bytes", ev.b);
                }
                TraceEventKind::Phase => {
                    line.push("phase", ev.a)
                        .push("delivered_bytes", ev.b)
                        .push("backlog_bytes", ev.c)
                        .push("partitioned_tors", ev.d);
                }
                TraceEventKind::FlowBorn => {
                    line.push("flow", ev.a)
                        .push("src", ev.b)
                        .push("dst", ev.c)
                        .push("bytes", ev.d);
                }
                TraceEventKind::FlowRequest
                | TraceEventKind::FlowGrant
                | TraceEventKind::FlowAccept => {
                    line.push("flow", ev.a).push("src", ev.b).push("dst", ev.c);
                }
                TraceEventKind::FlowFirstTx => {
                    line.push("flow", ev.a).push("sent_bytes", ev.b);
                }
                TraceEventKind::FlowComplete => {
                    line.push("flow", ev.a)
                        .push("fct_ns", ev.b)
                        .push("src", ev.c)
                        .push("dst", ev.d);
                }
            }
            out.push_str(&line.render_compact());
            out.push('\n');
        }
        let mut end = Json::object();
        end.push("event", "trace_end")
            .push("system", system)
            .push("events", self.events.len() as u64)
            .push("dropped", self.dropped);
        out.push_str(&end.render_compact());
        out.push('\n');
        out
    }
}

/// Milestone bits a flow passes through, in causal order.
mod milestone {
    pub const BORN: u8 = 1 << 0;
    pub const REQUESTED: u8 = 1 << 1;
    pub const GRANTED: u8 = 1 << 2;
    pub const ACCEPTED: u8 = 1 << 3;
    pub const FIRST_TX: u8 = 1 << 4;
}

/// Causal flow-lifecycle span tracker: turns per-epoch engine state into
/// `flow_born → flow_request → flow_grant → flow_accept → flow_first_tx →
/// flow_complete` events on a [`FlightRecorder`].
///
/// The control plane negotiates per (src, dst) ToR *pair*, not per flow,
/// so engines stamp pair-level activity ([`FlowSpans::mark_request`] and
/// friends) with the epoch it happened in — stamping is idempotent and
/// order-independent, which is what keeps span bytes identical when a
/// parallel shard merge delivers the same pair set in a different order.
/// [`FlowSpans::sweep`] then walks the live flows in flow-id order (the
/// one deterministic order) and emits each flow's first crossing of each
/// milestone. All state is preallocated at construction
/// ([`FlowSpans::new`]); recording is allocation-free and reads no clock,
/// same discipline as the recorder itself.
#[derive(Debug, Clone)]
pub struct FlowSpans {
    n_tors: usize,
    /// Per-flow milestone bits (indexed by flow id).
    flags: Vec<u8>,
    src: Vec<u32>,
    dst: Vec<u32>,
    bytes: Vec<u64>,
    arrival: Vec<u64>,
    /// Per-pair (src * n_tors + dst) epoch of the most recent REQUEST /
    /// GRANT / ACCEPT; `u64::MAX` = never.
    pair_req: Vec<u64>,
    pair_grant: Vec<u64>,
    pair_accept: Vec<u64>,
    /// Born-but-incomplete flow ids, maintained in ascending id order.
    live: Vec<u32>,
    /// Next flow id to be born (flows are born in ascending id order, the
    /// injection order, so this is also the born count).
    born_next: usize,
}

impl FlowSpans {
    /// Span tracker for a run of `n_flows` flows over `n_tors` ToRs.
    /// Everything the hot path touches is sized here.
    pub fn new(n_tors: usize, n_flows: usize) -> FlowSpans {
        FlowSpans {
            n_tors,
            flags: vec![0; n_flows],
            src: vec![0; n_flows],
            dst: vec![0; n_flows],
            bytes: vec![0; n_flows],
            arrival: vec![0; n_flows],
            pair_req: vec![u64::MAX; n_tors * n_tors],
            pair_grant: vec![u64::MAX; n_tors * n_tors],
            pair_accept: vec![u64::MAX; n_tors * n_tors],
            live: Vec::with_capacity(n_flows),
            born_next: 0,
        }
    }

    /// Flows currently born but not yet complete.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The next flow id awaiting birth — engines birth `flows[next_born()
    /// .. injected]` each epoch, in id order.
    pub fn next_born(&self) -> usize {
        self.born_next
    }

    // lint: hot-path
    /// Record a flow's arrival at its source ToR and start tracking it.
    /// Flows must be born in ascending id order (the injection order).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn born(
        &mut self,
        rec: &mut FlightRecorder,
        at: Nanos,
        epoch: u64,
        id: u32,
        src: u32,
        dst: u32,
        bytes: u64,
        arrival: Nanos,
    ) {
        let i = id as usize;
        debug_assert_eq!(i, self.born_next, "flows must be born in id order");
        self.born_next = i + 1;
        self.flags[i] = milestone::BORN;
        self.src[i] = src;
        self.dst[i] = dst;
        self.bytes[i] = bytes;
        self.arrival[i] = arrival;
        // lint: allow(H001) push into capacity preallocated for every flow
        self.live.push(id);
        rec.record(TraceEvent {
            at,
            epoch,
            kind: TraceEventKind::FlowBorn,
            a: id as u64,
            b: src as u64,
            c: dst as u64,
            d: bytes,
        });
    }

    // lint: hot-path
    /// Stamp a REQUEST sent for pair `src → dst` at `epoch`. Idempotent
    /// and order-independent; events are emitted later by [`Self::sweep`].
    #[inline]
    pub fn mark_request(&mut self, src: u32, dst: u32, epoch: u64) {
        self.pair_req[src as usize * self.n_tors + dst as usize] = epoch;
    }

    // lint: hot-path
    /// Stamp a GRANT issued for pair `src → dst` at `epoch`.
    #[inline]
    pub fn mark_grant(&mut self, src: u32, dst: u32, epoch: u64) {
        self.pair_grant[src as usize * self.n_tors + dst as usize] = epoch;
    }

    // lint: hot-path
    /// Stamp an ACCEPT (scheduled slot) for pair `src → dst` at `epoch`.
    #[inline]
    pub fn mark_accept(&mut self, src: u32, dst: u32, epoch: u64) {
        self.pair_accept[src as usize * self.n_tors + dst as usize] = epoch;
    }

    // lint: hot-path
    /// Walk the live flows in flow-id order, emit every milestone crossed
    /// this `epoch`, and retire completed flows. `flow_state` reports a
    /// flow's `(remaining_bytes, completion_time)` — completion is
    /// last-byte delivery, so `flow_complete` doubles as the last-packet
    /// dequeue span end. Compacts `live` in place; no allocation.
    #[inline]
    pub fn sweep(
        &mut self,
        rec: &mut FlightRecorder,
        at: Nanos,
        epoch: u64,
        mut flow_state: impl FnMut(u32) -> (u64, Option<Nanos>),
    ) {
        let mut w = 0usize;
        for r in 0..self.live.len() {
            let id = self.live[r];
            let i = id as usize;
            let (src, dst) = (self.src[i], self.dst[i]);
            let pair = src as usize * self.n_tors + dst as usize;
            let steps: [(u8, u64, TraceEventKind); 3] = [
                (
                    milestone::REQUESTED,
                    self.pair_req[pair],
                    TraceEventKind::FlowRequest,
                ),
                (
                    milestone::GRANTED,
                    self.pair_grant[pair],
                    TraceEventKind::FlowGrant,
                ),
                (
                    milestone::ACCEPTED,
                    self.pair_accept[pair],
                    TraceEventKind::FlowAccept,
                ),
            ];
            for (bit, stamp, kind) in steps {
                if self.flags[i] & bit == 0 && stamp == epoch {
                    self.flags[i] |= bit;
                    rec.record(TraceEvent {
                        at,
                        epoch,
                        kind,
                        a: id as u64,
                        b: src as u64,
                        c: dst as u64,
                        d: 0,
                    });
                }
            }
            let (remaining, completion) = flow_state(id);
            if self.flags[i] & milestone::FIRST_TX == 0 && remaining < self.bytes[i] {
                self.flags[i] |= milestone::FIRST_TX;
                rec.record(TraceEvent {
                    at,
                    epoch,
                    kind: TraceEventKind::FlowFirstTx,
                    a: id as u64,
                    b: self.bytes[i] - remaining,
                    c: 0,
                    d: 0,
                });
            }
            if let Some(done) = completion {
                rec.record(TraceEvent {
                    at,
                    epoch,
                    kind: TraceEventKind::FlowComplete,
                    a: id as u64,
                    b: done - self.arrival[i],
                    c: src as u64,
                    d: dst as u64,
                });
                continue; // retired: drop from the live list
            }
            self.live[w] = id;
            w += 1;
        }
        self.live.truncate(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(epoch: u64, a: u64) -> TraceEvent {
        TraceEvent {
            at: epoch * 100,
            epoch,
            kind: TraceEventKind::Sched,
            a,
            b: 0,
            c: 0,
            d: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_dropped() {
        let mut r = FlightRecorder::with_capacity(3, 0);
        for i in 0..5 {
            r.record(ev(i, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let epochs: Vec<u64> = r.events().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![2, 3, 4], "oldest-first after wrap");
    }

    #[test]
    fn capacity_never_grows() {
        let mut r = FlightRecorder::with_capacity(4, 0);
        let cap = r.events.capacity();
        for i in 0..100 {
            r.record(ev(i, 0));
        }
        assert_eq!(r.events.capacity(), cap);
    }

    #[test]
    fn epoch_counters_emit_deltas_only_on_change() {
        let mut r = FlightRecorder::with_capacity(16, 0);
        let mut c = TraceCursor {
            requests: 5,
            grants: 3,
            accepts: 2,
            ..TraceCursor::default()
        };
        r.epoch_counters(100, 1, c);
        assert_eq!(r.len(), 1);
        let first = *r.events().next().unwrap();
        assert_eq!((first.a, first.b, first.c), (5, 3, 2));
        // Nothing changed: no new event.
        r.epoch_counters(200, 2, c);
        assert_eq!(r.len(), 1);
        // Drops and a detector transition land as separate events.
        c.control_dropped = 7;
        c.detector_fp = 1;
        r.epoch_counters(300, 3, c);
        let kinds: Vec<TraceEventKind> = r.events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::Sched,
                TraceEventKind::ControlDrop,
                TraceEventKind::Detector
            ]
        );
    }

    #[test]
    fn backlog_watermark_requires_doubling() {
        let mut r = FlightRecorder::with_capacity(16, 2);
        r.backlog_sample(0, 0, 1, 100); // first nonzero: emit
        r.backlog_sample(1, 1, 1, 150); // below 2x: silent
        r.backlog_sample(2, 2, 1, 200); // 2x: emit
        r.backlog_sample(3, 3, 0, 50); // other ToR: emit
        let marks: Vec<(u64, u64)> = r
            .events()
            .filter(|e| e.kind == TraceEventKind::Backlog)
            .map(|e| (e.a, e.b))
            .collect();
        assert_eq!(marks, vec![(1, 100), (1, 200), (0, 50)]);
    }

    #[test]
    fn fault_applied_is_silent_when_nothing_fired() {
        let mut r = FlightRecorder::with_capacity(4, 0);
        r.fault_applied(0, 0, 0, 0, 0);
        assert!(r.is_empty());
        r.fault_applied(100, 1, 2, 1, 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ndjson_round_trips_and_carries_schema_version() {
        let mut r = FlightRecorder::with_capacity(8, 1);
        r.epoch_counters(
            100,
            1,
            TraceCursor {
                requests: 1,
                grants: 1,
                accepts: 1,
                ..TraceCursor::default()
            },
        );
        r.backlog_sample(100, 1, 0, 64);
        r.phase_boundary(
            200,
            2,
            0,
            &PhaseCounters {
                delivered_bytes: 1024,
                backlog_bytes: 64,
                ..PhaseCounters::default()
            },
        );
        let text = r.render_ndjson("negotiator");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "start + 3 events + end");
        let start = Json::parse(lines[0]).unwrap();
        assert_eq!(
            start.get("schema_version").and_then(Json::as_u64),
            Some(TRACE_SCHEMA_VERSION)
        );
        for line in &lines {
            Json::parse(line).expect("every trace line parses as JSON");
        }
        let end = Json::parse(lines[4]).unwrap();
        assert_eq!(end.get("events").and_then(Json::as_u64), Some(3));
        assert_eq!(end.get("dropped").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn flow_spans_emit_the_causal_lifecycle_once() {
        let mut r = FlightRecorder::with_capacity(64, 2);
        let mut s = FlowSpans::new(2, 1);
        // Epoch 0: birth + REQUEST, nothing sent yet.
        s.born(&mut r, 0, 0, 0, 0, 1, 1_000, 0);
        s.mark_request(0, 1, 0);
        s.sweep(&mut r, 0, 0, |_| (1_000, None));
        // Epoch 1: GRANT arrives; re-sweeping must not re-emit the request.
        s.mark_grant(0, 1, 1);
        s.sweep(&mut r, 100, 1, |_| (1_000, None));
        // Epoch 2: ACCEPT + first bytes move.
        s.mark_accept(0, 1, 2);
        s.sweep(&mut r, 200, 2, |_| (600, None));
        // Epoch 3: last byte delivered; flow retires.
        s.sweep(&mut r, 300, 3, |_| (0, Some(250)));
        assert_eq!(s.live_count(), 0);
        let kinds: Vec<TraceEventKind> = r.events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::FlowBorn,
                TraceEventKind::FlowRequest,
                TraceEventKind::FlowGrant,
                TraceEventKind::FlowAccept,
                TraceEventKind::FlowFirstTx,
                TraceEventKind::FlowComplete,
            ]
        );
        let done = r.events().last().unwrap();
        assert_eq!((done.a, done.b, done.c, done.d), (0, 250, 0, 1));
        // Retired flows never re-emit, even if the pair stays active.
        s.mark_request(0, 1, 4);
        s.sweep(&mut r, 400, 4, |_| (0, Some(250)));
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn flow_spans_stale_pair_stamps_do_not_leak_into_later_flows() {
        let mut r = FlightRecorder::with_capacity(64, 2);
        let mut s = FlowSpans::new(2, 2);
        s.born(&mut r, 0, 0, 0, 0, 1, 100, 0);
        s.mark_request(0, 1, 0);
        s.sweep(&mut r, 0, 0, |_| (100, None));
        // Flow 1 on the same pair is born two epochs later: the epoch-0
        // REQUEST stamp must not be attributed to it.
        s.born(&mut r, 200, 2, 1, 0, 1, 100, 200);
        s.sweep(&mut r, 200, 2, |id| (100, (id == 0).then_some(150)));
        let requests = r
            .events()
            .filter(|e| e.kind == TraceEventKind::FlowRequest)
            .count();
        assert_eq!(requests, 1, "only flow 0 saw the epoch-0 REQUEST");
        assert_eq!(s.live_count(), 1);
    }

    #[test]
    fn flow_span_events_render_with_named_fields() {
        let mut r = FlightRecorder::with_capacity(16, 2);
        let mut s = FlowSpans::new(2, 1);
        s.born(&mut r, 0, 0, 0, 1, 0, 512, 0);
        s.mark_request(1, 0, 0);
        s.sweep(&mut r, 0, 0, |_| (0, Some(90)));
        let text = r.render_ndjson("negotiator");
        assert!(text.contains(
            "\"event\":\"flow_born\",\"epoch\":0,\"t_ns\":0,\"flow\":0,\"src\":1,\"dst\":0,\"bytes\":512"
        ));
        assert!(text.contains("\"event\":\"flow_request\""));
        assert!(text.contains("\"event\":\"flow_first_tx\""));
        assert!(text.contains(
            "\"event\":\"flow_complete\",\"epoch\":0,\"t_ns\":0,\"flow\":0,\"fct_ns\":90"
        ));
        for line in text.lines() {
            Json::parse(line).expect("every span line parses");
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut r = FlightRecorder::with_capacity(4, 1);
            for i in 0..9 {
                r.record(ev(i, i * 7));
            }
            r.render_ndjson("oblivious")
        };
        assert_eq!(build(), build());
    }
}
