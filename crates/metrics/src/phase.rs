//! Phase-boundary snapshots for scenario runs.
//!
//! A scenario divides a run into workload phases spanning epochs. Both
//! engines accept a [`PhaseProbe`] listing the phase-end times; the engine
//! checks [`PhaseProbe::due`] at the top of its main loop (one comparison —
//! nothing on the hot path) and, when a boundary passes, hands the probe a
//! [`PhaseCounters`] snapshot of its cumulative state. The probe never
//! influences the simulation, so scenario output stays a pure function of
//! (config, seed) and the `--jobs` byte-identity guarantee holds. Per-phase
//! deltas (goodput, match ratio) and FCT percentiles are derived after the
//! run by `scenario::series`.

use std::sync::Arc;

use sim::time::Nanos;

/// Cumulative engine counters at one instant of simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Payload bytes delivered to destination ToRs since the run started.
    pub delivered_bytes: u64,
    /// Bytes still queued at sources (and, for relaying engines, at
    /// intermediates) — the backlog the fabric has yet to move.
    pub backlog_bytes: u64,
    /// Grants issued so far (negotiator only; 0 for schedule-free engines).
    pub grants: u64,
    /// Grants accepted so far (negotiator only).
    pub accepts: u64,
    /// Control messages dropped by gray failures so far (negotiator only —
    /// the oblivious engine has no control plane to degrade).
    pub control_dropped: u64,
    /// Directed links the fault detector currently excludes that are *not*
    /// ground-truth down — false positives, typically gray-failure fallout.
    pub detector_fp_links: u64,
    /// Directed links ground-truth down that the detector has *not* (yet)
    /// excluded — false negatives, i.e. detection lag.
    pub detector_fn_links: u64,
    /// ToRs currently cut off from the largest partition group (0 when the
    /// fabric is whole).
    pub partitioned_tors: u64,
}

/// One recorded boundary: when it was (nominally) due and the counters the
/// engine reported for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// The boundary time this snapshot stands for.
    pub at: Nanos,
    /// Cumulative counters at (or just after) the boundary.
    pub counters: PhaseCounters,
}

/// Callback fired when a boundary snapshot is recorded: `(phase index,
/// boundary time)`. Observers are for *reporting* (streaming progress to a
/// live client); they receive no counters and can influence nothing, so
/// attaching one cannot perturb the simulation.
pub type PhaseObserver = Arc<dyn Fn(usize, Nanos) + Send + Sync>;

/// Collects cumulative counters at a fixed list of phase boundaries.
#[derive(Clone, Default)]
pub struct PhaseProbe {
    boundaries: Vec<Nanos>,
    snaps: Vec<PhaseSnapshot>,
    observer: Option<PhaseObserver>,
}

impl std::fmt::Debug for PhaseProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseProbe")
            .field("boundaries", &self.boundaries)
            .field("snaps", &self.snaps)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl PhaseProbe {
    /// Probe for the given phase-end times. Must be strictly increasing.
    pub fn new(boundaries: Vec<Nanos>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "phase boundaries must be strictly increasing"
        );
        PhaseProbe {
            boundaries,
            snaps: Vec::new(),
            observer: None,
        }
    }

    /// Attach an observer notified as each boundary snapshot lands.
    pub fn with_observer(mut self, observer: PhaseObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Has the next unrecorded boundary passed by `now`? Engines gate the
    /// (possibly expensive) counter computation on this cheap check.
    pub fn due(&self, now: Nanos) -> bool {
        self.boundaries
            .get(self.snaps.len())
            .is_some_and(|&b| now >= b)
    }

    /// Record `counters` for every boundary at or before `now`. An engine
    /// whose step spans several boundaries (or that idles across them)
    /// stamps them all with the same state — the fabric did nothing in
    /// between.
    pub fn record(&mut self, now: Nanos, counters: PhaseCounters) {
        while let Some(&b) = self.boundaries.get(self.snaps.len()) {
            if b > now {
                break;
            }
            self.push(PhaseSnapshot { at: b, counters });
        }
    }

    /// Stamp every remaining boundary with the engine's final state. Called
    /// once when the run ends (engines may exit early once all flows
    /// complete, leaving trailing boundaries unvisited).
    pub fn finish(&mut self, counters: PhaseCounters) {
        while let Some(&b) = self.boundaries.get(self.snaps.len()) {
            self.push(PhaseSnapshot { at: b, counters });
        }
    }

    fn push(&mut self, snap: PhaseSnapshot) {
        let index = self.snaps.len();
        let at = snap.at;
        self.snaps.push(snap);
        if let Some(observer) = &self.observer {
            observer(index, at);
        }
    }

    /// The recorded snapshots, one per boundary (complete only after
    /// [`PhaseProbe::finish`]).
    pub fn snapshots(&self) -> &[PhaseSnapshot] {
        &self.snaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(delivered: u64) -> PhaseCounters {
        PhaseCounters {
            delivered_bytes: delivered,
            ..PhaseCounters::default()
        }
    }

    #[test]
    fn records_each_boundary_once() {
        let mut p = PhaseProbe::new(vec![100, 200, 300]);
        assert!(!p.due(99));
        assert!(p.due(100));
        p.record(100, counters(10));
        assert!(!p.due(150), "boundary 100 already recorded");
        p.record(250, counters(20)); // skipped past 200
        assert_eq!(p.snapshots().len(), 2);
        assert_eq!(p.snapshots()[1].at, 200);
        assert_eq!(p.snapshots()[1].counters.delivered_bytes, 20);
        p.finish(counters(30));
        assert_eq!(p.snapshots().len(), 3);
        assert_eq!(p.snapshots()[2].at, 300);
        assert_eq!(p.snapshots()[2].counters.delivered_bytes, 30);
    }

    #[test]
    fn one_step_over_many_boundaries_stamps_all() {
        let mut p = PhaseProbe::new(vec![10, 20, 30]);
        p.record(35, counters(7));
        assert_eq!(p.snapshots().len(), 3);
        assert!(p
            .snapshots()
            .iter()
            .all(|s| s.counters.delivered_bytes == 7));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn boundaries_must_increase() {
        PhaseProbe::new(vec![10, 10]);
    }

    #[test]
    fn observer_sees_each_boundary_once_in_order() {
        use std::sync::Mutex;
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut p = PhaseProbe::new(vec![100, 200, 300])
            .with_observer(Arc::new(move |i, at| sink.lock().unwrap().push((i, at))));
        p.record(100, counters(1));
        p.record(250, counters(2)); // crosses 200 only
        p.finish(counters(3)); // stamps the trailing 300
        assert_eq!(*seen.lock().unwrap(), vec![(0, 100), (1, 200), (2, 300)]);
        // The snapshots themselves are unchanged by observation.
        assert_eq!(p.snapshots().len(), 3);
    }
}
