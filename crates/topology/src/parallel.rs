//! The parallel network topology (Figure 1(a)).
//!
//! `S` AWGRs, each with `N` ports; AWGR `p` interconnects port `p` of every
//! ToR. Any ToR can therefore reach any other through any of its `S` ports,
//! and traffic leaving egress port `p` always arrives on the destination's
//! ingress port `p`.
//!
//! ## Predefined-phase pattern
//!
//! One all-to-all round takes `⌈(N−1)/S⌉` timeslots. In slot `t`, port `p`
//! of ToR `i` transmits to `(i + offset) mod N` where
//! `offset = t·S + rotate(p) + 1`; over one round the offsets sweep
//! `1..=⌈(N−1)/S⌉·S`, touching every other ToR exactly once (offsets that
//! would alias to self are skipped). `rotate` applies the per-epoch rotation
//! of §3.6.1: shifting which *port* carries which offset means a ToR pair
//! exchanges scheduling messages over a different physical link each epoch,
//! so a single failed link cannot permanently silence a pair.

use crate::config::{NetworkConfig, TopologyKind};
use crate::traits::Topology;

/// Figure 1(a): one high-port-count AWGR per ToR port index.
#[derive(Debug, Clone)]
pub struct ParallelNet {
    net: NetworkConfig,
    slots: usize,
}

impl ParallelNet {
    /// Build over `net` (panics if the config is invalid).
    pub fn new(net: NetworkConfig) -> Self {
        net.validate();
        let slots = (net.n_tors - 1).div_ceil(net.n_ports);
        ParallelNet { net, slots }
    }

    /// The destination offset carried by `(slot, port)` under rotation
    /// `rot`, in `1..=slots·S`.
    fn offset(&self, rot: u64, slot: usize, port: usize) -> usize {
        let s = self.net.n_ports;
        let rotated = (port + (rot as usize % s)) % s;
        slot * s + rotated + 1
    }
}

impl Topology for ParallelNet {
    fn net(&self) -> &NetworkConfig {
        &self.net
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Parallel
    }

    fn predefined_slots(&self) -> usize {
        self.slots
    }

    fn predefined_dst(&self, rot: u64, slot: usize, tor: usize, port: usize) -> Option<usize> {
        debug_assert!(slot < self.slots && tor < self.net.n_tors && port < self.net.n_ports);
        let n = self.net.n_tors;
        let off = self.offset(rot, slot, port);
        if off.is_multiple_of(n) {
            return None; // would point at self (only possible when S ∤ N−1)
        }
        Some((tor + off) % n)
    }

    fn predefined_src(&self, rot: u64, slot: usize, tor: usize, port: usize) -> Option<usize> {
        let n = self.net.n_tors;
        let off = self.offset(rot, slot, port);
        if off.is_multiple_of(n) {
            return None;
        }
        Some((tor + n - off % n) % n)
    }

    fn rotation_period(&self) -> usize {
        self.net.n_ports // offset() reduces `rot` modulo S
    }

    fn port_reaches(&self, src: usize, _port: usize, dst: usize) -> bool {
        src != dst && src < self.net.n_tors && dst < self.net.n_tors
    }

    fn grant_scope(&self, dst: usize, _port: usize) -> Vec<usize> {
        (0..self.net.n_tors).filter(|&s| s != dst).collect()
    }

    fn shared_grant_ring(&self) -> bool {
        true // Figure 3(b): one GRANT ring per destination ToR
    }

    fn pair_port(&self, _src: usize, _dst: usize) -> Option<usize> {
        None // any port reaches any destination
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> ParallelNet {
        ParallelNet::new(NetworkConfig::paper_default())
    }

    #[test]
    fn paper_scale_has_16_predefined_slots() {
        // ⌈127/8⌉ = 16, matching §4.1's 16 × 60 ns = 0.96 µs phase.
        assert_eq!(paper().predefined_slots(), 16);
    }

    #[test]
    fn one_round_is_all_to_all_exactly_once() {
        let t = paper();
        for rot in [0u64, 1, 5] {
            for tor in [0usize, 17, 127] {
                let mut seen = vec![0u32; t.net().n_tors];
                for slot in 0..t.predefined_slots() {
                    for port in 0..t.net().n_ports {
                        if let Some(dst) = t.predefined_dst(rot, slot, tor, port) {
                            assert_ne!(dst, tor, "never self");
                            seen[dst] += 1;
                        }
                    }
                }
                for (dst, &count) in seen.iter().enumerate() {
                    if dst == tor {
                        assert_eq!(count, 0);
                    } else {
                        assert_eq!(count, 1, "tor {tor} should reach {dst} exactly once");
                    }
                }
            }
        }
    }

    #[test]
    fn src_is_inverse_of_dst() {
        let t = paper();
        for rot in [0u64, 3] {
            for slot in 0..t.predefined_slots() {
                for port in 0..t.net().n_ports {
                    for tor in [0usize, 50, 127] {
                        if let Some(dst) = t.predefined_dst(rot, slot, tor, port) {
                            assert_eq!(t.predefined_src(rot, slot, dst, port), Some(tor));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ingress_is_collision_free_per_slot() {
        // In any slot, each (dst, ingress port) pair hears at most one source.
        let t = paper();
        let n = t.net().n_tors;
        let s = t.net().n_ports;
        for slot in 0..t.predefined_slots() {
            let mut hit = vec![false; n * s];
            for tor in 0..n {
                for port in 0..s {
                    if let Some(dst) = t.predefined_dst(2, slot, tor, port) {
                        let key = dst * s + port;
                        assert!(!hit[key], "ingress collision at dst {dst} port {port}");
                        hit[key] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn rotation_moves_pairs_across_ports() {
        let t = paper();
        // Under rotation, the port over which ToR 0 reaches ToR 1 changes.
        let port_for_dst = |rot: u64| -> usize {
            for slot in 0..t.predefined_slots() {
                for port in 0..t.net().n_ports {
                    if t.predefined_dst(rot, slot, 0, port) == Some(1) {
                        return port;
                    }
                }
            }
            panic!("pair (0,1) not connected");
        };
        let ports: Vec<usize> = (0..8).map(port_for_dst).collect();
        let distinct: std::collections::BTreeSet<_> = ports.iter().collect();
        assert_eq!(distinct.len(), 8, "8 rotations should use 8 distinct ports");
    }

    #[test]
    fn any_port_reaches_any_other_tor() {
        let t = paper();
        assert!(t.port_reaches(0, 0, 127));
        assert!(t.port_reaches(0, 7, 1));
        assert!(!t.port_reaches(5, 3, 5), "never self");
        assert_eq!(t.pair_port(0, 1), None);
    }

    #[test]
    fn grant_scope_is_everyone_else() {
        let t = paper();
        let scope = t.grant_scope(10, 0);
        assert_eq!(scope.len(), 127);
        assert!(!scope.contains(&10));
    }

    #[test]
    fn non_divisible_sizes_skip_self_offsets() {
        // 6 ToRs × 3 ports: ⌈5/3⌉ = 2 slots, offsets 1..=6; offset 6 ≡ 0 (mod 6)
        // would be self and must yield None.
        let net = NetworkConfig {
            n_tors: 6,
            n_ports: 3,
            ..NetworkConfig::small_for_tests()
        };
        let t = ParallelNet::new(net);
        let mut nones = 0;
        for slot in 0..t.predefined_slots() {
            for port in 0..3 {
                if t.predefined_dst(0, slot, 0, port).is_none() {
                    nones += 1;
                }
            }
        }
        assert_eq!(nones, 1);
    }
}
