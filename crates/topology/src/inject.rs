//! Adversarial fault injection: a composable [`FaultModel`] that
//! generalizes [`FailureSchedule`](crate::FailureSchedule)'s clean
//! fail/repair timeline to the fault families the related simulators
//! treat as first-class (ROADMAP item 3):
//!
//! * **Flapping links** — duty-cycled up/down oscillation on a set of
//!   directed links, either listed explicitly or sampled once (seeded)
//!   when the flap activates.
//! * **Partitions** — the ToR set splits into groups and every
//!   cross-group pair loses connectivity until a `Heal`; the group
//!   state lives inside [`LinkFailures`] so both engines' existing
//!   `link_up` checks honor it.
//! * **Gray failures** — links stay up for data but negotiation control
//!   traffic (REQUEST/GRANT and the dummy/feedback messages the fault
//!   detector relies on) is dropped probabilistically. The drop decision
//!   is *position-keyed*: a seeded hash of `(epoch, src, dst)`, so any
//!   shard layout or visit order produces the identical drop set and
//!   `--workers` can never move a drop.
//! * **Greedy ToRs** — Byzantine-lite granters that ignore requests and
//!   the debit discipline (the grant logic itself lives in
//!   `negotiator::variants`; this model only tracks who misbehaves).
//!
//! Determinism contract: every random choice is drawn from a seed
//! carried in the action itself (scenario-compiled, hashed into the
//! content address) — never from ambient randomness (the D004 lint
//! forbids it) and never from engine state that varies with `--jobs`
//! or `--workers`. All mutation happens in [`FaultModel::epoch_update`],
//! which the engines call from their sequential driver loops only.

use crate::failures::{LinkDir, LinkFailures};
use sim::time::Nanos;
use sim::Xoshiro256;

/// Which directed links a flap drives.
#[derive(Debug, Clone, PartialEq)]
pub enum FlapTargets {
    /// An explicit list of `(tor, port, dir)` links.
    Links(Vec<(usize, usize, LinkDir)>),
    /// A uniform sample of `ratio` of all directed links, drawn once
    /// from `seed` when the flap activates.
    Random {
        /// Fraction of directed links to flap.
        ratio: f64,
        /// Sampling seed.
        seed: u64,
    },
}

/// How a partition splits the ToR set.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionSpec {
    /// Explicit group id per ToR (`assign[tor]`).
    Explicit(Vec<u32>),
    /// A seeded balanced split into `groups` groups.
    Random {
        /// Number of groups (≥ 2).
        groups: u32,
        /// Assignment seed.
        seed: u64,
    },
}

/// One scheduled change to the fault model.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Start a duty-cycled oscillation: `up` nanoseconds connected, then
    /// `down` nanoseconds dark, repeating from the activation instant.
    FlapStart {
        /// Links to oscillate.
        targets: FlapTargets,
        /// Connected span of each cycle.
        up: Nanos,
        /// Dark span of each cycle.
        down: Nanos,
    },
    /// Stop every flap; links a flap currently holds down come back up.
    FlapStop,
    /// Partition the ToR set; cross-group pairs lose connectivity.
    Partition(PartitionSpec),
    /// Heal the partition.
    Heal,
    /// Start a gray failure: control messages from the scoped source
    /// ToRs are dropped with probability `drop_prob`; data is untouched.
    GrayStart {
        /// Per-(epoch, src, dst) drop probability in `(0, 1]`.
        drop_prob: f64,
        /// Decision seed.
        seed: u64,
        /// Affected source ToRs (`None` = every ToR).
        tors: Option<Vec<usize>>,
    },
    /// End the gray failure.
    GrayStop,
    /// Mark ToRs as greedy granters (Byzantine-lite).
    GreedyStart {
        /// Misbehaving ToRs.
        tors: Vec<usize>,
    },
    /// Every ToR returns to honest granting.
    GreedyStop,
}

/// One active flap group.
#[derive(Debug, Clone)]
struct Flap {
    links: Vec<(usize, usize, LinkDir)>,
    up: Nanos,
    down: Nanos,
    /// Activation instant — phase zero of the duty cycle.
    start: Nanos,
    /// Whether the flap currently holds its links down.
    down_now: bool,
}

/// Active gray-failure state.
#[derive(Debug, Clone)]
struct Gray {
    /// `drop_prob` mapped onto u64 space: drop iff `mix(...) < threshold`.
    threshold: u64,
    seed: u64,
    /// Per-source-ToR scope mask (`None` = every source).
    scope: Option<Vec<bool>>,
}

/// Composable per-epoch fault model: a timed schedule of
/// [`FaultAction`]s plus the state of every currently active fault.
/// Engines call [`Self::epoch_update`] once per epoch (negotiator) or
/// per slot (oblivious) from their sequential driver loops, then query
/// [`Self::gray_drops`]/[`Self::greedy`] from the scheduling steps.
#[derive(Debug, Clone, Default)]
pub struct FaultModel {
    schedule: Vec<(Nanos, FaultAction)>,
    cursor: usize,
    flaps: Vec<Flap>,
    gray: Option<Gray>,
    /// Per-ToR greedy flags, grown on first `GreedyStart`.
    greedy: Vec<bool>,
    greedy_count: usize,
}

impl FaultModel {
    /// An empty model: nothing scheduled, nothing active.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `action` at absolute time `at`. Inserts keep the
    /// schedule sorted; equal timestamps preserve scheduling order (so a
    /// phase's stop actions, scheduled before the next phase's starts,
    /// apply first).
    pub fn schedule(&mut self, at: Nanos, action: FaultAction) {
        let pos = self.cursor + self.schedule[self.cursor..].partition_point(|&(t, _)| t <= at);
        self.schedule.insert(pos, (at, action));
    }

    /// True once every scheduled action has been applied. Active faults
    /// (an unhealed partition, a running flap) do not keep a drained
    /// model "busy": with no pending actions and no pending flows the
    /// engines may exit early, exactly as with `FailureSchedule`.
    pub fn is_drained(&self) -> bool {
        self.cursor >= self.schedule.len()
    }

    /// How many scheduled fault actions have been applied so far.
    /// Observers (the flight recorder) diff this across `epoch_update`
    /// calls to record injected-fault activations.
    pub fn applied(&self) -> usize {
        self.cursor
    }

    /// Does any fault exist — scheduled or active? Engines that never
    /// received an injection skip all per-epoch fault bookkeeping.
    pub fn is_idle(&self) -> bool {
        self.schedule.is_empty()
            && self.flaps.is_empty()
            && self.gray.is_none()
            && self.greedy_count == 0
    }

    /// Apply every action due by `now`, then advance flap duty cycles.
    /// Must be called from the sequential driver loop only — all
    /// mutation happens here, so shard workers see a frozen model.
    pub fn epoch_update(&mut self, now: Nanos, failures: &mut LinkFailures) {
        while let Some(&(at, ref action)) = self.schedule.get(self.cursor) {
            if at > now {
                break;
            }
            let action = action.clone();
            self.cursor += 1;
            // Anchor on the *scheduled* instant, not the observation
            // instant: a flap's duty cycle starts at its `at` even when
            // the engine's epoch boundary lands a little later.
            self.apply(action, at, failures);
        }
        for flap in &mut self.flaps {
            let period = flap.up + flap.down;
            let phase = (now - flap.start) % period;
            let want_down = phase >= flap.up;
            if want_down != flap.down_now {
                flap.down_now = want_down;
                for &(tor, port, dir) in &flap.links {
                    if want_down {
                        failures.fail(tor, port, dir);
                    } else {
                        failures.repair(tor, port, dir);
                    }
                }
            }
        }
    }

    fn apply(&mut self, action: FaultAction, at: Nanos, failures: &mut LinkFailures) {
        match action {
            FaultAction::FlapStart { targets, up, down } => {
                let links = match targets {
                    FlapTargets::Links(links) => links,
                    FlapTargets::Random { ratio, seed } => {
                        failures.sample_random(ratio, &mut Xoshiro256::new(seed))
                    }
                };
                self.flaps.push(Flap {
                    links,
                    up: up.max(1),
                    down: down.max(1),
                    start: at,
                    down_now: false,
                });
            }
            FaultAction::FlapStop => {
                for flap in self.flaps.drain(..) {
                    if flap.down_now {
                        failures.repair_all(&flap.links);
                    }
                }
            }
            FaultAction::Partition(spec) => {
                let assign = match spec {
                    PartitionSpec::Explicit(assign) => assign,
                    PartitionSpec::Random { groups, seed } => {
                        partition_random(failures.n_tors(), groups, seed)
                    }
                };
                failures.set_partition(assign);
            }
            FaultAction::Heal => failures.heal_partition(),
            FaultAction::GrayStart {
                drop_prob,
                seed,
                tors,
            } => {
                let scope = tors.map(|tors| {
                    let mut mask = vec![false; failures.n_tors()];
                    for tor in tors {
                        mask[tor] = true;
                    }
                    mask
                });
                self.gray = Some(Gray {
                    threshold: (drop_prob * u64::MAX as f64) as u64,
                    seed,
                    scope,
                });
            }
            FaultAction::GrayStop => self.gray = None,
            FaultAction::GreedyStart { tors } => {
                if self.greedy.len() < failures.n_tors() {
                    self.greedy.resize(failures.n_tors(), false);
                }
                for tor in tors {
                    if !self.greedy[tor] {
                        self.greedy[tor] = true;
                        self.greedy_count += 1;
                    }
                }
            }
            FaultAction::GreedyStop => {
                self.greedy.fill(false);
                self.greedy_count = 0;
            }
        }
    }

    /// Is a gray failure active? While true, the negotiator must take
    /// its observing (non-fast) predefined path so drops feed the fault
    /// detector.
    pub fn gray_active(&self) -> bool {
        self.gray.is_some()
    }

    /// Should the control traffic of connection `src → dst` be dropped
    /// this epoch? Position-keyed (seed, epoch, src, dst): the decision
    /// is a pure function of where the connection sits in simulated
    /// time, never of visit order, so any `--workers` split computes the
    /// identical drop set.
    pub fn gray_drops(&self, epoch: u64, src: usize, dst: usize) -> bool {
        let Some(gray) = &self.gray else {
            return false;
        };
        if let Some(scope) = &gray.scope {
            if !scope[src] {
                return false;
            }
        }
        let key = gray.seed
            ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (src as u64).wrapping_mul(0xA24B_AED4_963E_E407)
            ^ (dst as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25);
        Xoshiro256::new(key).next_u64() < gray.threshold
    }

    /// Is `tor` currently granting greedily?
    pub fn greedy(&self, tor: usize) -> bool {
        self.greedy.get(tor).copied().unwrap_or(false)
    }

    /// Any greedy ToR active?
    pub fn any_greedy(&self) -> bool {
        self.greedy_count > 0
    }
}

/// Seeded balanced assignment of `n` ToRs into `groups` groups: shuffle
/// the ToR ids, deal them round-robin. Every group is non-empty whenever
/// `groups <= n`.
fn partition_random(n: usize, groups: u32, seed: u64) -> Vec<u32> {
    let mut tors: Vec<usize> = (0..n).collect();
    Xoshiro256::new(seed).shuffle(&mut tors);
    let mut assign = vec![0u32; n];
    for (i, &tor) in tors.iter().enumerate() {
        assign[tor] = (i % groups.max(1) as usize) as u32;
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with(at: Nanos, action: FaultAction) -> FaultModel {
        let mut m = FaultModel::new();
        m.schedule(at, action);
        m
    }

    #[test]
    fn flap_duty_cycle_honors_its_period_exactly() {
        // One directed link, 3 ns up / 2 ns down, activated at t=10.
        // Checking every nanosecond tick: the link must be down exactly
        // during [10+3, 10+5), [10+8, 10+10), ... — 2 of every 5 ticks.
        let mut f = LinkFailures::new(4, 2);
        let mut m = model_with(
            10,
            FaultAction::FlapStart {
                targets: FlapTargets::Links(vec![(0, 0, LinkDir::Egress)]),
                up: 3,
                down: 2,
            },
        );
        let mut down_ticks = 0;
        for now in 0..10 + 5 * 4 {
            m.epoch_update(now, &mut f);
            let down = f.egress_down(0, 0);
            if now < 10 {
                assert!(!down, "flap inactive before its start at t={now}");
            } else {
                let phase = (now - 10) % 5;
                assert_eq!(down, phase >= 3, "wrong duty state at t={now}");
            }
            down_ticks += down as usize;
        }
        assert_eq!(down_ticks, 2 * 4, "exactly `down` ticks per period");
    }

    #[test]
    fn flap_stop_repairs_only_what_the_flap_holds_down() {
        let mut f = LinkFailures::new(4, 2);
        f.fail(1, 1, LinkDir::Ingress); // unrelated hard failure
        let mut m = model_with(
            0,
            FaultAction::FlapStart {
                targets: FlapTargets::Links(vec![(0, 0, LinkDir::Egress)]),
                up: 1,
                down: 1,
            },
        );
        m.epoch_update(1, &mut f); // phase 1 -> down
        assert!(f.egress_down(0, 0));
        m.schedule(2, FaultAction::FlapStop);
        m.epoch_update(2, &mut f);
        assert!(!f.egress_down(0, 0), "flapped link comes back up");
        assert!(f.ingress_down(1, 1), "hard failure untouched");
    }

    #[test]
    fn partition_then_heal_returns_link_failures_to_healthy() {
        // Property over several explicit and random splits: after
        // Partition + Heal, the ground truth is exactly healthy again.
        let cases: Vec<PartitionSpec> = vec![
            PartitionSpec::Explicit(vec![0, 1, 0, 1, 0, 1, 0, 1]),
            PartitionSpec::Explicit(vec![2, 2, 1, 1, 0, 0, 0, 0]),
            PartitionSpec::Random { groups: 2, seed: 7 },
            PartitionSpec::Random { groups: 3, seed: 8 },
        ];
        for spec in cases {
            let mut f = LinkFailures::new(8, 2);
            let mut m = model_with(5, FaultAction::Partition(spec.clone()));
            m.schedule(9, FaultAction::Heal);
            m.epoch_update(5, &mut f);
            assert!(!f.healthy(), "{spec:?} must partition");
            assert!(f.partitioned_tors() > 0);
            m.epoch_update(9, &mut f);
            assert!(f.healthy(), "{spec:?} must heal clean");
            assert_eq!(f.partitioned_tors(), 0);
            assert!(m.is_drained());
        }
    }

    #[test]
    fn random_partition_is_balanced_and_deterministic() {
        let a = partition_random(10, 3, 99);
        let b = partition_random(10, 3, 99);
        assert_eq!(a, b);
        let mut counts = [0usize; 3];
        for &g in &a {
            counts[g as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| c >= 3), "balanced split: {counts:?}");
        assert_ne!(partition_random(10, 3, 100), a, "seed moves the split");
    }

    #[test]
    fn gray_drop_decision_is_positional_and_seeded() {
        let mut f = LinkFailures::new(8, 2);
        let mut m = model_with(
            0,
            FaultAction::GrayStart {
                drop_prob: 0.5,
                seed: 21,
                tors: None,
            },
        );
        m.epoch_update(0, &mut f);
        assert!(m.gray_active());
        assert!(f.healthy(), "gray failures never touch link state");
        // Pure positional function: same (epoch, src, dst) -> same answer.
        let mut drops = 0;
        for epoch in 0..50 {
            for src in 0..8 {
                for dst in 0..8 {
                    let d = m.gray_drops(epoch, src, dst);
                    assert_eq!(d, m.gray_drops(epoch, src, dst));
                    drops += d as usize;
                }
            }
        }
        let total = 50 * 8 * 8;
        assert!(
            (total / 3..2 * total / 3).contains(&drops),
            "p=0.5 should drop roughly half: {drops}/{total}"
        );
        m.schedule(1, FaultAction::GrayStop);
        m.epoch_update(1, &mut f);
        assert!(!m.gray_active());
        assert!(!m.gray_drops(0, 0, 1));
    }

    #[test]
    fn gray_scope_limits_sources() {
        let mut f = LinkFailures::new(8, 2);
        let mut m = model_with(
            0,
            FaultAction::GrayStart {
                drop_prob: 1.0,
                seed: 3,
                tors: Some(vec![2]),
            },
        );
        m.epoch_update(0, &mut f);
        for dst in 0..8 {
            if dst != 2 {
                assert!(m.gray_drops(7, 2, dst), "scoped source drops at p=1");
            }
            assert!(!m.gray_drops(7, 3, dst), "out-of-scope source never drops");
        }
    }

    #[test]
    fn greedy_flags_toggle_per_tor() {
        let mut f = LinkFailures::new(8, 2);
        let mut m = model_with(0, FaultAction::GreedyStart { tors: vec![1, 5] });
        m.schedule(10, FaultAction::GreedyStop);
        m.epoch_update(0, &mut f);
        assert!(m.any_greedy());
        assert!(m.greedy(1) && m.greedy(5));
        assert!(!m.greedy(0) && !m.greedy(7));
        m.epoch_update(10, &mut f);
        assert!(!m.any_greedy());
        assert!(!m.greedy(1));
    }

    #[test]
    fn equal_timestamps_preserve_scheduling_order() {
        // A stop scheduled before a start at the same instant applies
        // first — the phase-boundary compile pattern relies on it.
        let mut f = LinkFailures::new(4, 2);
        let mut m = FaultModel::new();
        m.schedule(5, FaultAction::GreedyStart { tors: vec![0] });
        m.schedule(7, FaultAction::GreedyStop);
        m.schedule(7, FaultAction::GreedyStart { tors: vec![2] });
        m.epoch_update(7, &mut f);
        assert!(m.greedy(2) && !m.greedy(0));
    }
}
