//! The [`Topology`] abstraction the schedulers are written against.
//!
//! ToRs and ports are plain `usize` indices (`0..n_tors`, `0..n_ports`);
//! the schedulers index dense arrays with them constantly and the two id
//! spaces never mix in practice, so newtypes would add friction without
//! catching a real bug class (cf. smoltcp's "simplicity over type tricks").

use crate::config::{NetworkConfig, TopologyKind};
use crate::parallel::ParallelNet;
use crate::thinclos::ThinClos;

/// Connectivity model of a flat AWGR fabric.
///
/// The physics both topologies share: tuning the laser on egress port `p`
/// of a ToR selects a destination reachable through the AWGR that port is
/// spliced into, and the light arrives on the *same port index* `p` at the
/// destination (each ToR contributes exactly one port to each AWGR it
/// touches). Hence connections are identified by `(src, port, dst)` and the
/// ingress port is implied.
pub trait Topology {
    /// Physical parameters.
    fn net(&self) -> &NetworkConfig;

    /// Which of the two paper topologies this is.
    fn kind(&self) -> TopologyKind;

    /// Timeslots needed for one all-to-all round in the predefined phase
    /// (paper §3.3.1: `⌈(N−1)/S⌉` for parallel, `W` for thin-clos).
    fn predefined_slots(&self) -> usize;

    /// Destination that `(tor, port)` transmits to in predefined slot
    /// `slot`, under round-robin rule rotation `rot` (§3.6.1 rotates the
    /// rule every epoch on the parallel network so a ToR pair exchanges
    /// scheduling messages over different physical links across epochs).
    /// `None` when the pattern would point the port at `tor` itself.
    fn predefined_dst(&self, rot: u64, slot: usize, tor: usize, port: usize) -> Option<usize>;

    /// Source whose predefined-phase transmission lands on ingress
    /// `(tor, port)` in `slot` under rotation `rot`; the exact inverse of
    /// [`Topology::predefined_dst`].
    fn predefined_src(&self, rot: u64, slot: usize, tor: usize, port: usize) -> Option<usize>;

    /// Number of distinct rotations before [`Topology::predefined_dst`]
    /// repeats: the parallel network cycles its port↔offset mapping every
    /// `S` epochs, thin-clos has a single static schedule. The predefined
    /// schedule cache ([`crate::PredefinedCache`]) sizes itself by this.
    fn rotation_period(&self) -> usize;

    /// Can `src` reach `dst` by tuning egress port `port` (scheduled phase)?
    fn port_reaches(&self, src: usize, port: usize, dst: usize) -> bool;

    /// Sources that can feed ingress port `port` of `dst` — the scope of
    /// that port's GRANT ring. On the parallel network this is every other
    /// ToR; on thin-clos it is the 16-ToR source group wired to that port.
    fn grant_scope(&self, dst: usize, port: usize) -> Vec<usize>;

    /// Whether a destination shares one GRANT ring across all its ports
    /// (parallel network, Figure 3(b)) or keeps one ring per port
    /// (thin-clos, Figure 3(c)).
    fn shared_grant_ring(&self) -> bool;

    /// The single egress port connecting `src` to `dst`, when the topology
    /// constrains the pair to one port (thin-clos); `None` on topologies
    /// where any port works.
    fn pair_port(&self, src: usize, dst: usize) -> Option<usize>;
}

/// Enum dispatch over the two concrete topologies, so config-driven code
/// (the experiment harness) can hold either without generics or boxing.
#[derive(Debug, Clone)]
pub enum AnyTopology {
    /// Figure 1(a).
    Parallel(ParallelNet),
    /// Figure 1(b).
    ThinClos(ThinClos),
}

impl AnyTopology {
    /// Build the requested topology over `net`.
    pub fn build(kind: TopologyKind, net: NetworkConfig) -> Self {
        match kind {
            TopologyKind::Parallel => AnyTopology::Parallel(ParallelNet::new(net)),
            TopologyKind::ThinClos => AnyTopology::ThinClos(ThinClos::new(net)),
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $t:ident => $e:expr) => {
        match $self {
            AnyTopology::Parallel($t) => $e,
            AnyTopology::ThinClos($t) => $e,
        }
    };
}

impl Topology for AnyTopology {
    fn net(&self) -> &NetworkConfig {
        dispatch!(self, t => t.net())
    }
    fn kind(&self) -> TopologyKind {
        dispatch!(self, t => t.kind())
    }
    fn predefined_slots(&self) -> usize {
        dispatch!(self, t => t.predefined_slots())
    }
    fn predefined_dst(&self, rot: u64, slot: usize, tor: usize, port: usize) -> Option<usize> {
        dispatch!(self, t => t.predefined_dst(rot, slot, tor, port))
    }
    fn predefined_src(&self, rot: u64, slot: usize, tor: usize, port: usize) -> Option<usize> {
        dispatch!(self, t => t.predefined_src(rot, slot, tor, port))
    }
    fn rotation_period(&self) -> usize {
        dispatch!(self, t => t.rotation_period())
    }
    fn port_reaches(&self, src: usize, port: usize, dst: usize) -> bool {
        dispatch!(self, t => t.port_reaches(src, port, dst))
    }
    fn grant_scope(&self, dst: usize, port: usize) -> Vec<usize> {
        dispatch!(self, t => t.grant_scope(dst, port))
    }
    fn shared_grant_ring(&self) -> bool {
        dispatch!(self, t => t.shared_grant_ring())
    }
    fn pair_port(&self, src: usize, dst: usize) -> Option<usize> {
        dispatch!(self, t => t.pair_port(src, dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_topology_dispatches_to_both_kinds() {
        let net = NetworkConfig::small_for_tests();
        let par = AnyTopology::build(TopologyKind::Parallel, net.clone());
        let thin = AnyTopology::build(TopologyKind::ThinClos, net);
        assert_eq!(par.kind(), TopologyKind::Parallel);
        assert_eq!(thin.kind(), TopologyKind::ThinClos);
        assert!(par.shared_grant_ring());
        assert!(!thin.shared_grant_ring());
    }
}
