//! Cached predefined-phase connection tables.
//!
//! The predefined round-robin pattern is a pure function of
//! `(rotation, slot, tor, port)`, and both engines evaluate it for every
//! ToR × port in every timeslot of every epoch — at paper scale that is
//! ~16 k virtual-dispatched arithmetic calls per epoch, none of which ever
//! change. The rotation argument cycles too ([`Topology::rotation_period`]):
//! the parallel network revisits the same port↔offset mapping every `S`
//! epochs and thin-clos ignores rotation entirely. So the whole schedule
//! fits in a small table built once: per `(rotation, slot)` a dense,
//! `(src, port)`-ordered list of the connections that exist in that slot.
//! Iterating the list visits exactly the pairs `predefined_dst` would
//! return `Some` for, in exactly the same order — which is what lets the
//! epoch engines swap the triple loop for a flat scan without changing a
//! single delivered byte.

use crate::traits::Topology;

/// One directed predefined-phase connection: `src` transmits on egress
/// `port` and the light lands on the same ingress port index of `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredefinedConn {
    /// Transmitting ToR.
    pub src: u32,
    /// Egress port at `src` (= ingress port at `dst`; AWGR wiring).
    pub port: u32,
    /// Receiving ToR.
    pub dst: u32,
}

/// The fully materialized predefined schedule of one topology.
#[derive(Debug, Clone)]
pub struct PredefinedCache {
    rot_period: usize,
    slots: usize,
    /// Connection lists indexed by `(rot % rot_period) * slots + slot`,
    /// each in ascending `(src, port)` order.
    conns: Vec<Vec<PredefinedConn>>,
}

impl Default for PredefinedCache {
    /// An empty cache (no rotations, no slots) — a placeholder the epoch
    /// engines `mem::take` against while iterating the real table.
    fn default() -> Self {
        PredefinedCache {
            rot_period: 1,
            slots: 0,
            conns: Vec::new(),
        }
    }
}

impl PredefinedCache {
    /// Materialize `topo`'s schedule for every distinct rotation.
    pub fn build<T: Topology + ?Sized>(topo: &T) -> Self {
        let n = topo.net().n_tors;
        let s = topo.net().n_ports;
        let slots = topo.predefined_slots();
        let rot_period = topo.rotation_period();
        let mut conns = Vec::with_capacity(rot_period * slots);
        for rot in 0..rot_period {
            for slot in 0..slots {
                let mut list = Vec::with_capacity(n * s);
                for src in 0..n {
                    for port in 0..s {
                        if let Some(dst) = topo.predefined_dst(rot as u64, slot, src, port) {
                            list.push(PredefinedConn {
                                src: src as u32,
                                port: port as u32,
                                dst: dst as u32,
                            });
                        }
                    }
                }
                conns.push(list);
            }
        }
        PredefinedCache {
            rot_period,
            slots,
            conns,
        }
    }

    /// Connections of predefined `slot` under rotation `rot`, in the same
    /// `(src, port)` order the direct triple loop visits.
    #[inline]
    pub fn slot_conns(&self, rot: u64, slot: usize) -> &[PredefinedConn] {
        let r = (rot % self.rot_period as u64) as usize;
        &self.conns[r * self.slots + slot]
    }

    /// The sub-slice of [`Self::slot_conns`] whose sources fall in
    /// `[src_start, src_end)` — the shard-local view of one slot used by
    /// the intra-run parallel epoch engine (`sim::shard`). Because the
    /// slot list is in ascending `(src, port)` order, the view is a
    /// contiguous range found by binary search, and concatenating the
    /// views of a contiguous shard partition in shard order reproduces
    /// the full slot list exactly — which is what keeps the sharded
    /// predefined phase byte-identical to the sequential one.
    #[inline]
    pub fn slot_conns_for_srcs(
        &self,
        rot: u64,
        slot: usize,
        src_start: u32,
        src_end: u32,
    ) -> &[PredefinedConn] {
        let conns = self.slot_conns(rot, slot);
        let lo = conns.partition_point(|c| c.src < src_start);
        let hi = conns.partition_point(|c| c.src < src_end);
        &conns[lo..hi]
    }

    /// Number of distinct rotations cached.
    pub fn rotation_period(&self) -> usize {
        self.rot_period
    }

    /// Timeslots per all-to-all round.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, TopologyKind};
    use crate::traits::AnyTopology;

    #[test]
    fn cache_matches_direct_evaluation_for_all_rotations() {
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let topo = AnyTopology::build(kind, NetworkConfig::paper_default());
            let cache = PredefinedCache::build(&topo);
            let (n, s) = (topo.net().n_tors, topo.net().n_ports);
            // Rotations beyond the period must alias back into the table.
            for rot in [0u64, 1, 7, 8, 13, 1_000_003] {
                for slot in 0..topo.predefined_slots() {
                    let mut direct = Vec::new();
                    for src in 0..n {
                        for port in 0..s {
                            if let Some(dst) = topo.predefined_dst(rot, slot, src, port) {
                                direct.push(PredefinedConn {
                                    src: src as u32,
                                    port: port as u32,
                                    dst: dst as u32,
                                });
                            }
                        }
                    }
                    assert_eq!(
                        cache.slot_conns(rot, slot),
                        direct.as_slice(),
                        "{kind:?} rot {rot} slot {slot}"
                    );
                }
            }
        }
    }

    #[test]
    fn src_range_views_concatenate_to_the_full_slot_list() {
        let topo = AnyTopology::build(TopologyKind::Parallel, NetworkConfig::paper_default());
        let cache = PredefinedCache::build(&topo);
        let n = topo.net().n_tors as u32;
        for rot in [0u64, 3] {
            for slot in 0..topo.predefined_slots() {
                let full = cache.slot_conns(rot, slot);
                // Any contiguous partition of the src space must tile the
                // slot list exactly, in order.
                for bounds in [vec![0, n], vec![0, 1, n / 2, n - 1, n]] {
                    let mut tiled = Vec::new();
                    for w in bounds.windows(2) {
                        tiled.extend_from_slice(cache.slot_conns_for_srcs(rot, slot, w[0], w[1]));
                    }
                    assert_eq!(tiled.as_slice(), full, "rot {rot} slot {slot}");
                }
            }
        }
    }

    #[test]
    fn rotation_periods_match_topology_semantics() {
        let par = AnyTopology::build(TopologyKind::Parallel, NetworkConfig::paper_default());
        let thin = AnyTopology::build(TopologyKind::ThinClos, NetworkConfig::paper_default());
        assert_eq!(PredefinedCache::build(&par).rotation_period(), 8);
        assert_eq!(PredefinedCache::build(&thin).rotation_period(), 1);
    }
}
