//! Per-direction optical link failures (§3.6.1, §4.3).
//!
//! Each `(ToR, port)` has two fibers: an *egress* link (ToR laser → AWGR)
//! and an *ingress* link (AWGR → ToR receiver). The paper's fault-tolerance
//! mechanism detects the two directions separately ("to prevent overreaction
//! and simplify maintenance"), so failures are tracked per direction here.
//! This struct is ground truth — what is actually broken; the scheduler's
//! *detected* view lives in `negotiator::fault` and converges to this one
//! through dummy-message feedback. [`FailureSchedule`] holds a timed list
//! of [`FailureAction`]s (the §4.3 experiments and scenario timelines) and
//! applies them to a [`LinkFailures`] as simulated time passes.

use sim::time::Nanos;
use sim::Xoshiro256;

/// Direction of a fiber relative to its ToR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkDir {
    /// ToR transmit side (laser → AWGR).
    Egress,
    /// ToR receive side (AWGR → ToR).
    Ingress,
}

/// Ground-truth failure state of every directed link in the fabric.
#[derive(Debug, Clone)]
pub struct LinkFailures {
    n_ports: usize,
    egress_down: Vec<bool>,
    ingress_down: Vec<bool>,
    /// Currently failed directed links, maintained by `fail`/`repair` so
    /// the engines' per-slot/per-epoch "anything broken?" check is O(1).
    down_count: usize,
    /// Active partition: group id per ToR; empty when the fabric is whole.
    /// Cross-group pairs lose connectivity in both directions while the
    /// per-fiber state above is untouched, so a partition composes with
    /// (and heals independently of) individual link failures.
    partition: Vec<u32>,
}

impl LinkFailures {
    /// All links healthy.
    pub fn new(n_tors: usize, n_ports: usize) -> Self {
        LinkFailures {
            n_ports,
            egress_down: vec![false; n_tors * n_ports],
            ingress_down: vec![false; n_tors * n_ports],
            down_count: 0,
            partition: Vec::new(),
        }
    }

    fn idx(&self, tor: usize, port: usize) -> usize {
        tor * self.n_ports + port
    }

    /// Number of ToRs in the fabric.
    pub fn n_tors(&self) -> usize {
        self.egress_down.len() / self.n_ports
    }

    /// Ports per ToR.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Mark one directed link failed (idempotent).
    pub fn fail(&mut self, tor: usize, port: usize, dir: LinkDir) {
        let i = self.idx(tor, port);
        let slot = match dir {
            LinkDir::Egress => &mut self.egress_down[i],
            LinkDir::Ingress => &mut self.ingress_down[i],
        };
        if !*slot {
            *slot = true;
            self.down_count += 1;
        }
    }

    /// Repair one directed link (idempotent).
    pub fn repair(&mut self, tor: usize, port: usize, dir: LinkDir) {
        let i = self.idx(tor, port);
        let slot = match dir {
            LinkDir::Egress => &mut self.egress_down[i],
            LinkDir::Ingress => &mut self.ingress_down[i],
        };
        if *slot {
            *slot = false;
            self.down_count -= 1;
        }
    }

    /// Is the egress fiber of `(tor, port)` down?
    pub fn egress_down(&self, tor: usize, port: usize) -> bool {
        self.egress_down[self.idx(tor, port)]
    }

    /// Is the ingress fiber of `(tor, port)` down?
    pub fn ingress_down(&self, tor: usize, port: usize) -> bool {
        self.ingress_down[self.idx(tor, port)]
    }

    /// Can a transmission from `(src, port)` reach `(dst, port)`?
    /// (Egress fiber of the source and ingress fiber of the destination
    /// must both be up, and the pair must share a partition group; the
    /// AWGR itself is passive and never fails here.)
    pub fn link_up(&self, src: usize, dst: usize, port: usize) -> bool {
        self.pair_open(src, dst) && !self.egress_down(src, port) && !self.ingress_down(dst, port)
    }

    /// Are `src` and `dst` on the same side of the (possibly absent)
    /// partition?
    #[inline]
    pub fn pair_open(&self, src: usize, dst: usize) -> bool {
        self.partition.is_empty() || self.partition[src] == self.partition[dst]
    }

    /// Partition the ToR set: `assign[tor]` gives each ToR's group id and
    /// every cross-group pair loses connectivity until [`Self::heal_partition`].
    pub fn set_partition(&mut self, assign: Vec<u32>) {
        debug_assert_eq!(
            assign.len(),
            self.n_tors(),
            "partition assignment must cover every ToR"
        );
        self.partition = assign;
    }

    /// Remove the partition; cross-group pairs reconnect (per-fiber
    /// failures, if any, remain).
    pub fn heal_partition(&mut self) {
        self.partition.clear();
    }

    /// Is a partition active?
    pub fn partitioned(&self) -> bool {
        !self.partition.is_empty()
    }

    /// ToRs cut off from the largest partition group (0 when whole) — the
    /// "partition size" the scenario series reports.
    pub fn partitioned_tors(&self) -> usize {
        if self.partition.is_empty() {
            return 0;
        }
        let groups = self
            .partition
            .iter()
            .map(|&g| g as usize)
            .max()
            .unwrap_or(0)
            + 1;
        let mut counts = vec![0usize; groups];
        for &g in &self.partition {
            counts[g as usize] += 1;
        }
        self.partition.len() - counts.iter().copied().max().unwrap_or(0)
    }

    /// Number of currently failed directed links (O(1) — the engines ask
    /// every epoch/timeslot to take their healthy-fabric fast paths).
    pub fn failed_count(&self) -> usize {
        debug_assert_eq!(
            self.down_count,
            self.egress_down.iter().filter(|&&d| d).count()
                + self.ingress_down.iter().filter(|&&d| d).count(),
            "down_count drifted from the per-direction state"
        );
        self.down_count
    }

    /// Fully healthy fabric: no failed fibers and no partition. The
    /// engines' fast paths gate on this, not on [`Self::failed_count`],
    /// because a partition breaks pairs without touching any fiber.
    pub fn healthy(&self) -> bool {
        self.down_count == 0 && self.partition.is_empty()
    }

    /// Sample a uniform `ratio` of all directed links without changing
    /// any state. A zero-link sample is RNG-neutral: the caller's stream
    /// position is untouched, so downstream draws from the same `rng`
    /// are identical whether or not a no-op sample happened in between.
    pub fn sample_random(&self, ratio: f64, rng: &mut Xoshiro256) -> Vec<(usize, usize, LinkDir)> {
        let n_links = self.egress_down.len();
        let target = ((2 * n_links) as f64 * ratio).round() as usize;
        if target == 0 {
            return Vec::new();
        }
        let mut all: Vec<(usize, usize, LinkDir)> = Vec::with_capacity(2 * n_links);
        for tor in 0..n_links / self.n_ports {
            for port in 0..self.n_ports {
                all.push((tor, port, LinkDir::Egress));
                all.push((tor, port, LinkDir::Ingress));
            }
        }
        rng.shuffle(&mut all);
        all.truncate(target);
        all
    }

    /// Fail a uniform random sample of `ratio` of all directed links
    /// (the Figure 10 setup: simultaneous failures at ratios 1%–10%).
    /// Returns the failed links for later repair.
    pub fn fail_random(
        &mut self,
        ratio: f64,
        rng: &mut Xoshiro256,
    ) -> Vec<(usize, usize, LinkDir)> {
        let chosen = self.sample_random(ratio, rng);
        for &(tor, port, dir) in &chosen {
            self.fail(tor, port, dir);
        }
        chosen
    }

    /// Repair every link in `links`.
    pub fn repair_all(&mut self, links: &[(usize, usize, LinkDir)]) {
        for &(tor, port, dir) in links {
            self.repair(tor, port, dir);
        }
    }
}

/// A scheduled change to the ground-truth link state (§4.3 experiments,
/// scenario event timelines).
#[derive(Debug, Clone)]
pub enum FailureAction {
    /// Fail a uniform random fraction of all directed links.
    FailRandom {
        /// Fraction of directed links to fail.
        ratio: f64,
        /// Sampling seed.
        seed: u64,
    },
    /// Repair everything failed by earlier `FailRandom`/`FailLink` actions.
    RepairAll,
    /// Fail one directed link.
    FailLink {
        /// ToR index.
        tor: usize,
        /// Port index.
        port: usize,
        /// Fiber direction.
        dir: LinkDir,
    },
}

/// A once-sorted schedule of [`FailureAction`]s consumed through a cursor
/// (inserts keep it sorted; equal timestamps preserve scheduling order).
/// Shared by both engines so scenario timelines drive either one.
#[derive(Debug, Clone, Default)]
pub struct FailureSchedule {
    schedule: Vec<(Nanos, FailureAction)>,
    cursor: usize,
    /// Links failed by applied actions, for `RepairAll`.
    injected: Vec<(usize, usize, LinkDir)>,
}

impl FailureSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `action` at absolute time `at`. The insertion goes into
    /// the not-yet-applied suffix; equal timestamps keep their scheduling
    /// order.
    pub fn schedule(&mut self, at: Nanos, action: FailureAction) {
        let pos = self.cursor + self.schedule[self.cursor..].partition_point(|&(t, _)| t <= at);
        self.schedule.insert(pos, (at, action));
    }

    /// Apply every action due by `now` to `failures`.
    pub fn apply_due(&mut self, now: Nanos, failures: &mut LinkFailures) {
        while let Some(&(at, ref action)) = self.schedule.get(self.cursor) {
            if at > now {
                break;
            }
            let action = action.clone();
            self.cursor += 1;
            match action {
                FailureAction::FailRandom { ratio, seed } => {
                    let mut rng = Xoshiro256::new(seed);
                    let failed = failures.fail_random(ratio, &mut rng);
                    self.injected.extend(failed);
                }
                FailureAction::RepairAll => {
                    failures.repair_all(&self.injected);
                    self.injected.clear();
                }
                FailureAction::FailLink { tor, port, dir } => {
                    failures.fail(tor, port, dir);
                    self.injected.push((tor, port, dir));
                }
            }
        }
    }

    /// True once every scheduled action has been applied.
    pub fn is_drained(&self) -> bool {
        self.cursor >= self.schedule.len()
    }

    /// How many scheduled actions have been applied so far. Observers
    /// (the flight recorder) diff this across `apply_due` calls to see
    /// activations without the schedule exposing its internals.
    pub fn applied(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_and_repair_roundtrip() {
        let mut f = LinkFailures::new(4, 2);
        assert!(f.link_up(0, 1, 0));
        f.fail(0, 0, LinkDir::Egress);
        assert!(!f.link_up(0, 1, 0), "src egress down breaks the link");
        assert!(f.link_up(1, 0, 0), "reverse direction unaffected");
        f.repair(0, 0, LinkDir::Egress);
        assert!(f.link_up(0, 1, 0));
    }

    #[test]
    fn ingress_failure_breaks_only_receive_side() {
        let mut f = LinkFailures::new(4, 2);
        f.fail(2, 1, LinkDir::Ingress);
        assert!(!f.link_up(0, 2, 1));
        assert!(f.link_up(2, 0, 1), "ToR 2 can still transmit on port 1");
        assert!(f.link_up(0, 2, 0), "other port unaffected");
    }

    #[test]
    fn fail_random_hits_target_count() {
        let mut f = LinkFailures::new(16, 4);
        let mut rng = Xoshiro256::new(1);
        let failed = f.fail_random(0.10, &mut rng);
        // 2 * 16 * 4 = 128 directed links; 10% = 13 (rounded).
        assert_eq!(failed.len(), 13);
        assert_eq!(f.failed_count(), 13);
        f.repair_all(&failed);
        assert_eq!(f.failed_count(), 0);
    }

    #[test]
    fn fail_random_zero_target_is_rng_neutral() {
        // Regression: a sample that rounds to zero links used to build
        // and shuffle the full link list, silently advancing the caller's
        // stream. The stream position must be unchanged.
        let mut f = LinkFailures::new(16, 4);
        let mut rng = Xoshiro256::new(42);
        let untouched = rng.clone();
        let failed = f.fail_random(0.001, &mut rng); // 128 links * 0.001 -> 0
        assert!(failed.is_empty());
        assert_eq!(f.failed_count(), 0);
        let mut untouched = untouched;
        for _ in 0..8 {
            assert_eq!(
                rng.next_u64(),
                untouched.next_u64(),
                "zero-link fail_random must not advance the RNG"
            );
        }
    }

    #[test]
    fn partition_blocks_cross_group_pairs_only() {
        let mut f = LinkFailures::new(4, 2);
        f.set_partition(vec![0, 0, 1, 1]);
        assert!(f.partitioned());
        assert_eq!(f.partitioned_tors(), 2);
        assert!(f.link_up(0, 1, 0), "intra-group pair stays up");
        assert!(!f.link_up(0, 2, 0), "cross-group pair is blocked");
        assert!(!f.link_up(3, 1, 1), "both directions blocked");
        assert_eq!(f.failed_count(), 0, "no fiber is marked failed");
        assert!(!f.healthy(), "partitioned fabric is not healthy");
    }

    #[test]
    fn heal_partition_returns_to_healthy() {
        let mut f = LinkFailures::new(6, 2);
        f.set_partition(vec![0, 1, 2, 0, 1, 2]);
        assert!(!f.healthy());
        f.heal_partition();
        assert!(f.healthy());
        assert_eq!(f.partitioned_tors(), 0);
        for src in 0..6 {
            for dst in 0..6 {
                for port in 0..2 {
                    assert!(f.link_up(src, dst, port));
                }
            }
        }
    }

    #[test]
    fn partition_composes_with_fiber_failures() {
        let mut f = LinkFailures::new(4, 2);
        f.fail(0, 0, LinkDir::Egress);
        f.set_partition(vec![0, 0, 1, 1]);
        f.heal_partition();
        assert!(!f.healthy(), "fiber failure survives the heal");
        assert!(!f.link_up(0, 1, 0));
        f.repair(0, 0, LinkDir::Egress);
        assert!(f.healthy());
    }

    #[test]
    fn fail_random_is_deterministic_per_seed() {
        let mut a = LinkFailures::new(8, 2);
        let mut b = LinkFailures::new(8, 2);
        let fa = a.fail_random(0.25, &mut Xoshiro256::new(9));
        let fb = b.fail_random(0.25, &mut Xoshiro256::new(9));
        assert_eq!(fa, fb);
    }

    #[test]
    fn schedule_applies_in_time_order_and_drains() {
        let mut f = LinkFailures::new(4, 2);
        let mut s = FailureSchedule::new();
        // Inserted out of order; repair-all scheduled between the two fails.
        s.schedule(300, FailureAction::RepairAll);
        s.schedule(
            100,
            FailureAction::FailLink {
                tor: 0,
                port: 0,
                dir: LinkDir::Egress,
            },
        );
        s.schedule(
            200,
            FailureAction::FailLink {
                tor: 1,
                port: 1,
                dir: LinkDir::Ingress,
            },
        );
        s.apply_due(50, &mut f);
        assert_eq!(f.failed_count(), 0);
        assert!(!s.is_drained());
        s.apply_due(250, &mut f);
        assert_eq!(f.failed_count(), 2);
        s.apply_due(300, &mut f);
        assert_eq!(f.failed_count(), 0, "repair-all undoes injected failures");
        assert!(s.is_drained());
    }
}
