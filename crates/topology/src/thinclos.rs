//! The thin-clos topology (Figure 1(b), after TONAK-LION [40, 52]).
//!
//! ToRs are partitioned into `S` groups of `G = N/S` members; write ToR
//! `i = G·a + b` with group `a` and member `b`. Egress port `p` of every ToR
//! in group `a` is spliced into AWGR `(a, p)` (a `G`-port device), whose
//! output side feeds ingress port `p` of every ToR in group `(a + p) mod S`.
//!
//! Consequences, all matching §2/§3.2 of the paper:
//!
//! * each egress port reaches exactly one *group* of `G` ToRs;
//! * each ordered ToR pair is connected by exactly one egress/ingress port
//!   pair, `p = (group(dst) − group(src)) mod S`;
//! * a destination's ingress port `p` can hear only the `G` ToRs of source
//!   group `(group(dst) − p) mod S`, so GRANT rings are per-port and small
//!   (Figure 3(c));
//! * the fabric uses `S²` AWGRs of `G` ports each — at paper scale,
//!   64 × 16-port AWGRs for 128 ToRs × 8 ports.
//!
//! ## Predefined-phase pattern
//!
//! One all-to-all round takes `G` timeslots (`W` in the paper's notation).
//! In slot `t`, port `p` of ToR `(a, b)` transmits to member `(b + t) mod G`
//! of group `(a + p) mod S`; staggering by `b` keeps every AWGR
//! collision-free in every slot. The §3.6.1 rotation trick does not apply
//! here (each pair has exactly one physical path), so `rot` is ignored —
//! the paper instead suggests relaying scheduling messages around failures
//! on this topology.

use crate::config::{NetworkConfig, TopologyKind};
use crate::traits::Topology;

/// Figure 1(b): `S²` low-port-count AWGRs, grouped reachability.
#[derive(Debug, Clone)]
pub struct ThinClos {
    net: NetworkConfig,
    /// Group size `G = N/S`, also the AWGR port count `W`.
    group: usize,
}

impl ThinClos {
    /// Build over `net` (panics if `n_tors` is not divisible by `n_ports`).
    pub fn new(net: NetworkConfig) -> Self {
        net.validate();
        let group = net.n_tors / net.n_ports;
        ThinClos { net, group }
    }

    /// Group size `G` (= AWGR port count `W`).
    pub fn group_size(&self) -> usize {
        self.group
    }

    /// Group index of `tor`.
    pub fn group_of(&self, tor: usize) -> usize {
        tor / self.group
    }

    /// Member index of `tor` within its group.
    pub fn member_of(&self, tor: usize) -> usize {
        tor % self.group
    }

    /// Total AWGR count (`S²`).
    pub fn n_awgrs(&self) -> usize {
        self.net.n_ports * self.net.n_ports
    }
}

impl Topology for ThinClos {
    fn net(&self) -> &NetworkConfig {
        &self.net
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::ThinClos
    }

    fn predefined_slots(&self) -> usize {
        self.group
    }

    fn predefined_dst(&self, _rot: u64, slot: usize, tor: usize, port: usize) -> Option<usize> {
        debug_assert!(slot < self.group && tor < self.net.n_tors && port < self.net.n_ports);
        let s = self.net.n_ports;
        let (a, b) = (self.group_of(tor), self.member_of(tor));
        let dst_group = (a + port) % s;
        let dst = dst_group * self.group + (b + slot) % self.group;
        (dst != tor).then_some(dst)
    }

    fn predefined_src(&self, _rot: u64, slot: usize, tor: usize, port: usize) -> Option<usize> {
        let s = self.net.n_ports;
        let (c, d) = (self.group_of(tor), self.member_of(tor));
        let src_group = (c + s - port % s) % s;
        let src = src_group * self.group + (d + self.group - slot % self.group) % self.group;
        (src != tor).then_some(src)
    }

    fn rotation_period(&self) -> usize {
        1 // each pair has one physical path; `rot` is ignored
    }

    fn port_reaches(&self, src: usize, port: usize, dst: usize) -> bool {
        src != dst && (self.group_of(src) + port) % self.net.n_ports == self.group_of(dst)
    }

    fn grant_scope(&self, dst: usize, port: usize) -> Vec<usize> {
        let s = self.net.n_ports;
        let src_group = (self.group_of(dst) + s - port % s) % s;
        (0..self.group)
            .map(|b| src_group * self.group + b)
            .filter(|&t| t != dst)
            .collect()
    }

    fn shared_grant_ring(&self) -> bool {
        false // Figure 3(c): one GRANT ring per ingress port
    }

    fn pair_port(&self, src: usize, dst: usize) -> Option<usize> {
        if src == dst {
            return None;
        }
        let s = self.net.n_ports;
        Some((self.group_of(dst) + s - self.group_of(src) % s) % s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> ThinClos {
        ThinClos::new(NetworkConfig::paper_default())
    }

    #[test]
    fn paper_scale_dimensions() {
        let t = paper();
        assert_eq!(t.group_size(), 16, "16-port AWGRs");
        assert_eq!(t.n_awgrs(), 64, "64 AWGRs as in §4.1");
        assert_eq!(t.predefined_slots(), 16, "W = 16 timeslots per round");
    }

    #[test]
    fn one_round_is_all_to_all_exactly_once() {
        let t = paper();
        for tor in [0usize, 31, 127] {
            let mut seen = vec![0u32; t.net().n_tors];
            for slot in 0..t.predefined_slots() {
                for port in 0..t.net().n_ports {
                    if let Some(dst) = t.predefined_dst(0, slot, tor, port) {
                        seen[dst] += 1;
                    }
                }
            }
            for (dst, &count) in seen.iter().enumerate() {
                assert_eq!(
                    count,
                    u32::from(dst != tor),
                    "tor {tor} -> {dst} coverage wrong"
                );
            }
        }
    }

    #[test]
    fn src_is_inverse_of_dst() {
        let t = paper();
        for slot in 0..t.predefined_slots() {
            for port in 0..t.net().n_ports {
                for tor in [0usize, 64, 127] {
                    if let Some(dst) = t.predefined_dst(0, slot, tor, port) {
                        assert_eq!(t.predefined_src(0, slot, dst, port), Some(tor));
                    }
                }
            }
        }
    }

    #[test]
    fn ingress_is_collision_free_per_slot() {
        let t = paper();
        let (n, s) = (t.net().n_tors, t.net().n_ports);
        for slot in 0..t.predefined_slots() {
            let mut hit = vec![false; n * s];
            for tor in 0..n {
                for port in 0..s {
                    if let Some(dst) = t.predefined_dst(0, slot, tor, port) {
                        let key = dst * s + port;
                        assert!(!hit[key], "collision at dst {dst} port {port}");
                        hit[key] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn exactly_one_port_per_ordered_pair() {
        let t = paper();
        for src in [0usize, 17, 127] {
            for dst in 0..t.net().n_tors {
                if src == dst {
                    assert_eq!(t.pair_port(src, dst), None);
                    continue;
                }
                let ports: Vec<usize> = (0..t.net().n_ports)
                    .filter(|&p| t.port_reaches(src, p, dst))
                    .collect();
                assert_eq!(ports.len(), 1, "pair ({src},{dst}) should have one port");
                assert_eq!(t.pair_port(src, dst), Some(ports[0]));
            }
        }
    }

    #[test]
    fn grant_scope_is_the_source_group() {
        let t = paper();
        // Ingress port 3 of ToR 40 (group 2) hears group (2 - 3) mod 8 = 7.
        let scope = t.grant_scope(40, 3);
        assert_eq!(scope.len(), 16);
        assert!(scope.iter().all(|&s| t.group_of(s) == 7));
        // Port 0 hears the destination's own group, minus itself.
        let own = t.grant_scope(40, 0);
        assert_eq!(own.len(), 15);
        assert!(!own.contains(&40));
    }

    #[test]
    fn reachability_consistent_with_grant_scope() {
        let t = paper();
        for dst in [5usize, 100] {
            for port in 0..8 {
                for src in t.grant_scope(dst, port) {
                    assert!(t.port_reaches(src, port, dst));
                }
            }
        }
    }
}
