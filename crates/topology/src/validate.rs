//! Validation of scheduled-phase matchings.
//!
//! NegotiaToR's correctness hinges on one invariant: the set of connections
//! derived by the distributed REQUEST/GRANT/ACCEPT steps must be physically
//! realizable on the bufferless fabric — no two transmissions may collide.
//! This module states that invariant once, independently of the scheduler,
//! so tests and property tests can check any matching the scheduler emits.

use crate::traits::Topology;

/// One scheduled-phase connection: `src` transmits through its egress port
/// `port`, landing on `dst`'s ingress port of the same index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchEntry {
    /// Transmitting ToR.
    pub src: usize,
    /// Egress (= ingress) port index.
    pub port: usize,
    /// Receiving ToR.
    pub dst: usize,
}

/// Why a matching is not realizable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchingError {
    /// A source uses the same egress port for two destinations.
    EgressConflict {
        /// Conflicting source ToR.
        src: usize,
        /// Double-booked egress port.
        port: usize,
    },
    /// Two sources land on the same ingress port of one destination.
    IngressConflict {
        /// Conflicting destination ToR.
        dst: usize,
        /// Double-booked ingress port.
        port: usize,
    },
    /// The topology provides no path from `src` via `port` to `dst`.
    Unreachable(MatchEntry),
    /// A ToR "connects" to itself.
    SelfLoop(MatchEntry),
}

/// Check that `matches` is collision-free and realizable on `topo`.
///
/// Returns the first violation found, or `Ok(())`.
pub fn validate_matching<T: Topology>(
    topo: &T,
    matches: &[MatchEntry],
) -> Result<(), MatchingError> {
    let n = topo.net().n_tors;
    let s = topo.net().n_ports;
    let mut egress = vec![false; n * s];
    let mut ingress = vec![false; n * s];
    for &m in matches {
        if m.src == m.dst {
            return Err(MatchingError::SelfLoop(m));
        }
        if !topo.port_reaches(m.src, m.port, m.dst) {
            return Err(MatchingError::Unreachable(m));
        }
        let e = m.src * s + m.port;
        if egress[e] {
            return Err(MatchingError::EgressConflict {
                src: m.src,
                port: m.port,
            });
        }
        egress[e] = true;
        let i = m.dst * s + m.port;
        if ingress[i] {
            return Err(MatchingError::IngressConflict {
                dst: m.dst,
                port: m.port,
            });
        }
        ingress[i] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, TopologyKind};
    use crate::traits::AnyTopology;

    fn par() -> AnyTopology {
        AnyTopology::build(TopologyKind::Parallel, NetworkConfig::small_for_tests())
    }

    #[test]
    fn accepts_valid_matching() {
        let t = par();
        let m = [
            MatchEntry {
                src: 0,
                port: 0,
                dst: 1,
            },
            MatchEntry {
                src: 0,
                port: 1,
                dst: 1,
            }, // same pair, second port: fine
            MatchEntry {
                src: 1,
                port: 0,
                dst: 2,
            },
            MatchEntry {
                src: 2,
                port: 0,
                dst: 0,
            },
        ];
        assert_eq!(validate_matching(&t, &m), Ok(()));
    }

    #[test]
    fn rejects_egress_conflict() {
        let t = par();
        let m = [
            MatchEntry {
                src: 0,
                port: 0,
                dst: 1,
            },
            MatchEntry {
                src: 0,
                port: 0,
                dst: 2,
            },
        ];
        assert_eq!(
            validate_matching(&t, &m),
            Err(MatchingError::EgressConflict { src: 0, port: 0 })
        );
    }

    #[test]
    fn rejects_ingress_conflict() {
        let t = par();
        let m = [
            MatchEntry {
                src: 0,
                port: 3,
                dst: 5,
            },
            MatchEntry {
                src: 1,
                port: 3,
                dst: 5,
            },
        ];
        assert_eq!(
            validate_matching(&t, &m),
            Err(MatchingError::IngressConflict { dst: 5, port: 3 })
        );
    }

    #[test]
    fn rejects_self_loop_and_unreachable() {
        let t = par();
        let selfy = MatchEntry {
            src: 3,
            port: 0,
            dst: 3,
        };
        assert_eq!(
            validate_matching(&t, &[selfy]),
            Err(MatchingError::SelfLoop(selfy))
        );

        let thin = AnyTopology::build(TopologyKind::ThinClos, NetworkConfig::small_for_tests());
        // On thin-clos (16 ToRs, 4 ports, groups of 4): ToR 0 (group 0) via
        // port 1 reaches only group 1 = ToRs 4..8; dst 12 is unreachable.
        let bad = MatchEntry {
            src: 0,
            port: 1,
            dst: 12,
        };
        assert_eq!(
            validate_matching(&thin, &[bad]),
            Err(MatchingError::Unreachable(bad))
        );
    }
}
