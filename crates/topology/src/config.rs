//! Network-level configuration shared by both topologies and both
//! architectures (NegotiaToR and the traffic-oblivious baseline).

use sim::time::Nanos;
use sim::Bandwidth;

/// Which flat topology to build (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Figure 1(a): `S` high-port-count AWGRs, full per-port reachability.
    Parallel,
    /// Figure 1(b): `S²` low-port-count AWGRs, one path per ordered pair.
    ThinClos,
}

impl TopologyKind {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Parallel => "parallel",
            TopologyKind::ThinClos => "thin-clos",
        }
    }
}

/// Physical parameters of the fabric (§4.1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Number of ToRs (paper: 128). ToRs are the endpoints of the network.
    pub n_tors: usize,
    /// Uplink ports per ToR (paper: 8).
    pub n_ports: usize,
    /// Bandwidth of one uplink port (paper: 100 Gbps, i.e. 2× speedup).
    pub port_bandwidth: Bandwidth,
    /// Aggregated bandwidth of the hosts below one ToR (paper: 400 Gbps).
    /// This is the `R` in the load definition `L = F / (R·N·τ)` and the
    /// basis goodput is normalized to.
    pub host_bandwidth: Bandwidth,
    /// One-way propagation delay between any two ToRs (paper: 2 µs).
    pub propagation_delay: Nanos,
}

impl NetworkConfig {
    /// The paper's evaluation network: 128 ToRs × 8 × 100 Gbps uplinks,
    /// 400 Gbps host aggregate (2× speedup), 2 µs one-way delay.
    pub fn paper_default() -> Self {
        NetworkConfig {
            n_tors: 128,
            n_ports: 8,
            port_bandwidth: Bandwidth::from_gbps(100),
            host_bandwidth: Bandwidth::from_gbps(400),
            propagation_delay: 2_000,
        }
    }

    /// The same network without the 2× uplink speedup (§4.4, Figure 11):
    /// uplink aggregate equals the host aggregate.
    pub fn paper_no_speedup() -> Self {
        NetworkConfig {
            port_bandwidth: Bandwidth::from_gbps(50),
            ..Self::paper_default()
        }
    }

    /// A small fabric for unit and integration tests: 16 ToRs × 4 ports.
    pub fn small_for_tests() -> Self {
        NetworkConfig {
            n_tors: 16,
            n_ports: 4,
            port_bandwidth: Bandwidth::from_gbps(100),
            host_bandwidth: Bandwidth::from_gbps(200),
            propagation_delay: 2_000,
        }
    }

    /// Aggregated uplink bandwidth of one ToR.
    pub fn uplink_aggregate(&self) -> Bandwidth {
        self.port_bandwidth.scale(self.n_ports as u64)
    }

    /// Uplink-to-downlink speedup factor (paper default: 2.0).
    pub fn speedup(&self) -> f64 {
        self.uplink_aggregate().bps() as f64 / self.host_bandwidth.bps() as f64
    }

    /// Directed optical links in the fabric: one egress and one ingress
    /// fiber per (ToR, port).
    pub fn directed_links(&self) -> usize {
        2 * self.n_tors * self.n_ports
    }

    /// Panics unless the dimensions are usable by both topologies
    /// (thin-clos needs `n_tors` divisible by `n_ports`).
    pub fn validate(&self) {
        assert!(self.n_tors >= 2, "need at least two ToRs");
        assert!(self.n_ports >= 1, "need at least one uplink port");
        assert!(
            self.n_tors.is_multiple_of(self.n_ports),
            "thin-clos requires n_tors ({}) divisible by n_ports ({})",
            self.n_tors,
            self.n_ports
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_4_1() {
        let net = NetworkConfig::paper_default();
        net.validate();
        assert_eq!(net.n_tors, 128);
        assert_eq!(net.n_ports, 8);
        assert_eq!(net.uplink_aggregate().gbps(), 800.0);
        assert_eq!(net.speedup(), 2.0);
        assert_eq!(net.propagation_delay, 2_000);
        assert_eq!(net.directed_links(), 2048);
    }

    #[test]
    fn no_speedup_variant_is_1x() {
        let net = NetworkConfig::paper_no_speedup();
        net.validate();
        assert_eq!(net.speedup(), 1.0);
    }

    #[test]
    fn small_config_validates() {
        NetworkConfig::small_for_tests().validate();
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn thin_clos_divisibility_enforced() {
        let net = NetworkConfig {
            n_tors: 10,
            n_ports: 4,
            ..NetworkConfig::small_for_tests()
        };
        net.validate();
    }

    #[test]
    fn labels() {
        assert_eq!(TopologyKind::Parallel.label(), "parallel");
        assert_eq!(TopologyKind::ThinClos.label(), "thin-clos");
    }
}
