#![warn(missing_docs)]

//! AWGR-based flat topologies for reconfigurable optical DCNs.
//!
//! The paper (§2, Figure 1) evaluates NegotiaToR on two representative flat
//! topologies in which every ToR uplink port carries a fast-tunable laser
//! attached to a passive AWGR:
//!
//! * **Parallel network** ([`ParallelNet`]) — `S` high-port-count AWGRs,
//!   one per ToR port index; any ToR can reach any other ToR through any of
//!   its ports, and traffic leaving source port `p` always lands on the
//!   destination's ingress port `p` (both are attached to AWGR `p`).
//! * **Thin-clos** ([`ThinClos`]) — `S²` low-port-count AWGRs; each ordered
//!   ToR pair is connected through exactly one egress-port/ingress-port pair,
//!   so each port only reaches a *group* of ToRs.
//!
//! Both implement the [`Topology`] trait, which captures everything the
//! schedulers need: the predefined-phase round-robin pattern (who talks to
//! whom in each timeslot), per-port reachability for the scheduled phase,
//! and the scope of each GRANT ring. [`failures`] models per-direction link
//! failures for the fault-tolerance experiments (§3.6.1, Figure 10), and
//! [`inject`] layers the adversarial fault families on top of them
//! (flapping links, partitions, gray failures, greedy ToRs).

pub mod cache;
pub mod config;
pub mod failures;
pub mod inject;
pub mod parallel;
pub mod thinclos;
pub mod traits;
pub mod validate;

pub use cache::{PredefinedCache, PredefinedConn};
pub use config::{NetworkConfig, TopologyKind};
pub use failures::{FailureAction, FailureSchedule, LinkFailures};
pub use inject::{FaultAction, FaultModel, FlapTargets, PartitionSpec};
pub use parallel::ParallelNet;
pub use thinclos::ThinClos;
pub use traits::{AnyTopology, Topology};
pub use validate::{validate_matching, MatchEntry, MatchingError};
