//! NegotiaToR Matching (§3.2, Algorithm 1): the three-step, non-iterative
//! REQUEST / GRANT / ACCEPT matching that every ToR runs distributedly.
//!
//! The functions here are pure with respect to the fabric: they take the
//! messages a ToR has received and its persistent ring state, and produce
//! the messages it sends next. The epoch engine (`crate::sim`) wires them
//! into the pipelined, in-band schedule of Figure 4.

use crate::rings::Ring;
use sim::Xoshiro256;
use topology::Topology;

/// A grant message: destination `dst` offers its ingress `port` to a
/// requesting source (which must then transmit on its egress port of the
/// same index — AWGR wiring makes the two port indices equal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Granting destination ToR.
    pub dst: usize,
    /// Offered port index.
    pub port: usize,
}

/// An accepted match at a source: egress `port` will transmit to `dst` for
/// the whole scheduled phase of the epoch the accept takes effect in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accept {
    /// Destination ToR.
    pub dst: usize,
    /// Source egress port.
    pub port: usize,
}

/// Persistent GRANT-side arbiter state of one destination ToR.
///
/// Parallel network: a single ring shared by all ports (Figure 3(b)).
/// Thin-clos: one ring per ingress port over that port's source group
/// (Figure 3(c)).
#[derive(Debug, Clone)]
pub struct GrantArbiter {
    shared: bool,
    /// One ring when `shared`, else one per port.
    rings: Vec<Ring>,
    /// Reused per-port candidate buffer (no per-call allocation).
    filtered: Vec<usize>,
}

impl GrantArbiter {
    /// Build the arbiter for destination `dst` on `topo`.
    pub fn new<T: Topology>(topo: &T, dst: usize, rng: &mut Xoshiro256) -> Self {
        if topo.shared_grant_ring() {
            GrantArbiter {
                shared: true,
                rings: vec![Ring::new(topo.grant_scope(dst, 0), rng)],
                filtered: Vec::new(),
            }
        } else {
            let rings = (0..topo.net().n_ports)
                .map(|p| Ring::new(topo.grant_scope(dst, p), rng))
                .collect();
            GrantArbiter {
                shared: false,
                rings,
                filtered: Vec::new(),
            }
        }
    }

    /// Port-level GRANT: allocate every usable port of `dst` to the
    /// received ToR-level `requests`. `usable(src, port)` filters out
    /// ports/links the failure detector has excluded. Returns
    /// `(src, port)` pairs — the grant messages to send back.
    pub fn grant(
        &mut self,
        n_ports: usize,
        requests: &[usize],
        usable: impl FnMut(usize, usize) -> bool,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.grant_into(n_ports, requests, usable, &mut out);
        out
    }

    /// [`GrantArbiter::grant`] writing into a caller-owned buffer, so the
    /// epoch hot path can reuse one allocation across every destination
    /// (`out` is cleared first).
    pub fn grant_into(
        &mut self,
        n_ports: usize,
        requests: &[usize],
        mut usable: impl FnMut(usize, usize) -> bool,
        out: &mut Vec<(usize, usize)>,
    ) {
        out.clear();
        if requests.is_empty() {
            return;
        }
        self.filtered.clear();
        let mut filtered = std::mem::take(&mut self.filtered);
        for port in 0..n_ports {
            filtered.clear();
            filtered.extend(requests.iter().copied().filter(|&s| usable(s, port)));
            let ring = if self.shared {
                &mut self.rings[0]
            } else {
                &mut self.rings[port]
            };
            if let Some(src) = ring.pick(&filtered) {
                out.push((src, port));
            }
        }
        self.filtered = filtered;
    }
}

/// Persistent ACCEPT-side arbiter state of one source ToR: one ring per
/// egress port over the destinations that port can reach.
#[derive(Debug, Clone)]
pub struct AcceptArbiter {
    rings: Vec<Ring>,
    /// Reused per-port candidate buffer (no per-call allocation).
    candidates: Vec<usize>,
}

impl AcceptArbiter {
    /// Build the arbiter for source `src` on `topo`.
    pub fn new<T: Topology>(topo: &T, src: usize, rng: &mut Xoshiro256) -> Self {
        let n = topo.net().n_tors;
        let rings = (0..topo.net().n_ports)
            .map(|p| {
                let reachable: Vec<usize> =
                    (0..n).filter(|&d| topo.port_reaches(src, p, d)).collect();
                Ring::new(reachable, rng)
            })
            .collect();
        AcceptArbiter {
            rings,
            candidates: Vec::new(),
        }
    }

    /// Port-level ACCEPT: for each egress port, accept at most one of the
    /// `grants` received for it. `usable(dst, port)` filters excluded
    /// links. Returns the accepted matches.
    pub fn accept(
        &mut self,
        n_ports: usize,
        grants: &[Grant],
        usable: impl FnMut(usize, usize) -> bool,
    ) -> Vec<Accept> {
        let mut out = Vec::new();
        self.accept_into(n_ports, grants, usable, &mut out);
        out
    }

    /// [`AcceptArbiter::accept`] writing into a caller-owned buffer, so the
    /// epoch hot path can reuse one allocation across every source (`out`
    /// is cleared first).
    pub fn accept_into(
        &mut self,
        n_ports: usize,
        grants: &[Grant],
        mut usable: impl FnMut(usize, usize) -> bool,
        out: &mut Vec<Accept>,
    ) {
        out.clear();
        self.candidates.clear();
        let mut candidates = std::mem::take(&mut self.candidates);
        for port in 0..n_ports {
            candidates.clear();
            candidates.extend(
                grants
                    .iter()
                    .filter(|g| g.port == port && usable(g.dst, port))
                    .map(|g| g.dst),
            );
            if let Some(dst) = self.rings[port].pick(&candidates) {
                out.push(Accept { dst, port });
            }
        }
        self.candidates = candidates;
    }
}

/// ToR-level REQUEST (§3.2.1 + the §3.4.1 threshold): a source requests
/// every destination whose per-destination queue holds more than
/// `threshold_bytes` (strictly; zero threshold means "any pending data").
pub fn compute_requests(
    queue_bytes: impl Iterator<Item = (usize, u64)>,
    threshold_bytes: u64,
) -> Vec<usize> {
    queue_bytes
        .filter_map(|(dst, bytes)| (bytes > threshold_bytes).then_some(dst))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{AnyTopology, NetworkConfig, TopologyKind};

    fn par() -> AnyTopology {
        AnyTopology::build(TopologyKind::Parallel, NetworkConfig::small_for_tests())
    }

    fn thin() -> AnyTopology {
        AnyTopology::build(TopologyKind::ThinClos, NetworkConfig::small_for_tests())
    }

    #[test]
    fn requests_respect_threshold() {
        let q = [(1usize, 0u64), (2, 100), (3, 1_785), (4, 1_786)];
        assert_eq!(compute_requests(q.iter().copied(), 1_785), vec![4]);
        assert_eq!(compute_requests(q.iter().copied(), 0), vec![2, 3, 4]);
    }

    #[test]
    fn grant_allocates_every_port_on_parallel() {
        let topo = par();
        let mut rng = Xoshiro256::new(3);
        let mut arb = GrantArbiter::new(&topo, 0, &mut rng);
        // Two requesters on a 4-port ToR → 2 grants each (Figure 3(a)).
        let grants = arb.grant(4, &[5, 9], |_, _| true);
        assert_eq!(grants.len(), 4);
        let to5 = grants.iter().filter(|&&(s, _)| s == 5).count();
        let to9 = grants.iter().filter(|&&(s, _)| s == 9).count();
        assert_eq!((to5, to9), (2, 2));
        // Ports are distinct.
        let mut ports: Vec<usize> = grants.iter().map(|&(_, p)| p).collect();
        ports.sort_unstable();
        assert_eq!(ports, vec![0, 1, 2, 3]);
    }

    #[test]
    fn grant_on_thin_clos_respects_port_scopes() {
        let topo = thin();
        let mut rng = Xoshiro256::new(4);
        // dst 0 is in group 0; its ingress port p hears group (0 - p) mod 4.
        let mut arb = GrantArbiter::new(&topo, 0, &mut rng);
        // Requesters: 4 (group 1), 8 (group 2). Group 1 reaches dst group 0
        // via egress/ingress port 3; group 2 via port 2.
        let grants = arb.grant(4, &[4, 8], |_, _| true);
        assert_eq!(grants.len(), 2);
        assert!(grants.contains(&(4, 3)));
        assert!(grants.contains(&(8, 2)));
    }

    #[test]
    fn grant_usable_filter_excludes_links() {
        let topo = par();
        let mut rng = Xoshiro256::new(5);
        let mut arb = GrantArbiter::new(&topo, 0, &mut rng);
        // Port 1 unusable entirely; src 5 unusable on port 0.
        let grants = arb.grant(4, &[5], |s, p| p != 1 && !(s == 5 && p == 0));
        let ports: Vec<usize> = grants.iter().map(|&(_, p)| p).collect();
        assert_eq!(ports, vec![2, 3]);
    }

    #[test]
    fn accept_takes_one_grant_per_port() {
        let topo = par();
        let mut rng = Xoshiro256::new(6);
        let mut arb = AcceptArbiter::new(&topo, 2, &mut rng);
        let grants = vec![
            Grant { dst: 1, port: 0 },
            Grant { dst: 9, port: 0 },
            Grant { dst: 9, port: 2 },
        ];
        let accepts = arb.accept(4, &grants, |_, _| true);
        assert_eq!(accepts.len(), 2);
        let port0: Vec<_> = accepts.iter().filter(|a| a.port == 0).collect();
        assert_eq!(port0.len(), 1, "exactly one accept per port");
        assert!(accepts.iter().any(|a| a.port == 2 && a.dst == 9));
    }

    #[test]
    fn accept_fairness_alternates_destinations() {
        let topo = par();
        let mut rng = Xoshiro256::new(7);
        let mut arb = AcceptArbiter::new(&topo, 0, &mut rng);
        let grants = vec![Grant { dst: 3, port: 0 }, Grant { dst: 5, port: 0 }];
        let mut wins = std::collections::BTreeMap::new();
        for _ in 0..10 {
            let a = arb.accept(4, &grants, |_, _| true);
            *wins.entry(a[0].dst).or_insert(0) += 1;
        }
        assert_eq!(wins[&3], 5);
        assert_eq!(wins[&5], 5);
    }

    #[test]
    fn full_cycle_produces_valid_matching() {
        use topology::{validate_matching, MatchEntry};
        // All 16 ToRs request all others; run GRANT then ACCEPT and check
        // the resulting matching is collision-free on both topologies.
        for topo in [par(), thin()] {
            let n = topo.net().n_tors;
            let s = topo.net().n_ports;
            let mut rng = Xoshiro256::new(11);
            let mut grant_arbs: Vec<GrantArbiter> = (0..n)
                .map(|d| GrantArbiter::new(&topo, d, &mut rng))
                .collect();
            let mut accept_arbs: Vec<AcceptArbiter> = (0..n)
                .map(|d| AcceptArbiter::new(&topo, d, &mut rng))
                .collect();

            // Everyone requests everyone.
            let mut grants_by_src: Vec<Vec<Grant>> = vec![Vec::new(); n];
            #[allow(clippy::needless_range_loop)] // dst drives several arrays
            for dst in 0..n {
                let requests: Vec<usize> = (0..n).filter(|&x| x != dst).collect();
                for (src, port) in grant_arbs[dst].grant(s, &requests, |_, _| true) {
                    grants_by_src[src].push(Grant { dst, port });
                }
            }
            let mut entries = Vec::new();
            for src in 0..n {
                for a in accept_arbs[src].accept(s, &grants_by_src[src], |_, _| true) {
                    entries.push(MatchEntry {
                        src,
                        port: a.port,
                        dst: a.dst,
                    });
                }
            }
            assert!(!entries.is_empty());
            validate_matching(&topo, &entries).expect("matching must be collision-free");
        }
    }

    #[test]
    fn saturation_efficiency_near_theory() {
        // §3.2.2: with everyone requesting everyone, the accepted fraction
        // of grants approaches 1 − (1 − 1/n)^n. Statistical test over many
        // epochs on the 16-ToR parallel network (expected ≈ 0.644).
        let topo = par();
        let n = topo.net().n_tors;
        let s = topo.net().n_ports;
        let mut rng = Xoshiro256::new(13);
        let mut grant_arbs: Vec<GrantArbiter> = (0..n)
            .map(|d| GrantArbiter::new(&topo, d, &mut rng))
            .collect();
        let mut accept_arbs: Vec<AcceptArbiter> = (0..n)
            .map(|d| AcceptArbiter::new(&topo, d, &mut rng))
            .collect();
        let (mut grants_total, mut accepts_total) = (0usize, 0usize);
        for _ in 0..400 {
            let mut grants_by_src: Vec<Vec<Grant>> = vec![Vec::new(); n];
            #[allow(clippy::needless_range_loop)] // dst drives several arrays
            for dst in 0..n {
                let requests: Vec<usize> = (0..n).filter(|&x| x != dst).collect();
                for (src, port) in grant_arbs[dst].grant(s, &requests, |_, _| true) {
                    grants_by_src[src].push(Grant { dst, port });
                }
            }
            for src in 0..n {
                grants_total += grants_by_src[src].len();
                accepts_total += accept_arbs[src]
                    .accept(s, &grants_by_src[src], |_, _| true)
                    .len();
            }
        }
        let ratio = accepts_total as f64 / grants_total as f64;
        let theory = 1.0 - (1.0 - 1.0 / n as f64).powi(n as i32);
        // Round-robin rings are *more* regular than the random model, so
        // allow a generous band around the theoretical value.
        assert!(
            (ratio - theory).abs() < 0.15,
            "ratio {ratio:.3} vs theory {theory:.3}"
        );
    }
}
