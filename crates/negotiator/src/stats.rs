//! Scheduler observability: aggregate counters the epoch engine maintains
//! while it runs.
//!
//! These quantify the costs the paper discusses qualitatively: stateless
//! over-scheduling shows up as [`SchedStats::overscheduled_slots`]
//! (a matched port found its queue empty — §3.5 "Stateless scheduling"),
//! the piggyback bypass as [`SchedStats::piggyback_packets`], link
//! failures as [`SchedStats::lost_packets`]. The ablation experiments in
//! the harness (`ablation_threshold`, `ablation_rotation`) read them to
//! show *why* the paper's defaults are what they are.

/// Aggregate counters over one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// ToR-level requests transmitted (one per pair per epoch at most).
    pub requests_sent: u64,
    /// Port-level grants issued by destinations.
    pub grants_issued: u64,
    /// Port-level accepts — the matches that actually activated.
    pub accepts_made: u64,
    /// Data packets delivered through piggybacking (§3.4.1).
    pub piggyback_packets: u64,
    /// Payload bytes delivered through piggybacking.
    pub piggyback_bytes: u64,
    /// Data packets delivered through the scheduled phase.
    pub scheduled_packets: u64,
    /// Payload bytes delivered through the scheduled phase.
    pub scheduled_bytes: u64,
    /// Scheduled port-slots that held a match but found the
    /// per-destination queue empty — the price of stateless scheduling.
    pub overscheduled_slots: u64,
    /// Scheduled port-slots with no match at all.
    pub unmatched_slots: u64,
    /// Packets transmitted into a ground-truth-failed link and lost.
    pub lost_packets: u64,
    /// Control messages (requests, grants, relay traffic and the per-
    /// connection dummy) dropped by an active gray failure. Data packets
    /// are never in this count — a gray link stays up for data.
    pub control_dropped: u64,
}

impl SchedStats {
    /// Fraction of scheduled port-slots that carried a packet.
    pub fn scheduled_utilization(&self) -> f64 {
        let total = self.scheduled_packets + self.overscheduled_slots + self.unmatched_slots;
        if total == 0 {
            0.0
        } else {
            self.scheduled_packets as f64 / total as f64
        }
    }

    /// Fraction of delivered payload that travelled in the predefined
    /// phase (how much work the bypass is doing).
    pub fn piggyback_share(&self) -> f64 {
        let total = self.piggyback_bytes + self.scheduled_bytes;
        if total == 0 {
            0.0
        } else {
            self.piggyback_bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = SchedStats {
            scheduled_packets: 60,
            overscheduled_slots: 20,
            unmatched_slots: 20,
            ..Default::default()
        };
        assert_eq!(s.scheduled_utilization(), 0.6);
    }

    #[test]
    fn piggyback_share_math() {
        let s = SchedStats {
            piggyback_bytes: 100,
            scheduled_bytes: 300,
            ..Default::default()
        };
        assert_eq!(s.piggyback_share(), 0.25);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SchedStats::default();
        assert_eq!(s.scheduled_utilization(), 0.0);
        assert_eq!(s.piggyback_share(), 0.0);
    }
}
