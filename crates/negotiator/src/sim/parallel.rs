//! Intra-run parallel epoch phases: contiguous ToR shards, sequential
//! event-replay merges, byte-identical output at any worker count.
//!
//! # The determinism argument
//!
//! Every parallel section below follows one recipe:
//!
//! 1. **Ownership by row.** ToRs are partitioned into contiguous shards
//!    ([`sim::shard::partition`]). Each shard receives disjoint `&mut`
//!    windows of the row-major state it owns ([`sim::shard::split_rows`]):
//!    REQUEST and ACCEPT shard by *source* row, GRANT by *granter* row.
//!    The type system — not a convention — rules out cross-shard writes.
//! 2. **Events for everything else.** Writes that land on another ToR's
//!    state (inbox pushes, stateful matrix reverts, flow-tracker
//!    deliveries) are not performed by the shard; the shard appends an
//!    [`Event`] to its lane instead, in exactly the order the sequential
//!    loop would have performed the write.
//! 3. **Ordered replay.** After the fork/join, the merge replays lane
//!    events on the caller's thread in *sequential visit order*: shard
//!    concatenation where the sequential loop is row-major (rows ascend
//!    across shards), slot-major interleaving where it is slot-major
//!    (the predefined phase tags events with their slot). The replayed
//!    write sequence is therefore *identical* to the sequential one —
//!    no commutativity assumptions, no floating-point reassociation.
//!
//! Worker count moves shard boundaries, never row order, so any
//! `--workers` value produces the same bytes; `tests/determinism.rs`
//! and the CI `determinism-matrix` job hold the engine to it, and the
//! golden-report gate pins the sequential path the parallel one must
//! match.
//!
//! # What stays sequential, and why
//!
//! * **Selective relay** (`par_workers() == 1`): relay grant admission
//!   reads `port_granted`/buffer claims written by lower-numbered ToRs
//!   in the same step — the visit order is semantic.
//! * **Iterative mode's epoch start**: `IterativeMatcher` is a global
//!   fixed point over all ToRs, not per-ToR work.
//! * **Failure-path phases**: observation arrays are cheap but
//!   cross-indexed; failure epochs are rare by construction.
//! * **`rebuild_active_list` and the flag-clearing prologues**: memset-
//!   class scans that cost less than a fork/join.

use super::*;
use sim::shard::{self, Shard};

/// Per-shard lane: scratch buffers, merge queues and counters. Retained
/// across epochs so the steady-state parallel path allocates nothing
/// once lane capacities have warmed up.
#[derive(Debug, Default)]
pub(super) struct Lane {
    scratch: SimScratch,
    /// `req_dirty`/`grant_dirty` contributions, concatenated in shard
    /// order by the merge (= row-ascending = sequential order).
    dirty: Vec<u32>,
    /// Stateful-mode `(granter, src, debit)` matrix reverts, replayed in
    /// shard order after ACCEPT.
    reverts: Vec<(u32, u32, u64)>,
    /// Cross-ToR writes of the phase bodies, replayed by the merge.
    events: Vec<Event>,
    // Per-section counters, summed into `SchedStats` by the merge.
    grants: u64,
    accepts: u64,
    requests: u64,
    pb_packets: u64,
    pb_bytes: u64,
    sched_packets: u64,
    sched_bytes: u64,
    lost: u64,
    oversched: u64,
}

impl Lane {
    fn reset(&mut self) {
        self.dirty.clear();
        self.reverts.clear();
        self.events.clear();
        self.grants = 0;
        self.accepts = 0;
        self.requests = 0;
        self.pb_packets = 0;
        self.pb_bytes = 0;
        self.sched_packets = 0;
        self.sched_bytes = 0;
        self.lost = 0;
        self.oversched = 0;
    }
}

/// A cross-ToR write recorded by a shard for the ordered replay. `slot`
/// is the predefined timeslot (predefined phase) or the scheduled slot
/// index `k` (scheduled phase); the replay derives arrival times from it.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A REQUEST landing in `inbox_requests[dst]`.
    Req {
        slot: u32,
        dst: u32,
        src: u32,
        value: f64,
        port: u32,
    },
    /// One grant-bucket entry landing in `inbox_grants[dst]`.
    Grant {
        slot: u32,
        dst: u32,
        granter: u32,
        port: u32,
        debit: u64,
    },
    /// A data packet delivered to `dst` (tracker + series + rx buffer).
    Data {
        slot: u32,
        dst: u32,
        flow: u64,
        bytes: u64,
    },
}

impl Event {
    fn slot(&self) -> u32 {
        match *self {
            Event::Req { slot, .. } | Event::Grant { slot, .. } | Event::Data { slot, .. } => slot,
        }
    }
}

/// Projector port bindings use `usize::MAX` as "unbound"; events store
/// ports in 32 bits (fabrics are ≤ `u32` ToRs × ports).
fn port_to_u32(p: usize) -> u32 {
    if p == usize::MAX {
        u32::MAX
    } else {
        p as u32
    }
}

fn port_from_u32(p: u32) -> usize {
    if p == u32::MAX {
        usize::MAX
    } else {
        p as usize
    }
}

/// Retained parallel-path state hanging off the sim (empty when the run
/// is sequential).
#[derive(Debug, Default)]
pub(super) struct ParState {
    lanes: Vec<Lane>,
    /// Per-lane replay cursors (slot-major merges).
    ptrs: Vec<usize>,
    /// Scheduled-phase chunk starts into `active_list`.
    cuts: Vec<usize>,
}

/// Take `k` lanes out of the sim (so shard closures can own them while
/// `self` is re-borrowed for the merge), growing the pool on first use.
fn take_lanes(par: &mut ParState, k: usize) -> Vec<Lane> {
    let mut lanes = std::mem::take(&mut par.lanes);
    if lanes.len() < k {
        lanes.resize_with(k, Lane::default);
    }
    for lane in &mut lanes {
        lane.reset();
    }
    lanes
}

// Shard-side borrow bundles. One struct per section keeps the closure a
// single argument and documents exactly which rows a shard may touch.

struct AcceptCtx<'a> {
    shard: Shard,
    inbox_grants: &'a mut [Vec<(Grant, u64)>],
    accept_arbs: &'a mut [AcceptArbiter],
    active: &'a mut [Option<usize>],
    lane: &'a mut Lane,
}

struct GrantCtx<'a> {
    shard: Shard,
    inbox_requests: &'a mut [Vec<ReqIn>],
    grant_arbs: &'a mut [GrantArbiter],
    matrices: &'a mut [DemandMatrix],
    grant_buckets: &'a mut [Vec<(u32, u64)>],
    msg_flags: &'a mut [u8],
    lane: &'a mut Lane,
}

struct RequestCtx<'a> {
    shard: Shard,
    req_out: &'a mut [f64],
    req_port_out: &'a mut [usize],
    msg_flags: &'a mut [u8],
    reported_total: &'a mut [u64],
    lane: &'a mut Lane,
}

struct PredefCtx<'a> {
    shard: Shard,
    queues: &'a mut [DestQueue],
    queue_bytes: &'a mut [u64],
    enqueued_total: &'a mut [u64],
    msg_flags: &'a mut [u8],
    relay_buffers: &'a mut [RelayBuffer],
    lane: &'a mut Lane,
}

struct SchedCtx<'a> {
    shard: Shard,
    entries: &'a [ActiveTx],
    queues: &'a mut [DestQueue],
    queue_bytes: &'a mut [u64],
    relay_buffers: &'a mut [RelayBuffer],
    lane: &'a mut Lane,
}

impl NegotiatorSim {
    /// Parallel ACCEPT (sharded by source ToR): arbitration and the
    /// `active` match table are source-owned; stateful matrix reverts —
    /// the one cross-ToR write — are buffered per lane and replayed in
    /// shard order, which is exactly the sequential src-ascending order.
    pub(super) fn step_accept_parallel(&mut self) {
        debug_assert!(!self.opts.selective_relay, "relay runs are sequential");
        self.active.fill(None);
        let shards = shard::partition(self.n, self.par_workers());
        let mut lanes = take_lanes(&mut self.par, shards.len());
        let (s, mode) = (self.s, self.opts.mode);
        let detector = &self.detector;
        {
            let inboxes = shard::split_rows(&mut self.inbox_grants, 1, &shards);
            let arbs = shard::split_rows(&mut self.accept_arbs, 1, &shards);
            let actives = shard::split_rows(&mut self.active, s, &shards);
            let mut ctxs = Vec::with_capacity(shards.len());
            for ((((&shard, inbox_grants), accept_arbs), active), lane) in shards
                .iter()
                .zip(inboxes)
                .zip(arbs)
                .zip(actives)
                .zip(lanes.iter_mut())
            {
                ctxs.push(AcceptCtx {
                    shard,
                    inbox_grants,
                    accept_arbs,
                    active,
                    lane,
                });
            }
            shard::map_shards(ctxs, |_, ctx| {
                let AcceptCtx {
                    shard,
                    inbox_grants,
                    accept_arbs,
                    active,
                    lane,
                } = ctx;
                for src in shard.start..shard.end {
                    let row = src - shard.start;
                    lane.scratch.grants_in.clear();
                    std::mem::swap(&mut lane.scratch.grants_in, &mut inbox_grants[row]);
                    lane.grants += lane.scratch.grants_in.len() as u64;
                    lane.scratch.grants.clear();
                    lane.scratch
                        .grants
                        .extend(lane.scratch.grants_in.iter().map(|&(g, _)| g));
                    if matches!(mode, SchedulerMode::Projector) {
                        lane.scratch.accepts.clear();
                        lane.scratch.accepts.extend(
                            lane.scratch
                                .grants
                                .iter()
                                .filter(|g| detector.usable(src, g.dst, g.port))
                                .map(|g| Accept {
                                    dst: g.dst,
                                    port: g.port,
                                }),
                        );
                    } else {
                        let (arb, grants, accepts) = (
                            &mut accept_arbs[row],
                            &lane.scratch.grants,
                            &mut lane.scratch.accepts,
                        );
                        arb.accept_into(
                            s,
                            grants,
                            |dst, port| detector.usable(src, dst, port),
                            accepts,
                        );
                    }
                    lane.accepts += lane.scratch.accepts.len() as u64;
                    for a in &lane.scratch.accepts {
                        active[row * s + a.port] = Some(a.dst);
                    }
                    if matches!(mode, SchedulerMode::Stateful) {
                        for (g, debit) in &lane.scratch.grants_in {
                            let kept = lane
                                .scratch
                                .accepts
                                .iter()
                                .any(|a| a.dst == g.dst && a.port == g.port);
                            if !kept && *debit > 0 {
                                lane.reverts.push((g.dst as u32, src as u32, *debit));
                            }
                        }
                    }
                }
            });
        }
        let (mut total_grants, mut total_accepts) = (0u64, 0u64);
        for lane in &lanes {
            total_grants += lane.grants;
            total_accepts += lane.accepts;
            for &(granter, src, debit) in &lane.reverts {
                self.matrices[granter as usize].revert(src as usize, debit);
            }
        }
        self.par.lanes = lanes;
        self.match_rec.record_epoch(total_grants, total_accepts);
        self.stats.grants_issued += total_grants;
        self.stats.accepts_made += total_accepts;
    }

    /// Parallel GRANT (sharded by granter ToR): request inboxes, grant
    /// arbiters, demand matrices and outgoing grant buckets are all
    /// granter-row state; the dirty-index merge concatenates lanes in
    /// shard order, matching the sequential granter-ascending scan.
    pub(super) fn step_grant_parallel(&mut self, epoch: u64) {
        debug_assert!(!self.opts.selective_relay, "relay runs are sequential");
        self.clear_grant_buckets();
        let shards = shard::partition(self.n, self.par_workers());
        let mut lanes = take_lanes(&mut self.par, shards.len());
        let (n, s, mode) = (self.n, self.s, self.opts.mode);
        let stateful = matches!(mode, SchedulerMode::Stateful);
        let epoch_capacity = self.epoch_capacity;
        let host_buffer = self.opts.host_buffer_bytes;
        let detector = &self.detector;
        let topo = &self.topo;
        let faults = &self.faults;
        let rx_buffer = &self.rx_buffer[..];
        {
            let inboxes = shard::split_rows(&mut self.inbox_requests, 1, &shards);
            let arbs = shard::split_rows(&mut self.grant_arbs, 1, &shards);
            let buckets = shard::split_rows(&mut self.grant_buckets, n, &shards);
            let flags = shard::split_rows(&mut self.msg_flags, n, &shards);
            // `matrices` is empty outside stateful mode: hand out empty
            // windows instead of row ranges then.
            let mut mat_rest: &mut [DemandMatrix] = &mut self.matrices;
            let mut ctxs = Vec::with_capacity(shards.len());
            for (((((&shard, inbox_requests), grant_arbs), grant_buckets), msg_flags), lane) in
                shards
                    .iter()
                    .zip(inboxes)
                    .zip(arbs)
                    .zip(buckets)
                    .zip(flags)
                    .zip(lanes.iter_mut())
            {
                let take = if stateful { shard.len() } else { 0 };
                let (matrices, rest) = mat_rest.split_at_mut(take);
                mat_rest = rest;
                ctxs.push(GrantCtx {
                    shard,
                    inbox_requests,
                    grant_arbs,
                    matrices,
                    grant_buckets,
                    msg_flags,
                    lane,
                });
            }
            shard::map_shards(ctxs, |_, ctx| {
                let GrantCtx {
                    shard,
                    inbox_requests,
                    grant_arbs,
                    matrices,
                    grant_buckets,
                    msg_flags,
                    lane,
                } = ctx;
                // Shard-local `push_grant`: identical writes, granter rows
                // only, dirty indices collected on the lane.
                let push_grant = |grant_buckets: &mut [Vec<(u32, u64)>],
                                  msg_flags: &mut [u8],
                                  lane_dirty: &mut Vec<u32>,
                                  dst: usize,
                                  src: usize,
                                  port: usize,
                                  debit: u64| {
                    let local = (dst - shard.start) * n + src;
                    if grant_buckets[local].is_empty() {
                        lane_dirty.push((dst * n + src) as u32);
                        msg_flags[local] |= GRANT_FLAG;
                    }
                    grant_buckets[local].push((port as u32, debit));
                };
                #[allow(clippy::needless_range_loop)] // dst drives several arrays
                for dst in shard.start..shard.end {
                    let row = dst - shard.start;
                    lane.scratch.reqs.clear();
                    std::mem::swap(&mut lane.scratch.reqs, &mut inbox_requests[row]);
                    if faults.greedy(dst) {
                        // Byzantine-lite misbehavior, mirroring the
                        // sequential step: discard the swapped-in requests
                        // and grant every port round-robin over sources.
                        for port in 0..s {
                            if let Some(src) = greedy::greedy_source(topo, n, epoch, dst, port) {
                                push_grant(
                                    grant_buckets,
                                    msg_flags,
                                    &mut lane.dirty,
                                    dst,
                                    src,
                                    port,
                                    0,
                                );
                            }
                        }
                        continue;
                    }
                    if let Some(cap) = host_buffer {
                        if rx_buffer[dst] > cap / 2 {
                            continue;
                        }
                    }
                    if stateful {
                        for r in &lane.scratch.reqs {
                            matrices[row].report(r.src, r.value as u64);
                        }
                    }
                    if lane.scratch.reqs.is_empty() && !stateful {
                        continue;
                    }
                    match mode {
                        SchedulerMode::Base | SchedulerMode::Iterative { .. } => {
                            lane.scratch.srcs.clear();
                            lane.scratch
                                .srcs
                                .extend(lane.scratch.reqs.iter().map(|r| r.src));
                            grant_arbs[row].grant_into(
                                s,
                                &lane.scratch.srcs,
                                |src, port| detector.usable(src, dst, port),
                                &mut lane.scratch.grant_pairs,
                            );
                            for &(src, port) in &lane.scratch.grant_pairs {
                                push_grant(
                                    grant_buckets,
                                    msg_flags,
                                    &mut lane.dirty,
                                    dst,
                                    src,
                                    port,
                                    0,
                                );
                            }
                        }
                        SchedulerMode::Stateful => {
                            let matrix = &matrices[row];
                            lane.scratch.srcs.clear();
                            lane.scratch
                                .srcs
                                .extend((0..n).filter(|&src| matrix.has_pending(src)));
                            if lane.scratch.srcs.is_empty() {
                                continue;
                            }
                            grant_arbs[row].grant_into(
                                s,
                                &lane.scratch.srcs,
                                |src, port| detector.usable(src, dst, port),
                                &mut lane.scratch.grant_pairs,
                            );
                            for &(src, port) in &lane.scratch.grant_pairs {
                                let debit = matrices[row].debit(src, epoch_capacity);
                                push_grant(
                                    grant_buckets,
                                    msg_flags,
                                    &mut lane.dirty,
                                    dst,
                                    src,
                                    port,
                                    debit,
                                );
                            }
                        }
                        SchedulerMode::DataSize | SchedulerMode::HolDelay { .. } => {
                            let datasize = matches!(mode, SchedulerMode::DataSize);
                            lane.scratch.vals.clear();
                            lane.scratch
                                .vals
                                .extend(lane.scratch.reqs.iter().map(|r| (r.src, r.value)));
                            for port in 0..s {
                                lane.scratch.usable_vals.clear();
                                lane.scratch.usable_vals.extend(
                                    lane.scratch
                                        .vals
                                        .iter()
                                        .copied()
                                        .filter(|&(src, v)| {
                                            (!datasize || v > 0.0)
                                                && detector.usable(src, dst, port)
                                        })
                                        .filter(|&(src, _)| topo.port_reaches(src, port, dst)),
                                );
                                if let Some(src) =
                                    informative::pick_max_value(&lane.scratch.usable_vals)
                                {
                                    let v = lane
                                        .scratch
                                        .vals
                                        .iter_mut()
                                        .find(|(x, _)| *x == src)
                                        .unwrap();
                                    v.1 = if datasize {
                                        (v.1 - epoch_capacity as f64).max(0.0)
                                    } else {
                                        -1.0 - v.1.abs()
                                    };
                                    push_grant(
                                        grant_buckets,
                                        msg_flags,
                                        &mut lane.dirty,
                                        dst,
                                        src,
                                        port,
                                        0,
                                    );
                                }
                            }
                        }
                        SchedulerMode::Projector => {
                            lane.scratch.preqs.clear();
                            lane.scratch.preqs.extend(
                                lane.scratch
                                    .reqs
                                    .iter()
                                    .filter(|r| r.port != usize::MAX)
                                    .filter(|r| detector.usable(r.src, dst, r.port))
                                    .map(|r| projector::PortRequest {
                                        src: r.src,
                                        port: r.port,
                                        waiting: r.value,
                                    }),
                            );
                            let grants = projector::grant_by_waiting(s, &lane.scratch.preqs);
                            for (src, port) in grants {
                                push_grant(
                                    grant_buckets,
                                    msg_flags,
                                    &mut lane.dirty,
                                    dst,
                                    src,
                                    port,
                                    0,
                                );
                            }
                        }
                    }
                }
            });
        }
        for lane in &lanes {
            self.grant_dirty.extend_from_slice(&lane.dirty);
        }
        self.par.lanes = lanes;
    }

    /// Parallel REQUEST (sharded by source ToR): the O(n²) threshold scan
    /// over `queue_bytes` plus per-source outbox writes; per-lane dirty
    /// indices concatenate to the sequential source-ascending order.
    pub(super) fn step_request_parallel(&mut self, now: Nanos) {
        debug_assert!(!self.opts.selective_relay, "relay runs are sequential");
        for &i in &self.req_dirty {
            self.msg_flags[i as usize] &= !REQ_FLAG;
        }
        self.req_dirty.clear();
        let shards = shard::partition(self.n, self.par_workers());
        let mut lanes = take_lanes(&mut self.par, shards.len());
        let (n, mode) = (self.n, self.opts.mode);
        let threshold = self.cfg.request_threshold_bytes();
        let topo = &self.topo;
        let queues = &self.queues[..];
        let queue_bytes = &self.queue_bytes[..];
        let enqueued_total = &self.enqueued_total[..];
        {
            let outs = shard::split_rows(&mut self.req_out, n, &shards);
            let ports = shard::split_rows(&mut self.req_port_out, n, &shards);
            let flags = shard::split_rows(&mut self.msg_flags, n, &shards);
            let reported = shard::split_rows(&mut self.reported_total, n, &shards);
            let mut ctxs = Vec::with_capacity(shards.len());
            for (((((&shard, req_out), req_port_out), msg_flags), reported_total), lane) in shards
                .iter()
                .zip(outs)
                .zip(ports)
                .zip(flags)
                .zip(reported)
                .zip(lanes.iter_mut())
            {
                ctxs.push(RequestCtx {
                    shard,
                    req_out,
                    req_port_out,
                    msg_flags,
                    reported_total,
                    lane,
                });
            }
            shard::map_shards(ctxs, |_, ctx| {
                let RequestCtx {
                    shard,
                    req_out,
                    req_port_out,
                    msg_flags,
                    reported_total,
                    lane,
                } = ctx;
                for src in shard.start..shard.end {
                    let base = (src - shard.start) * n;
                    if matches!(mode, SchedulerMode::Projector) {
                        let qs = &queues[src * n..(src + 1) * n];
                        for (dst, preq) in projector::bind_requests(topo, src, qs, now) {
                            req_out[base + dst] = preq.waiting;
                            req_port_out[base + dst] = preq.port;
                            msg_flags[base + dst] |= REQ_FLAG;
                            lane.dirty.push((src * n + dst) as u32);
                        }
                        continue;
                    }
                    for dst in 0..n {
                        if dst == src {
                            continue;
                        }
                        let idx = src * n + dst;
                        if queue_bytes[idx] <= threshold {
                            continue;
                        }
                        let value = match mode {
                            SchedulerMode::DataSize => queue_bytes[idx] as f64,
                            SchedulerMode::HolDelay { alpha } => {
                                informative::hol_delay_value(&queues[idx], now, alpha)
                            }
                            SchedulerMode::Stateful => {
                                let new = enqueued_total[idx] - reported_total[base + dst];
                                reported_total[base + dst] = enqueued_total[idx];
                                new as f64
                            }
                            _ => 0.0,
                        };
                        req_out[base + dst] = value;
                        msg_flags[base + dst] |= REQ_FLAG;
                        lane.dirty.push(idx as u32);
                        lane.requests += 1;
                    }
                }
            });
        }
        for lane in &lanes {
            self.req_dirty.extend_from_slice(&lane.dirty);
            self.stats.requests_sent += lane.requests;
        }
        self.par.lanes = lanes;
    }

    /// Parallel healthy-fabric predefined phase. Shards own source rows:
    /// they inject their own flows at slot boundaries, clear their own
    /// REQ flags, drain their own piggyback queues — and emit slot-tagged
    /// events for every cross-ToR effect. The merge replays events
    /// slot-major, lanes in shard order within a slot, which is exactly
    /// the `(slot, src, port)` order of the sequential loop.
    pub(super) fn predefined_healthy_parallel(
        &mut self,
        flows: &[workload::Flow],
        cursor: usize,
        cache: &PredefinedCache,
        rot: u64,
        t0: Nanos,
        tracker: &mut FlowTracker,
    ) -> usize {
        debug_assert!(!self.opts.selective_relay, "relay runs are sequential");
        debug_assert!(
            !self.faults.gray_active(),
            "gray epochs take the sequential failure path (healthy gate)"
        );
        let (n, pre_slots) = (self.n, self.pre_slots);
        let (pre_slot_len, prop) = (self.pre_slot_len, self.cfg.net.propagation_delay);
        let (piggyback, pb_payload) = (self.cfg.piggyback, self.pb_payload);
        let (pias, pias_th) = (self.cfg.priority_queues, self.pias_th);
        // Flows that arrive during this phase, shared read-only: each
        // shard walks the slice once and enqueues only its own sources.
        let last_start = t0 + (pre_slots as Nanos - 1) * pre_slot_len;
        let end = cursor + flows[cursor..].partition_point(|f| f.arrival <= last_start);
        let phase_flows = &flows[cursor..end];
        let shards = shard::partition(n, self.par_workers());
        let mut lanes = take_lanes(&mut self.par, shards.len());
        let req_out = &self.req_out[..];
        let req_port_out = &self.req_port_out[..];
        let grant_buckets = &self.grant_buckets[..];
        {
            let queues = shard::split_rows(&mut self.queues, n, &shards);
            let qbytes = shard::split_rows(&mut self.queue_bytes, n, &shards);
            let enq = shard::split_rows(&mut self.enqueued_total, n, &shards);
            let flags = shard::split_rows(&mut self.msg_flags, n, &shards);
            let bufs = shard::split_rows(&mut self.relay_buffers, 1, &shards);
            let mut ctxs = Vec::with_capacity(shards.len());
            for ((((((&shard, queues), queue_bytes), enqueued_total), msg_flags), rb), lane) in
                shards
                    .iter()
                    .zip(queues)
                    .zip(qbytes)
                    .zip(enq)
                    .zip(flags)
                    .zip(bufs)
                    .zip(lanes.iter_mut())
            {
                ctxs.push(PredefCtx {
                    shard,
                    queues,
                    queue_bytes,
                    enqueued_total,
                    msg_flags,
                    relay_buffers: rb,
                    lane,
                });
            }
            shard::map_shards(ctxs, |_, ctx| {
                let PredefCtx {
                    shard,
                    queues,
                    queue_bytes,
                    enqueued_total,
                    msg_flags,
                    relay_buffers,
                    lane,
                } = ctx;
                let mut fi = 0usize;
                for slot in 0..pre_slots {
                    let slot_start = t0 + slot as Nanos * pre_slot_len;
                    while fi < phase_flows.len() && phase_flows[fi].arrival <= slot_start {
                        let f = &phase_flows[fi];
                        fi += 1;
                        if f.src < shard.start || f.src >= shard.end {
                            continue;
                        }
                        let row = (f.src - shard.start) * n + f.dst;
                        queues[row].enqueue_flow(f.id, f.bytes, f.arrival, pias, pias_th);
                        enqueued_total[row] += f.bytes;
                        queue_bytes[row] += f.bytes;
                    }
                    let conns =
                        cache.slot_conns_for_srcs(rot, slot, shard.start as u32, shard.end as u32);
                    for conn in conns {
                        let (src, dst) = (conn.src as usize, conn.dst as usize);
                        let row = (src - shard.start) * n + dst;
                        let f = msg_flags[row];
                        if f != 0 {
                            debug_assert_eq!(
                                f & (RELAY_REQ_FLAG | RELAY_GRANT_FLAG),
                                0,
                                "relay messages never exist on the parallel path"
                            );
                            if f & REQ_FLAG != 0 {
                                lane.events.push(Event::Req {
                                    slot: slot as u32,
                                    dst: dst as u32,
                                    src: src as u32,
                                    value: req_out[src * n + dst],
                                    port: port_to_u32(req_port_out[src * n + dst]),
                                });
                                msg_flags[row] &= !REQ_FLAG; // delivered once
                            }
                            if f & GRANT_FLAG != 0 {
                                for &(port, debit) in &grant_buckets[src * n + dst] {
                                    lane.events.push(Event::Grant {
                                        slot: slot as u32,
                                        dst: dst as u32,
                                        granter: src as u32,
                                        port,
                                        debit,
                                    });
                                }
                            }
                        }
                        if piggyback && queue_bytes[row] > 0 {
                            let pkt = queues[row]
                                .dequeue_packet(pb_payload)
                                .expect("non-zero mirror implies a packet");
                            queue_bytes[row] -= pkt.bytes;
                            if pkt.relayed {
                                relay_buffers[src - shard.start].release(pkt.bytes);
                            }
                            lane.pb_packets += 1;
                            lane.pb_bytes += pkt.bytes;
                            lane.events.push(Event::Data {
                                slot: slot as u32,
                                dst: dst as u32,
                                flow: pkt.flow,
                                bytes: pkt.bytes,
                            });
                        }
                    }
                }
            });
        }
        self.replay_slot_major(
            &lanes,
            pre_slots,
            |slot| t0 + (slot as Nanos + 1) * pre_slot_len + prop,
            tracker,
        );
        // Replays above used `&mut self`; fold counters and restore lanes.
        for lane in &lanes {
            self.stats.piggyback_packets += lane.pb_packets;
            self.stats.piggyback_bytes += lane.pb_bytes;
        }
        self.par.lanes = lanes;
        end
    }

    /// Replay lane events slot-major: all lanes' slot-`k` events (lanes
    /// in shard order, each lane's events in emission order) before any
    /// slot-`k+1` event. Per-lane streams are slot-sorted by
    /// construction, so one cursor per lane suffices.
    // lint: hot-path
    fn replay_slot_major(
        &mut self,
        lanes: &[Lane],
        slots: usize,
        arrive_at: impl Fn(usize) -> Nanos,
        tracker: &mut FlowTracker,
    ) {
        let mut ptrs = std::mem::take(&mut self.par.ptrs);
        ptrs.clear();
        ptrs.resize(lanes.len(), 0);
        for slot in 0..slots {
            let arrive = arrive_at(slot);
            for (lane, ptr) in lanes.iter().zip(ptrs.iter_mut()) {
                while let Some(ev) = lane.events.get(*ptr) {
                    if ev.slot() != slot as u32 {
                        break;
                    }
                    *ptr += 1;
                    self.apply_event(*ev, arrive, tracker);
                }
            }
        }
        debug_assert!(
            lanes
                .iter()
                .zip(&ptrs)
                .all(|(lane, &p)| p == lane.events.len()),
            "every event must replay exactly once"
        );
        self.par.ptrs = ptrs;
    }

    /// Apply one cross-ToR event exactly as the sequential loop would
    /// have: inbox pushes for scheduling messages, the full delivery
    /// bookkeeping for data.
    // lint: hot-path
    fn apply_event(&mut self, ev: Event, arrive: Nanos, tracker: &mut FlowTracker) {
        match ev {
            Event::Req {
                dst,
                src,
                value,
                port,
                ..
            } => {
                // lint: allow(H001) inbox vecs recycle capacity across epochs (swap-recycled)
                self.inbox_requests[dst as usize].push(ReqIn {
                    src: src as usize,
                    value,
                    port: port_from_u32(port),
                });
            }
            Event::Grant {
                dst,
                granter,
                port,
                debit,
                ..
            } => {
                // lint: allow(H001) inbox vecs recycle capacity across epochs (swap-recycled)
                self.inbox_grants[dst as usize].push((
                    Grant {
                        dst: granter as usize,
                        port: port as usize,
                    },
                    debit,
                ));
            }
            Event::Data {
                dst, flow, bytes, ..
            } => {
                self.deliver_data(dst as usize, flow, bytes, arrive, tracker);
            }
        }
    }

    /// Parallel quiet scheduled phase: `active_list` is split at source-
    /// run boundaries into per-shard chunks (the list is slot-ordered, so
    /// chunks cover disjoint, ascending source ranges); each shard drains
    /// its own queues and emits `Data` events tagged with the scheduled
    /// slot `k`, replayed in lane order = list order = sequential order.
    pub(super) fn scheduled_batched_parallel(
        &mut self,
        sched_start: Nanos,
        tracker: &mut FlowTracker,
    ) {
        debug_assert!(!self.opts.selective_relay, "relay runs are sequential");
        let list = std::mem::take(&mut self.active_list);
        if list.is_empty() {
            self.active_list = list;
            return;
        }
        let (n, s) = (self.n, self.s);
        let prop = self.cfg.net.propagation_delay;
        let slot_len = self.cfg.epoch.scheduled_slot;
        let k_slots = self.cfg.epoch.scheduled_slots;
        let sched_payload = self.sched_payload;
        let workers = self.par_workers();
        // Chunk starts, aligned so no source's run spans two chunks.
        let mut cuts = std::mem::take(&mut self.par.cuts);
        cuts.clear();
        cuts.push(0);
        for c in 1..workers {
            let mut i = (list.len() * c) / workers;
            if i > 0 {
                let prev = list[i - 1].slot as usize / s;
                while i < list.len() && list[i].slot as usize / s == prev {
                    i += 1;
                }
            }
            if i > *cuts.last().unwrap() && i < list.len() {
                cuts.push(i);
            }
        }
        cuts.push(list.len());
        // Source ranges covered by each chunk tile [0, n).
        let mut shards = Vec::with_capacity(cuts.len() - 1);
        for (ci, w) in cuts.windows(2).enumerate() {
            let start = if ci == 0 {
                0
            } else {
                list[w[0]].slot as usize / s
            };
            let end = if ci == cuts.len() - 2 {
                n
            } else {
                list[w[1]].slot as usize / s
            };
            shards.push(Shard { start, end });
        }
        let mut lanes = take_lanes(&mut self.par, shards.len());
        let failures = &self.failures;
        {
            let queues = shard::split_rows(&mut self.queues, n, &shards);
            let qbytes = shard::split_rows(&mut self.queue_bytes, n, &shards);
            let bufs = shard::split_rows(&mut self.relay_buffers, 1, &shards);
            let mut ctxs = Vec::with_capacity(shards.len());
            for (ci, ((((&shard, queues), queue_bytes), relay_buffers), lane)) in shards
                .iter()
                .zip(queues)
                .zip(qbytes)
                .zip(bufs)
                .zip(lanes.iter_mut())
                .enumerate()
            {
                ctxs.push(SchedCtx {
                    shard,
                    entries: &list[cuts[ci]..cuts[ci + 1]],
                    queues,
                    queue_bytes,
                    relay_buffers,
                    lane,
                });
            }
            shard::map_shards(ctxs, |_, ctx| {
                let SchedCtx {
                    shard,
                    entries,
                    queues,
                    queue_bytes,
                    relay_buffers,
                    lane,
                } = ctx;
                let mut i = 0;
                while i < entries.len() {
                    let src = entries[i].slot as usize / s;
                    let mut run_end = i + 1;
                    while run_end < entries.len() && entries[run_end].slot as usize / s == src {
                        run_end += 1;
                    }
                    let run = &entries[i..run_end];
                    let shared_queue = run
                        .iter()
                        .enumerate()
                        .any(|(a, e)| run[..a].iter().any(|f| f.dst == e.dst));
                    let local = src - shard.start;
                    if shared_queue {
                        // Rare: one queue feeds several ports; replay slot
                        // order exactly like the sequential path.
                        for k in 0..k_slots {
                            for e in run {
                                let port = e.slot as usize % s;
                                let dst = e.dst as usize;
                                let row = local * n + dst;
                                if let Some(pkt) = queues[row].dequeue_packet(sched_payload) {
                                    queue_bytes[row] -= pkt.bytes;
                                    if pkt.relayed {
                                        relay_buffers[local].release(pkt.bytes);
                                    }
                                    if failures.link_up(src, dst, port) {
                                        lane.sched_packets += 1;
                                        lane.sched_bytes += pkt.bytes;
                                        lane.events.push(Event::Data {
                                            slot: k as u32,
                                            dst: e.dst,
                                            flow: pkt.flow,
                                            bytes: pkt.bytes,
                                        });
                                    } else {
                                        lane.lost += 1;
                                    }
                                } else {
                                    lane.oversched += 1;
                                }
                            }
                        }
                    } else {
                        for e in run {
                            let (port, dst) = (e.slot as usize % s, e.dst as usize);
                            let row = local * n + dst;
                            lane.scratch.packets.clear();
                            queues[row].dequeue_packets_into(
                                sched_payload,
                                k_slots,
                                &mut lane.scratch.packets,
                            );
                            let drained: u64 = lane.scratch.packets.iter().map(|p| p.bytes).sum();
                            queue_bytes[row] -= drained;
                            lane.oversched += (k_slots - lane.scratch.packets.len()) as u64;
                            let up = failures.link_up(src, dst, port);
                            for (k, pkt) in lane.scratch.packets.iter().enumerate() {
                                if pkt.relayed {
                                    relay_buffers[local].release(pkt.bytes);
                                }
                                if up {
                                    lane.sched_packets += 1;
                                    lane.sched_bytes += pkt.bytes;
                                    lane.events.push(Event::Data {
                                        slot: k as u32,
                                        dst: e.dst,
                                        flow: pkt.flow,
                                        bytes: pkt.bytes,
                                    });
                                } else {
                                    lane.lost += 1;
                                }
                            }
                        }
                    }
                    i = run_end;
                }
            });
        }
        // Replay deliveries in lane order = active-list order; arrival
        // time derives from the event's scheduled-slot tag.
        for lane in &lanes {
            for ev in &lane.events {
                if let Event::Data {
                    slot,
                    dst,
                    flow,
                    bytes,
                } = *ev
                {
                    let arrive = sched_start + (slot as Nanos + 1) * slot_len + prop;
                    self.deliver_data(dst as usize, flow, bytes, arrive, tracker);
                }
            }
            self.stats.scheduled_packets += lane.sched_packets;
            self.stats.scheduled_bytes += lane.sched_bytes;
            self.stats.lost_packets += lane.lost;
            self.stats.overscheduled_slots += lane.oversched;
        }
        self.par.lanes = lanes;
        self.par.cuts = cuts;
        self.active_list = list;
    }
}
