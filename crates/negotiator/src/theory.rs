//! Closed-form models from the paper.
//!
//! * §3.2.2's matching-efficiency analysis: under saturated uniform
//!   competition among `n` ToRs, a grant is accepted with probability
//!   `E[Y] = 1 − (1 − 1/n)^n → 1 − 1/e ≈ 63%`.
//! * §3.3.1's predefined-phase length: `⌈(N−1)/S⌉` timeslots on the
//!   parallel network, `W` on thin-clos.
//!
//! The A.1 experiment (`fig14` in the harness) checks the simulated match
//! ratio against [`expected_match_efficiency`].

/// `E[Y] = 1 − (1 − 1/n)^n` — expected grant-acceptance probability when
/// `n` ToRs compete (§3.2.2). `n` is the GRANT-ring competitor count:
/// the full ToR count on the parallel network, the source-group size on
/// thin-clos (which is why thin-clos matches slightly better: 0.644 at
/// n=16 vs 0.634 at n=128).
pub fn expected_match_efficiency(n: usize) -> f64 {
    metrics::matchratio::theoretical_match_efficiency(n)
}

/// The `n` to feed [`expected_match_efficiency`] for a topology:
/// competitors per GRANT ring.
pub fn competitors(kind: topology::TopologyKind, n_tors: usize, n_ports: usize) -> usize {
    match kind {
        topology::TopologyKind::Parallel => n_tors,
        topology::TopologyKind::ThinClos => n_tors / n_ports,
    }
}

/// Scheduling delay in epochs of the non-iterative pipeline (§3.3.1):
/// request in epoch `n`, grant in `n+1`, accept + data in `n+2`.
pub const PIPELINE_DELAY_EPOCHS: u64 = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use topology::TopologyKind;

    #[test]
    fn paper_scale_efficiencies() {
        let par = expected_match_efficiency(competitors(TopologyKind::Parallel, 128, 8));
        let thin = expected_match_efficiency(competitors(TopologyKind::ThinClos, 128, 8));
        assert!((par - 0.634).abs() < 0.001);
        assert!((thin - 0.644).abs() < 0.001);
        assert!(thin > par, "thin-clos competes less, matches better");
    }
}
