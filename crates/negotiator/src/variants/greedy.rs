//! Byzantine-lite misbehaving ToR: greedy granting.
//!
//! A ToR marked greedy by the fault-injection layer
//! ([`topology::FaultModel`], `GreedyStart`) stops following the GRANT
//! discipline of §3.2. Instead of granting only requested pairs under the
//! debit bookkeeping, it grants *every* ingress port every epoch,
//! round-robining over sources so the misbehavior is spread evenly and the
//! run stays deterministic. Physics still holds — a grant only goes to a
//! source whose egress port actually reaches the greedy ToR
//! ([`topology::Topology::port_reaches`]) — but the protocol contract is
//! broken: unrequested grants inflate the accept stage's choices, steal
//! ports from honest destinations' grants, and (for the stateful variant)
//! bypass the demand-matrix debits entirely.
//!
//! The logic is a pure function of `(epoch, dst, port)` so the sequential
//! and sharded grant steps produce identical grants regardless of
//! `--workers`.

use topology::Topology;

/// The source a greedy destination grants on `port` this `epoch`, or
/// `None` when no source reaches the port. Round-robin over the `n - 1`
/// non-self sources, offset by `epoch + port` so consecutive epochs and
/// ports pick different victims.
#[inline]
pub fn greedy_source(
    topo: &dyn Topology,
    n: usize,
    epoch: u64,
    dst: usize,
    port: usize,
) -> Option<usize> {
    debug_assert!(n > 1);
    let src = (dst + 1 + ((epoch as usize + port) % (n - 1))) % n;
    if topo.port_reaches(src, port, dst) {
        Some(src)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{NetworkConfig, ParallelNet, ThinClos};

    fn net(n_tors: usize, n_ports: usize) -> NetworkConfig {
        NetworkConfig {
            n_tors,
            n_ports,
            ..NetworkConfig::small_for_tests()
        }
    }

    #[test]
    fn never_grants_self_and_rotates_sources() {
        let topo = ParallelNet::new(net(8, 4));
        for epoch in 0..16 {
            for port in 0..4 {
                let src = greedy_source(&topo, 8, epoch, 3, port).unwrap();
                assert_ne!(src, 3);
            }
        }
        // On a parallel net every port reaches every source, so over n - 1
        // consecutive epochs a fixed port cycles through all 7 others.
        let seen: Vec<usize> = (0..7)
            .map(|e| greedy_source(&topo, 8, e, 3, 0).unwrap())
            .collect();
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7, "rotation covers all sources: {seen:?}");
    }

    #[test]
    fn thin_clos_respects_port_reachability() {
        let topo = ThinClos::new(net(16, 4));
        for epoch in 0..16 {
            for port in 0..4 {
                if let Some(src) = greedy_source(&topo, 16, epoch, 4, port) {
                    assert!(topo.port_reaches(src, port, 4));
                }
            }
        }
    }
}
