//! The design-space variants of Appendix A.2.
//!
//! §3.5 asks whether a little extra complexity would buy NegotiaToR real
//! performance, and answers by building and measuring four richer designs
//! plus ProjecToR's scheduler. This module tree implements them; the epoch
//! engine (`crate::sim`) activates each through
//! [`crate::sim::SchedulerMode`] / the relay option so that data path,
//! workloads and metrics stay identical across the comparison — exactly the
//! paper's methodology of swapping only the scheduling logic.
//!
//! * [`iterative`] — A.2.1: iterative NegotiaToR Matching (ITER_I/III/V);
//!   each extra iteration adds three epochs of scheduling delay.
//! * [`informative`] — A.2.3: requests carrying aggregated queue size
//!   (goodput-oriented) or weighted head-of-line waiting delay
//!   (FCT-oriented, α = 0.001).
//! * [`stateful`] — A.2.4: per-destination demand matrices preventing
//!   over-scheduling.
//! * [`projector`] — A.2.5: ProjecToR-style per-port requests prioritized
//!   by bundle waiting delay.
//! * [`relay`] — A.2.2: traffic-aware selective relay for the thin-clos
//!   topology (elephant-only, congestion-aware two-hop paths).
//!
//! [`greedy`] is not a paper variant but the fault-injection layer's
//! Byzantine-lite misbehaving ToR: a destination that grants every port
//! every epoch, ignoring requests and the debit discipline.

pub mod greedy;
pub mod informative;
pub mod iterative;
pub mod projector;
pub mod relay;
pub mod stateful;
