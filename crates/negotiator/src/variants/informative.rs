//! Informative requests (Appendix A.2.3).
//!
//! Two request enrichments over binary demand bits:
//!
//! * **Data-size** (goodput-oriented): requests carry the aggregated bytes
//!   of the per-destination queue; destinations grant the largest backlog
//!   first.
//! * **HoL-delay** (FCT-oriented): requests carry a weighted head-of-line
//!   waiting delay; destinations grant the longest-waiting pair first. The
//!   weighting keeps elephant waiting times from masking mice:
//!   `HoL = (1−α)·(HoL_q0 + HoL_q1)/2 + α·HoL_q2` with a small non-zero
//!   `α` (the paper found 0.001 best).

use crate::queues::DestQueue;
use sim::time::Nanos;

/// The paper's best-performing mice/elephant weighting.
pub const DEFAULT_ALPHA: f64 = 0.001;

/// Request priority value under the data-size approach.
pub fn data_size_value(queue: &DestQueue) -> f64 {
    queue.total_bytes() as f64
}

/// Request priority value under the weighted HoL-delay approach.
///
/// Queue levels 0 and 1 hold mice-ish bytes (first 10 KB of each flow),
/// level 2 the elephant remainder. An empty level contributes zero delay.
pub fn hol_delay_value(queue: &DestQueue, now: Nanos, alpha: f64) -> f64 {
    let wait = |level: usize| -> f64 {
        queue
            .hol_enqueued(level)
            .map(|t| (now.saturating_sub(t)) as f64)
            .unwrap_or(0.0)
    };
    (1.0 - alpha) * (wait(0) + wait(1)) / 2.0 + alpha * wait(2)
}

/// Pick the request with the largest value; ties broken by lower source id
/// (a deterministic stand-in for "then consult the ring").
pub fn pick_max_value(candidates: &[(usize, f64)]) -> Option<usize> {
    candidates
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
        .map(|(src, _)| src)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TH: [u64; 2] = [1_000, 10_000];

    #[test]
    fn data_size_is_queue_total() {
        let mut q = DestQueue::new();
        q.enqueue_flow(1, 12_345, 0, true, TH);
        assert_eq!(data_size_value(&q), 12_345.0);
    }

    #[test]
    fn hol_weights_mice_levels_heavily() {
        let mut q = DestQueue::new();
        // Elephant enqueued long ago: only level 2 has old data after the
        // mice levels drain.
        q.enqueue_flow(1, 50_000, 0, true, TH);
        while q.level_bytes(0) > 0 || q.level_bytes(1) > 0 {
            q.dequeue_packet(1_115);
        }
        let v_old_elephant = hol_delay_value(&q, 1_000_000, DEFAULT_ALPHA);
        // Fresh mice in another queue, waiting only briefly.
        let mut q2 = DestQueue::new();
        q2.enqueue_flow(2, 500, 995_000, true, TH);
        let v_recent_mice = hol_delay_value(&q2, 1_000_000, DEFAULT_ALPHA);
        // 5 µs of mice waiting outranks 1 ms of elephant waiting at α=0.001.
        assert!(
            v_recent_mice > v_old_elephant,
            "mice {v_recent_mice} vs elephant {v_old_elephant}"
        );
    }

    #[test]
    fn hol_zero_for_empty_queue() {
        let q = DestQueue::new();
        assert_eq!(hol_delay_value(&q, 12345, DEFAULT_ALPHA), 0.0);
    }

    #[test]
    fn max_value_pick() {
        assert_eq!(pick_max_value(&[(3, 1.0), (7, 9.0), (5, 9.0)]), Some(5));
        assert_eq!(pick_max_value(&[]), None);
    }
}
