//! Stateful scheduling (Appendix A.2.4).
//!
//! Each destination keeps a demand matrix of pending bytes per source,
//! updated by requests that carry newly arrived byte counts. Grants are
//! only issued while the matrix shows pending data, and each grant
//! tentatively debits one epoch's worth of service; accept feedback either
//! confirms the debit or reverts it. This suppresses the over-scheduling
//! that stateless NegotiaToR tolerates by design.

/// One destination's view of per-source pending demand.
#[derive(Debug, Clone)]
pub struct DemandMatrix {
    pending: Vec<i64>,
}

impl DemandMatrix {
    /// Matrix over `n_tors` sources, all zero.
    pub fn new(n_tors: usize) -> Self {
        DemandMatrix {
            pending: vec![0; n_tors],
        }
    }

    /// A request reported `new_bytes` freshly arrived at `src`.
    pub fn report(&mut self, src: usize, new_bytes: u64) {
        self.pending[src] += new_bytes as i64;
    }

    /// Does the matrix still show pending data for `src`?
    pub fn has_pending(&self, src: usize) -> bool {
        self.pending[src] > 0
    }

    /// Tentatively debit `est_bytes` of service when granting `src`
    /// (clamped at zero — the estimate may overshoot the true backlog).
    pub fn debit(&mut self, src: usize, est_bytes: u64) -> u64 {
        let take = (est_bytes as i64).min(self.pending[src]).max(0);
        self.pending[src] -= take;
        take as u64
    }

    /// The source rejected the grant: restore the tentative debit.
    pub fn revert(&mut self, src: usize, debited: u64) {
        self.pending[src] += debited as i64;
    }

    /// Pending bytes currently recorded for `src` (diagnostics).
    pub fn pending(&self, src: usize) -> i64 {
        self.pending[src]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_debit_revert_cycle() {
        let mut m = DemandMatrix::new(4);
        assert!(!m.has_pending(1));
        m.report(1, 10_000);
        assert!(m.has_pending(1));
        let debited = m.debit(1, 33_000);
        assert_eq!(debited, 10_000, "debit clamps to recorded demand");
        assert!(!m.has_pending(1));
        m.revert(1, debited);
        assert!(m.has_pending(1));
        assert_eq!(m.pending(1), 10_000);
    }

    #[test]
    fn partial_debit() {
        let mut m = DemandMatrix::new(2);
        m.report(0, 100_000);
        assert_eq!(m.debit(0, 33_000), 33_000);
        assert_eq!(m.pending(0), 67_000);
        assert!(m.has_pending(0));
    }

    #[test]
    fn zero_demand_never_grants() {
        let mut m = DemandMatrix::new(2);
        assert_eq!(m.debit(0, 10), 0);
        assert_eq!(m.pending(0), 0);
    }
}
