//! Iterative NegotiaToR Matching (Appendix A.2.1).
//!
//! Classic iterative matchers (PIM, RRM, iSLIP) run several
//! request/grant/accept rounds so unmatched ports get refilled. Transplanted
//! onto a DCN, every extra round costs three more epochs of scheduling delay
//! (one per pipelined step, Figure 4), so ITER_III activates matches that
//! were computed from 8-epoch-old demand. [`IterativeMatcher`] computes the
//! multi-round match itself; the engine delays its activation by
//! `3·(rounds−1)` extra epochs and runs it without speedup, exactly the
//! A.2.1 comparison.

use crate::matching::{Accept, AcceptArbiter, Grant, GrantArbiter};
use topology::Topology;

/// Multi-round matcher reusing the persistent GRANT/ACCEPT ring state.
#[derive(Debug)]
pub struct IterativeMatcher;

impl IterativeMatcher {
    /// Compute a matching with `rounds` iterations over `requests`
    /// (`requests[dst]` = requesting sources). Later rounds only consider
    /// ports still unmatched on both sides — the "indices of unmatched
    /// ports" the iterative variant's extra messages carry.
    ///
    /// Returns accepted matches per source.
    pub fn compute<T: Topology>(
        topo: &T,
        requests: &[Vec<usize>],
        grant_arbs: &mut [GrantArbiter],
        accept_arbs: &mut [AcceptArbiter],
        rounds: usize,
    ) -> Vec<Vec<Accept>> {
        let n = topo.net().n_tors;
        let s = topo.net().n_ports;
        // matched_src[src*s+p] / matched_dst[dst*s+p]: port taken in an
        // earlier round.
        let mut matched_src = vec![false; n * s];
        let mut matched_dst = vec![false; n * s];
        let mut accepted: Vec<Vec<Accept>> = vec![Vec::new(); n];

        for _round in 0..rounds.max(1) {
            // GRANT: each destination fills its still-unmatched ports with
            // requesters whose same-index port is also still unmatched.
            let mut grants_by_src: Vec<Vec<Grant>> = vec![Vec::new(); n];
            for dst in 0..n {
                if requests[dst].is_empty() {
                    continue;
                }
                let grants = grant_arbs[dst].grant(s, &requests[dst], |src, port| {
                    !matched_dst[dst * s + port] && !matched_src[src * s + port]
                });
                for (src, port) in grants {
                    grants_by_src[src].push(Grant { dst, port });
                }
            }
            // ACCEPT: each source takes at most one new grant per port.
            let mut any = false;
            for src in 0..n {
                if grants_by_src[src].is_empty() {
                    continue;
                }
                let accepts = accept_arbs[src].accept(s, &grants_by_src[src], |_, port| {
                    !matched_src[src * s + port]
                });
                for a in accepts {
                    matched_src[src * s + a.port] = true;
                    matched_dst[a.dst * s + a.port] = true;
                    accepted[src].push(a);
                    any = true;
                }
            }
            if !any {
                break; // converged early, no point burning rounds
            }
        }
        accepted
    }

    /// Extra epochs of scheduling delay `rounds` iterations incur over the
    /// non-iterative baseline (three pipelined steps per extra round).
    pub fn extra_delay_epochs(rounds: usize) -> u64 {
        3 * (rounds.max(1) as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Xoshiro256;
    use topology::{validate_matching, AnyTopology, MatchEntry, NetworkConfig, TopologyKind};

    fn setup(topo: &AnyTopology) -> (Vec<GrantArbiter>, Vec<AcceptArbiter>) {
        let n = topo.net().n_tors;
        let mut rng = Xoshiro256::new(21);
        (
            (0..n)
                .map(|d| GrantArbiter::new(topo, d, &mut rng))
                .collect(),
            (0..n)
                .map(|d| AcceptArbiter::new(topo, d, &mut rng))
                .collect(),
        )
    }

    fn all_requests(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|dst| (0..n).filter(|&x| x != dst).collect())
            .collect()
    }

    #[test]
    fn more_rounds_fill_more_ports() {
        let topo = AnyTopology::build(TopologyKind::Parallel, NetworkConfig::small_for_tests());
        let n = topo.net().n_tors;
        let reqs = all_requests(n);

        let count = |rounds: usize| -> usize {
            let (mut ga, mut aa) = setup(&topo);
            IterativeMatcher::compute(&topo, &reqs, &mut ga, &mut aa, rounds)
                .iter()
                .map(|v| v.len())
                .sum()
        };
        let one = count(1);
        let three = count(3);
        let five = count(5);
        assert!(three >= one, "{three} vs {one}");
        assert!(five >= three);
        // With saturated demand, 5 rounds should get close to a perfect
        // matching (all 16×4 ports).
        assert!(five as f64 >= 0.95 * (n * topo.net().n_ports) as f64);
    }

    #[test]
    fn iterative_matchings_stay_collision_free() {
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let topo = AnyTopology::build(kind, NetworkConfig::small_for_tests());
            let n = topo.net().n_tors;
            let (mut ga, mut aa) = setup(&topo);
            let accepted = IterativeMatcher::compute(&topo, &all_requests(n), &mut ga, &mut aa, 5);
            let entries: Vec<MatchEntry> = accepted
                .iter()
                .enumerate()
                .flat_map(|(src, v)| {
                    v.iter().map(move |a| MatchEntry {
                        src,
                        port: a.port,
                        dst: a.dst,
                    })
                })
                .collect();
            validate_matching(&topo, &entries).expect("collision-free");
        }
    }

    #[test]
    fn delay_model() {
        assert_eq!(IterativeMatcher::extra_delay_epochs(1), 0);
        assert_eq!(IterativeMatcher::extra_delay_epochs(3), 6);
        assert_eq!(IterativeMatcher::extra_delay_epochs(5), 12);
    }

    #[test]
    fn empty_requests_empty_match() {
        let topo = AnyTopology::build(TopologyKind::Parallel, NetworkConfig::small_for_tests());
        let n = topo.net().n_tors;
        let (mut ga, mut aa) = setup(&topo);
        let reqs = vec![Vec::new(); n];
        let accepted = IterativeMatcher::compute(&topo, &reqs, &mut ga, &mut aa, 3);
        assert!(accepted.iter().all(|v| v.is_empty()));
    }
}
