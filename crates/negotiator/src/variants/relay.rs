//! Traffic-aware selective relay for thin-clos (Appendix A.2.2).
//!
//! On thin-clos each ToR pair owns exactly one port-to-port path, so
//! elephants can starve while other ports idle. This variant lets a source
//! relay *lowest-priority* (elephant) data through a lightly loaded
//! intermediate ToR, doubling the usable paths — but only when it cannot
//! hurt: mice are never relayed, intermediates with heavy direct traffic on
//! the shared links are excluded, and intermediates refuse relays that
//! would overflow their relay buffer (the congestion control the paper
//! notes plain NegotiaToR does not need).
//!
//! Mechanically the relay piggybacks on NegotiaToR Matching: relay requests
//! ride the REQUEST step, intermediates grant *leftover* ports in the GRANT
//! step, and sources accept relay grants only for ports that direct traffic
//! did not claim (direct traffic is prioritized, Appendix A.2.2 step 3).

use crate::queues::DestQueue;

/// Tuning knobs of the selective relay (the paper reports results "under
/// the optimal relay setting we found"; these defaults play that role).
#[derive(Debug, Clone)]
pub struct RelayPolicy {
    /// Minimum lowest-priority backlog (bytes) of a pair before relaying is
    /// considered — the flow must have "enough data to fill extra links".
    pub min_elephant_backlog: u64,
    /// A port counts as busy with direct traffic above this backlog
    /// (bytes); busy shared links exclude an intermediate.
    pub busy_port_bytes: u64,
    /// Relay buffer capacity per intermediate ToR (bytes); grants stop when
    /// the buffer would overflow.
    pub buffer_capacity: u64,
    /// Max relay volume granted per epoch (bytes), bounding how much a
    /// source may push to one intermediate at a time.
    pub grant_volume: u64,
}

impl RelayPolicy {
    /// Defaults sized in epoch capacities: one scheduled phase moves
    /// `scheduled_slots × payload` bytes per port (≈ 33 KB at paper
    /// defaults).
    pub fn default_for(epoch_capacity_bytes: u64) -> Self {
        RelayPolicy {
            min_elephant_backlog: 4 * epoch_capacity_bytes,
            busy_port_bytes: epoch_capacity_bytes,
            buffer_capacity: 32 * epoch_capacity_bytes,
            grant_volume: epoch_capacity_bytes,
        }
    }
}

/// A relay request: `src` wants intermediate `via` to forward bytes of the
/// pair `src → final_dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayRequest {
    /// Requesting source.
    pub src: usize,
    /// Proposed intermediate.
    pub via: usize,
    /// Final destination of the relayed bytes.
    pub final_dst: usize,
}

/// Per-ToR relay-buffer accounting at an intermediate.
#[derive(Debug, Clone, Default)]
pub struct RelayBuffer {
    in_flight: u64,
}

impl RelayBuffer {
    /// Bytes currently occupying the relay buffer.
    pub fn occupancy(&self) -> u64 {
        self.in_flight
    }

    /// Space left under `policy`.
    pub fn space(&self, policy: &RelayPolicy) -> u64 {
        policy.buffer_capacity.saturating_sub(self.in_flight)
    }

    /// Admit `bytes` of relayed data (called when they arrive).
    pub fn admit(&mut self, bytes: u64) {
        self.in_flight += bytes;
    }

    /// Release `bytes` forwarded onward to the final destination.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(self.in_flight >= bytes, "relay buffer under-run");
        self.in_flight = self.in_flight.saturating_sub(bytes);
    }
}

/// Does the pair `src → dst` qualify for relaying under `policy`?
/// Only a deep elephant (lowest-priority) backlog qualifies; mice levels
/// are irrelevant because mice are never relayed, and already-relayed
/// bytes are subtracted so data never cascades through a second relay.
pub fn pair_qualifies(queue: &DestQueue, policy: &RelayPolicy) -> bool {
    let elephant = queue.level_bytes(crate::queues::PRIORITY_LEVELS - 1);
    elephant.saturating_sub(queue.relayed_bytes()) >= policy.min_elephant_backlog
}

/// Is egress `port` of a ToR too busy with direct traffic to lend to a
/// relay? `direct_backlog_via_port` is the ToR's total queued direct bytes
/// whose only path uses that port.
pub fn port_busy(direct_backlog_via_port: u64, policy: &RelayPolicy) -> bool {
    direct_backlog_via_port > policy.busy_port_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    const TH: [u64; 2] = [1_000, 10_000];

    fn policy() -> RelayPolicy {
        RelayPolicy::default_for(33_450) // 30 slots × 1115 B
    }

    #[test]
    fn only_deep_elephant_backlogs_qualify() {
        let p = policy();
        let mut q = DestQueue::new();
        q.enqueue_flow(1, 9_000, 0, true, TH); // pure mice
        assert!(!pair_qualifies(&q, &p));
        let mut q2 = DestQueue::new();
        q2.enqueue_flow(2, 500_000, 0, true, TH); // elephant
        assert!(pair_qualifies(&q2, &p));
    }

    #[test]
    fn mice_levels_do_not_count_toward_qualification() {
        let p = policy();
        let mut q = DestQueue::new();
        // Many distinct mice flows: lots of bytes, all at levels 0/1.
        for f in 0..40 {
            q.enqueue_flow(f, 9_999, 0, true, TH);
        }
        assert!(q.total_bytes() > p.min_elephant_backlog);
        assert!(!pair_qualifies(&q, &p));
    }

    #[test]
    fn buffer_admission_and_release() {
        let p = policy();
        let mut b = RelayBuffer::default();
        assert_eq!(b.space(&p), p.buffer_capacity);
        b.admit(100_000);
        assert_eq!(b.occupancy(), 100_000);
        assert_eq!(b.space(&p), p.buffer_capacity - 100_000);
        b.release(40_000);
        assert_eq!(b.occupancy(), 60_000);
    }

    #[test]
    fn busy_port_threshold() {
        let p = policy();
        assert!(!port_busy(p.busy_port_bytes, &p));
        assert!(port_busy(p.busy_port_bytes + 1, &p));
    }
}
