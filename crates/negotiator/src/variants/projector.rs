//! ProjecToR-style scheduling (Appendix A.2.5).
//!
//! ProjecToR [21] schedules optical links with per-*port* requests: when a
//! source requests, it has already bound the data bundle to a specific
//! egress port, and requests carry the bundle's measured waiting delay;
//! destinations grant each port to the longest-waiting request. The paper
//! transplants this onto NegotiaToR's fabric (one round, bundle = one
//! epoch's data) and finds it loses to NegotiaToR Matching: port
//! pre-binding wastes flexibility and delay bookkeeping adds complexity.

use crate::queues::DestQueue;
use sim::time::Nanos;
use topology::Topology;

/// A ProjecToR request: `src` asks `dst` for its ingress `port`, citing how
/// long the head bundle has waited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortRequest {
    /// Requesting source.
    pub src: usize,
    /// The egress (= ingress) port the data was bound to.
    pub port: usize,
    /// Waiting delay of the head-of-line bundle, in ns.
    pub waiting: f64,
}

/// Bind each demanded destination to one egress port of `src`, oldest
/// bundles first (the per-port REQUEST step).
///
/// `queues[dst]` are the source's per-destination queues; `now` measures
/// waiting delays. Each port is bound at most once, and a destination is
/// bound to at most one port — ProjecToR's unit of scheduling is one
/// bundle.
pub fn bind_requests<T: Topology>(
    topo: &T,
    src: usize,
    queues: &[DestQueue],
    now: Nanos,
) -> Vec<(usize, PortRequest)> {
    let n_ports = topo.net().n_ports;
    // Collect demanded destinations with their oldest HoL wait.
    let mut demands: Vec<(usize, f64)> = queues
        .iter()
        .enumerate()
        .filter(|&(dst, q)| dst != src && q.has_data())
        .map(|(dst, q)| {
            let oldest = (0..crate::queues::PRIORITY_LEVELS)
                .filter_map(|l| q.hol_enqueued(l))
                .min()
                .unwrap_or(now);
            (dst, now.saturating_sub(oldest) as f64)
        })
        .collect();
    // Longest-waiting bundles bind first.
    demands.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    let mut port_used = vec![false; n_ports];
    let mut out = Vec::new();
    for (dst, waiting) in demands {
        // First free port that reaches dst (thin-clos has exactly one).
        let port = (0..n_ports).find(|&p| !port_used[p] && topo.port_reaches(src, p, dst));
        if let Some(port) = port {
            port_used[port] = true;
            out.push((dst, PortRequest { src, port, waiting }));
        }
        if port_used.iter().all(|&u| u) {
            break;
        }
    }
    out
}

/// GRANT: for each ingress port, grant the longest-waiting request
/// (ties to the lower source id). Returns `(src, port)` grants.
pub fn grant_by_waiting(n_ports: usize, requests: &[PortRequest]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for port in 0..n_ports {
        let winner = requests.iter().filter(|r| r.port == port).max_by(|a, b| {
            a.waiting
                .partial_cmp(&b.waiting)
                .unwrap()
                .then(b.src.cmp(&a.src))
        });
        if let Some(r) = winner {
            out.push((r.src, port));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{AnyTopology, NetworkConfig, TopologyKind};

    const TH: [u64; 2] = [1_000, 10_000];

    fn queues_with(n: usize, demands: &[(usize, u64, Nanos)]) -> Vec<DestQueue> {
        let mut qs: Vec<DestQueue> = (0..n).map(|_| DestQueue::new()).collect();
        for &(dst, bytes, at) in demands {
            qs[dst].enqueue_flow(dst as u64, bytes, at, true, TH);
        }
        qs
    }

    #[test]
    fn binds_oldest_first_one_port_each() {
        let topo = AnyTopology::build(TopologyKind::Parallel, NetworkConfig::small_for_tests());
        // dst 1 waited longest, then 2, then 3.
        let qs = queues_with(16, &[(1, 500, 0), (2, 500, 100), (3, 500, 200)]);
        let reqs = bind_requests(&topo, 0, &qs, 1_000);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].0, 1, "oldest bundle binds first");
        let ports: std::collections::BTreeSet<usize> = reqs.iter().map(|(_, r)| r.port).collect();
        assert_eq!(ports.len(), 3, "distinct ports");
    }

    #[test]
    fn binding_saturates_at_port_count() {
        let topo = AnyTopology::build(TopologyKind::Parallel, NetworkConfig::small_for_tests());
        let demands: Vec<(usize, u64, Nanos)> = (1..9).map(|d| (d, 500u64, 0 as Nanos)).collect();
        let reqs = bind_requests(&topo, 0, &queues_with(16, &demands), 1_000);
        assert_eq!(reqs.len(), 4, "only 4 ports available");
    }

    #[test]
    fn thin_clos_binding_respects_reachability() {
        let topo = AnyTopology::build(TopologyKind::ThinClos, NetworkConfig::small_for_tests());
        // src 0 (group 0): dst 5 (group 1) must use port 1; dst 9 (group 2)
        // port 2.
        let qs = queues_with(16, &[(5, 500, 0), (9, 500, 0)]);
        let reqs = bind_requests(&topo, 0, &qs, 100);
        let by_dst: std::collections::BTreeMap<usize, usize> =
            reqs.iter().map(|&(d, r)| (d, r.port)).collect();
        assert_eq!(by_dst[&5], 1);
        assert_eq!(by_dst[&9], 2);
    }

    #[test]
    fn grant_prefers_longest_waiting() {
        let reqs = vec![
            PortRequest {
                src: 1,
                port: 0,
                waiting: 10.0,
            },
            PortRequest {
                src: 2,
                port: 0,
                waiting: 90.0,
            },
            PortRequest {
                src: 3,
                port: 2,
                waiting: 5.0,
            },
        ];
        let grants = grant_by_waiting(4, &reqs);
        assert!(grants.contains(&(2, 0)));
        assert!(grants.contains(&(3, 2)));
        assert_eq!(grants.len(), 2);
    }
}
