//! Epoch timing and feature configuration (§3.3, §3.6.4, §4.1).

use sim::time::Nanos;
use topology::NetworkConfig;

/// Timing of one NegotiaToR epoch (Figure 2).
///
/// An epoch is a *predefined phase* — `predefined_slots` (a topology
/// property) short timeslots, each opening with a guardband that absorbs
/// the reconfiguration delay, followed by a data window carrying the
/// scheduling-message bundle plus a small piggybacked payload — and a
/// *scheduled phase* of `scheduled_slots` longer slots with no
/// reconfiguration at all, each carrying one data packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochConfig {
    /// Guardband absorbing reconfiguration delay + clock drift (paper: 10 ns).
    pub guardband: Nanos,
    /// Transmission window of one predefined-phase timeslot (paper: 50 ns).
    pub predefined_window: Nanos,
    /// Length of one scheduled-phase timeslot (paper: 90 ns).
    pub scheduled_slot: Nanos,
    /// Number of scheduled-phase timeslots (paper: 30).
    pub scheduled_slots: usize,
    /// Bytes of the scheduling-message bundle (request+grant+accept headers)
    /// at the head of each predefined-phase window (paper: 30 B).
    pub sched_msg_bytes: u64,
    /// Header bytes of a scheduled-phase data packet (paper: 10 B).
    pub data_header_bytes: u64,
}

impl EpochConfig {
    /// The paper's default epoch (§4.1): 60 ns predefined slots
    /// (10 + 50), 30 × 90 ns scheduled slots.
    pub fn paper_default() -> Self {
        EpochConfig {
            guardband: 10,
            predefined_window: 50,
            scheduled_slot: 90,
            scheduled_slots: 30,
            sched_msg_bytes: 30,
            data_header_bytes: 10,
        }
    }

    /// Duration of one predefined-phase timeslot.
    pub fn predefined_slot(&self) -> Nanos {
        self.guardband + self.predefined_window
    }

    /// Duration of the predefined phase given the topology's slot count.
    pub fn predefined_len(&self, slots: usize) -> Nanos {
        self.predefined_slot() * slots as Nanos
    }

    /// Duration of the scheduled phase.
    pub fn scheduled_len(&self) -> Nanos {
        self.scheduled_slot * self.scheduled_slots as Nanos
    }

    /// Full epoch length given the topology's predefined slot count.
    pub fn epoch_len(&self, predefined_slots: usize) -> Nanos {
        self.predefined_len(predefined_slots) + self.scheduled_len()
    }

    /// Fraction of the epoch spent in guardbands (§3.6.4 wants ≤ 10%).
    pub fn guard_overhead(&self, predefined_slots: usize) -> f64 {
        (self.guardband * predefined_slots as Nanos) as f64
            / self.epoch_len(predefined_slots) as f64
    }

    /// A variant with a different reconfiguration delay, lengthening the
    /// scheduled phase so the guardband overhead ratio stays put (the
    /// Figure 8 sweep: "the length of the scheduled phase is accordingly
    /// adjusted to control the reconfiguration overhead"). Needs the
    /// topology's predefined slot count to solve for the slot budget.
    pub fn with_guardband(&self, guardband: Nanos, predefined_slots: usize) -> Self {
        let r0 = self.guard_overhead(predefined_slots);
        let p = predefined_slots as f64;
        let g = guardband as f64;
        // overhead = P·g / (P·(g+w) + slot·k)  ⇒  solve for k.
        let k = (p * (g / r0 - g - self.predefined_window as f64) / self.scheduled_slot as f64)
            .round()
            .max(1.0) as usize;
        EpochConfig {
            guardband,
            scheduled_slots: k,
            ..self.clone()
        }
    }
}

/// Full NegotiaToR configuration.
#[derive(Debug, Clone)]
pub struct NegotiatorConfig {
    /// Physical network parameters.
    pub net: NetworkConfig,
    /// Epoch timing.
    pub epoch: EpochConfig,
    /// Data piggybacking in the predefined phase (§3.4.1, "PB").
    pub piggyback: bool,
    /// PIAS-style priority queues at sources (§3.4.2, "PQ").
    pub priority_queues: bool,
    /// Request threshold in piggybacked packets: with PB on, a request is
    /// sent only when a per-destination queue holds more than this many
    /// piggyback payloads (§3.4.1; paper: 3). Ignored when PB is off.
    pub request_threshold_packets: u64,
    /// Seed for ring initialization and any scheduler-internal randomness.
    pub seed: u64,
}

impl NegotiatorConfig {
    /// The paper's §4.1 setup with both FCT optimizations on.
    pub fn paper_default(net: NetworkConfig) -> Self {
        NegotiatorConfig {
            net,
            epoch: EpochConfig::paper_default(),
            piggyback: true,
            priority_queues: true,
            request_threshold_packets: 3,
            seed: 0xDC0C_0FFE,
        }
    }

    /// Payload bytes of one piggybacked packet: what fits in the
    /// predefined window after the scheduling-message bundle (paper: 595 B).
    pub fn piggyback_payload(&self) -> u64 {
        self.net
            .port_bandwidth
            .bytes_in(self.epoch.predefined_window)
            .saturating_sub(self.epoch.sched_msg_bytes)
    }

    /// Payload bytes of one scheduled-phase packet (paper: 1115 B).
    pub fn scheduled_payload(&self) -> u64 {
        self.net
            .port_bandwidth
            .bytes_in(self.epoch.scheduled_slot)
            .saturating_sub(self.epoch.data_header_bytes)
    }

    /// Queue depth (bytes) above which a request is sent.
    pub fn request_threshold_bytes(&self) -> u64 {
        if self.piggyback {
            self.request_threshold_packets * self.piggyback_payload()
        } else {
            0
        }
    }

    /// PIAS demotion thresholds (§4.1): the first 1 KB of a flow goes to
    /// the highest priority, the next 9 KB to the middle one, the rest to
    /// the lowest.
    pub fn pias_thresholds(&self) -> [u64; 2] {
        [1_000, 10_000]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_epoch_is_3_66_us() {
        let e = EpochConfig::paper_default();
        assert_eq!(e.predefined_slot(), 60);
        assert_eq!(e.predefined_len(16), 960);
        assert_eq!(e.scheduled_len(), 2_700);
        assert_eq!(e.epoch_len(16), 3_660);
        // §4.1: guardbands account for 4.37% of the epoch.
        assert!((e.guard_overhead(16) - 0.0437).abs() < 0.001);
    }

    #[test]
    fn payload_sizes_match_paper() {
        let cfg = NegotiatorConfig::paper_default(NetworkConfig::paper_default());
        assert_eq!(cfg.piggyback_payload(), 595);
        assert_eq!(cfg.scheduled_payload(), 1_115);
        assert_eq!(cfg.request_threshold_bytes(), 3 * 595);
    }

    #[test]
    fn threshold_disabled_without_piggyback() {
        let mut cfg = NegotiatorConfig::paper_default(NetworkConfig::paper_default());
        cfg.piggyback = false;
        assert_eq!(cfg.request_threshold_bytes(), 0);
    }

    #[test]
    fn guardband_sweep_keeps_overhead_ratio() {
        let base = EpochConfig::paper_default();
        for g in [20u64, 50, 100] {
            let e = base.with_guardband(g, 16);
            assert!(
                (e.guard_overhead(16) - base.guard_overhead(16)).abs() < 0.002,
                "guard {g}: overhead {}",
                e.guard_overhead(16)
            );
            assert!(e.scheduled_slots > base.scheduled_slots);
        }
        // Identity when the guardband does not change.
        assert_eq!(base.with_guardband(10, 16).scheduled_slots, 30);
    }

    #[test]
    fn no_speedup_shrinks_packets() {
        let cfg = NegotiatorConfig::paper_default(NetworkConfig::paper_no_speedup());
        // 50 Gbps port: 50 ns window carries 312 B; 90 ns slot carries 562 B.
        assert_eq!(cfg.piggyback_payload(), 312 - 30);
        assert_eq!(cfg.scheduled_payload(), 562 - 10);
    }
}
