//! Fault detection and recovery (§3.6.1).
//!
//! Ground-truth failures live in `topology::LinkFailures`. ToRs cannot see
//! that state directly; they infer it from the predefined phase: every ToR
//! sends a dummy message even when it has nothing to schedule, and each
//! dummy carries feedback about whether bits arrived in the reverse
//! direction. A ToR that consistently hears nothing on an ingress port
//! declares the ingress fiber down; repeated "nothing arrived from you"
//! feedback pointing at one egress port makes the sender declare that
//! egress fiber down. Detections are broadcast, so every ToR's scheduler
//! excludes the same links (grants and accepts skip them); once dummies
//! flow again the link is re-admitted.
//!
//! [`FaultDetector`] models this with per-direction miss counters advanced
//! once per epoch. Detection therefore lags a real failure by
//! [`DETECT_EPOCHS`] epochs and recovery by one epoch — the windows during
//! which Figure 19's zero-bandwidth epochs occur.

/// Consecutive silent epochs before a link is declared down.
pub const DETECT_EPOCHS: u32 = 2;

/// The scheduler-visible (detected + broadcast) failure view.
#[derive(Debug, Clone)]
pub struct FaultDetector {
    n_ports: usize,
    egress_miss: Vec<u32>,
    ingress_miss: Vec<u32>,
    egress_excluded: Vec<bool>,
    ingress_excluded: Vec<bool>,
}

impl FaultDetector {
    /// Detector over `n_tors × n_ports`, everything healthy.
    pub fn new(n_tors: usize, n_ports: usize) -> Self {
        FaultDetector {
            n_ports,
            egress_miss: vec![0; n_tors * n_ports],
            ingress_miss: vec![0; n_tors * n_ports],
            egress_excluded: vec![false; n_tors * n_ports],
            ingress_excluded: vec![false; n_tors * n_ports],
        }
    }

    fn idx(&self, tor: usize, port: usize) -> usize {
        tor * self.n_ports + port
    }

    /// Advance one epoch of observations for a single directed link pair:
    /// `delivered` says whether at least one predefined-phase transmission
    /// over egress `(tor, port)` got through this epoch (the feedback the
    /// dummies provide).
    pub fn observe_egress(&mut self, tor: usize, port: usize, delivered: bool) {
        let i = self.idx(tor, port);
        if delivered {
            self.egress_miss[i] = 0;
            self.egress_excluded[i] = false; // repair detected, re-admit
        } else {
            self.egress_miss[i] = self.egress_miss[i].saturating_add(1);
            if self.egress_miss[i] >= DETECT_EPOCHS {
                self.egress_excluded[i] = true;
            }
        }
    }

    /// Same for the ingress direction: `heard` says whether `(tor, port)`
    /// received bits from anyone this epoch.
    pub fn observe_ingress(&mut self, tor: usize, port: usize, heard: bool) {
        let i = self.idx(tor, port);
        if heard {
            self.ingress_miss[i] = 0;
            self.ingress_excluded[i] = false;
        } else {
            self.ingress_miss[i] = self.ingress_miss[i].saturating_add(1);
            if self.ingress_miss[i] >= DETECT_EPOCHS {
                self.ingress_excluded[i] = true;
            }
        }
    }

    /// Is egress `(tor, port)` currently excluded from scheduling?
    pub fn egress_excluded(&self, tor: usize, port: usize) -> bool {
        self.egress_excluded[self.idx(tor, port)]
    }

    /// Is ingress `(tor, port)` currently excluded from scheduling?
    pub fn ingress_excluded(&self, tor: usize, port: usize) -> bool {
        self.ingress_excluded[self.idx(tor, port)]
    }

    /// May the scheduler use the path `(src, port) → (dst, port)`?
    pub fn usable(&self, src: usize, dst: usize, port: usize) -> bool {
        !self.egress_excluded(src, port) && !self.ingress_excluded(dst, port)
    }

    /// True when the detector carries no state at all: no exclusions and
    /// every miss counter at zero. In this state a round of all-success
    /// observations is a no-op, which is what lets the epoch engine skip
    /// observation bookkeeping entirely while the fabric is healthy.
    pub fn is_quiescent(&self) -> bool {
        self.egress_miss.iter().all(|&m| m == 0)
            && self.ingress_miss.iter().all(|&m| m == 0)
            && !self.egress_excluded.iter().any(|&x| x)
            && !self.ingress_excluded.iter().any(|&x| x)
    }

    /// Number of currently excluded directed links.
    pub fn excluded_count(&self) -> usize {
        self.egress_excluded.iter().filter(|&&x| x).count()
            + self.ingress_excluded.iter().filter(|&&x| x).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_needs_consecutive_misses() {
        let mut d = FaultDetector::new(4, 2);
        d.observe_egress(0, 0, false);
        assert!(!d.egress_excluded(0, 0), "one miss is not enough");
        d.observe_egress(0, 0, false);
        assert!(d.egress_excluded(0, 0));
        assert!(!d.usable(0, 3, 0));
        assert!(d.usable(0, 3, 1), "other port unaffected");
    }

    #[test]
    fn delivery_resets_the_counter() {
        let mut d = FaultDetector::new(4, 2);
        d.observe_egress(1, 1, false);
        d.observe_egress(1, 1, true);
        d.observe_egress(1, 1, false);
        assert!(!d.egress_excluded(1, 1), "non-consecutive misses ignored");
    }

    #[test]
    fn recovery_readmits_immediately() {
        let mut d = FaultDetector::new(4, 2);
        for _ in 0..5 {
            d.observe_ingress(2, 0, false);
        }
        assert!(d.ingress_excluded(2, 0));
        d.observe_ingress(2, 0, true);
        assert!(!d.ingress_excluded(2, 0));
        assert!(d.usable(1, 2, 0));
    }

    #[test]
    fn usable_combines_both_directions() {
        let mut d = FaultDetector::new(4, 2);
        for _ in 0..DETECT_EPOCHS {
            d.observe_egress(0, 0, false);
            d.observe_ingress(3, 0, false);
        }
        assert!(!d.usable(0, 1, 0), "src egress excluded");
        assert!(!d.usable(1, 3, 0), "dst ingress excluded");
        assert!(d.usable(1, 2, 0));
        assert_eq!(d.excluded_count(), 2);
    }
}
