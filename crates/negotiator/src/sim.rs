//! The NegotiaToR epoch engine: a deterministic, slot-synchronous
//! packet-level simulator of the full architecture (§3).
//!
//! One call to [`NegotiatorSim::run`] plays a flow trace through the
//! two-phase epochs of Figure 2:
//!
//! * **Epoch start** — the three pipelined scheduling steps (Figure 4):
//!   ACCEPT consumes the grants delivered during the previous epoch and
//!   fixes this epoch's scheduled-phase matching; GRANT consumes the
//!   requests delivered during the previous epoch; REQUEST reads the
//!   per-destination queues. Each step's outgoing messages ride this
//!   epoch's predefined phase and are consumed one epoch later, giving the
//!   ≈2-epoch scheduling delay of §3.3.1.
//! * **Predefined phase** — round-robin all-to-all timeslots carrying
//!   scheduling messages, dummy/feedback messages (fault detection,
//!   §3.6.1) and one piggybacked data packet per connected pair (§3.4.1).
//! * **Scheduled phase** — the accepted matches transmit packets from the
//!   per-destination queues until the epoch ends or the queues empty.
//!
//! Collisions are impossible by construction (GRANT serializes each ingress
//! port, ACCEPT each egress port); integration tests assert this against
//! `topology::validate_matching` anyway.
//!
//! The hot path is allocation-free in steady state and does no dead-slot
//! scanning: ACCEPT builds a dense active-match list the scheduled phase
//! iterates, the predefined pattern comes from a cached table
//! ([`topology::PredefinedCache`]), scheduling messages deliver through
//! per-pair indexed buckets, and every per-epoch buffer lives in a
//! reused scratch struct (see README § Performance). All of it is
//! bit-exact against the straightforward loops it replaced —
//! `tests/golden_report.rs` holds the engine to committed golden reports.
//!
//! The engine also hosts the Appendix A.2 design variants via
//! [`SchedulerMode`] and [`SimOptions::selective_relay`] — only the
//! scheduling logic changes, never the data path, mirroring the paper's
//! methodology. Two deliberate simulation simplifications, both documented
//! in DESIGN.md: flows are injected at timeslot granularity (the paper's
//! packet simulator injects continuously; a timeslot is 60–90 ns), and the
//! stateful variant's accept-feedback reaches the demand matrix one epoch
//! early (the revert path is exercised identically).

use crate::config::NegotiatorConfig;
use crate::fault::FaultDetector;
use crate::matching::{Accept, AcceptArbiter, Grant, GrantArbiter};
use crate::queues::{DestQueue, Packet};
use crate::stats::SchedStats;
use crate::variants::greedy;
use crate::variants::informative;
use crate::variants::iterative::IterativeMatcher;
use crate::variants::projector;
use crate::variants::relay::{self, RelayBuffer, RelayPolicy, RelayRequest};
use crate::variants::stateful::DemandMatrix;
use metrics::{
    trace::{FlightRecorder, FlowSpans, TraceCursor},
    FlowTracker, MatchRatioRecorder, PhaseCounters, PhaseProbe, RunReport,
};
use sim::time::Nanos;
use sim::{BandwidthSeries, Xoshiro256};
use std::collections::VecDeque;
use topology::{
    AnyTopology, FailureSchedule, FaultModel, LinkFailures, PredefinedCache, Topology, TopologyKind,
};
use workload::FlowTrace;

pub use topology::failures::FailureAction;
pub use topology::inject::FaultAction;

mod parallel;

/// Which scheduling logic runs on top of the common data path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerMode {
    /// NegotiaToR Matching as published (§3.2).
    Base,
    /// Appendix A.2.1: iterative matching with `rounds` request/grant/accept
    /// rounds; each extra round delays activation by three epochs.
    Iterative {
        /// Number of matching rounds (1 = equivalent delay to `Base`).
        rounds: usize,
    },
    /// Appendix A.2.3, goodput-oriented: requests carry queue sizes.
    DataSize,
    /// Appendix A.2.3, FCT-oriented: requests carry weighted HoL delays.
    HolDelay {
        /// Mice/elephant weighting (paper's best: 0.001).
        alpha: f64,
    },
    /// Appendix A.2.4: destinations keep demand matrices.
    Stateful,
    /// Appendix A.2.5: ProjecToR-style per-port, delay-prioritized requests.
    Projector,
}

/// Engine options beyond the paper-default configuration.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Scheduling logic.
    pub mode: SchedulerMode,
    /// Traffic-aware selective relay (thin-clos only, Appendix A.2.2).
    pub selective_relay: bool,
    /// Record per-destination receive-bandwidth series with this window
    /// (Appendix A.3 micro-observations); `None` disables.
    pub rx_window: Option<Nanos>,
    /// Record the network-wide delivery series with this window
    /// (fault-tolerance bandwidth plots); `None` disables.
    pub total_rx_window: Option<Nanos>,
    /// §3.6.5 receiver-side traffic management: model the ToR→host
    /// downlink with a bounded receive buffer of this many bytes. The
    /// buffer drains at the host-aggregate rate; while it is more than
    /// half full the ToR withholds grants (backpressure), so fabric
    /// speedup cannot overrun ToR memory. `None` (the paper's evaluation
    /// setting) treats ToRs as sinks.
    pub host_buffer_bytes: Option<u64>,
    /// Intra-run worker threads for the per-ToR phase work (`--workers`).
    /// ToRs are partitioned into contiguous shards (`sim::shard`) and
    /// shard results merge in fixed shard order, so any value — including
    /// the default `1`, which runs fully sequential — produces
    /// byte-identical reports. Selective-relay runs ignore the knob and
    /// stay sequential: relay admission is order-dependent across ToRs
    /// (see `sim/parallel.rs`).
    pub workers: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            mode: SchedulerMode::Base,
            selective_relay: false,
            rx_window: None,
            total_rx_window: None,
            host_buffer_bytes: None,
            workers: 1,
        }
    }
}

/// A request as seen by the destination after the predefined phase.
#[derive(Debug, Clone, Copy)]
struct ReqIn {
    src: usize,
    /// Mode-specific priority value (bytes, weighted delay, new bytes…).
    value: f64,
    /// Pre-bound port for `Projector`; `usize::MAX` otherwise.
    port: usize,
}

/// Per-pair outgoing-message presence bits (`msg_flags`): the predefined
/// phase reads one byte per connection instead of probing the request
/// array and three bucket vectors.
const REQ_FLAG: u8 = 1;
const GRANT_FLAG: u8 = 2;
const RELAY_REQ_FLAG: u8 = 4;
const RELAY_GRANT_FLAG: u8 = 8;

/// One entry of the per-epoch active-transmission list: a `(src, port)`
/// slot that will transmit during the scheduled phase. Direct matches
/// carry their destination; relay slots are looked up in `active_relay`
/// (their remaining volume mutates mid-phase).
#[derive(Debug, Clone, Copy)]
struct ActiveTx {
    /// `src * n_ports + port`.
    slot: u32,
    /// Destination ToR for direct matches (unused for relay slots).
    dst: u32,
    /// True when the slot carries a relay grant instead of a match.
    relay: bool,
}

/// Reusable per-epoch buffers: every `Vec` the scheduling steps used to
/// allocate afresh each epoch lives here instead, cleared and reused so
/// steady-state epochs perform no heap allocation at all.
#[derive(Debug, Default)]
struct SimScratch {
    /// Swapped against `inbox_grants[src]` in ACCEPT.
    grants_in: Vec<(Grant, u64)>,
    /// Grant messages stripped of their stateful debit.
    grants: Vec<Grant>,
    /// ACCEPT output.
    accepts: Vec<Accept>,
    /// Swapped against `inbox_requests[dst]` in GRANT.
    reqs: Vec<ReqIn>,
    /// Requesting sources (base/stateful GRANT input).
    srcs: Vec<usize>,
    /// GRANT output pairs.
    grant_pairs: Vec<(usize, usize)>,
    /// Mutable request values (informative GRANT).
    vals: Vec<(usize, f64)>,
    /// Per-port usable subset of `vals`.
    usable_vals: Vec<(usize, f64)>,
    /// Projector port requests.
    preqs: Vec<projector::PortRequest>,
    /// Swapped against `inbox_relay_req[via]`.
    relay_reqs: Vec<RelayRequest>,
    /// Swapped against `inbox_relay_grant[src]`.
    relay_grants: Vec<(usize, usize, usize, u64)>,
    /// Batched scheduled-phase packets of one matched port.
    packets: Vec<Packet>,
}

/// The full NegotiaToR simulator.
pub struct NegotiatorSim {
    cfg: NegotiatorConfig,
    topo: AnyTopology,
    opts: SimOptions,

    // Derived constants.
    n: usize,
    s: usize,
    pre_slots: usize,
    pre_slot_len: Nanos,
    epoch_len: Nanos,
    pb_payload: u64,
    sched_payload: u64,
    pias_th: [u64; 2],
    /// Bytes one port can move in one scheduled phase (grant debit unit).
    epoch_capacity: u64,

    // Per-ToR state.
    queues: Vec<DestQueue>, // src * n + dst
    grant_arbs: Vec<GrantArbiter>,
    accept_arbs: Vec<AcceptArbiter>,

    // Pipeline outboxes (filled at epoch start, drained by the predefined
    // phase) and inboxes (filled by the predefined phase, consumed next
    // epoch start). Outgoing grants are bucketed per (granter, requester)
    // pair so the predefined phase delivers each connection's messages in
    // O(messages) instead of scanning the granter's whole outbox.
    req_out: Vec<f64>,                    // src * n + dst (live iff REQ_FLAG set)
    req_dirty: Vec<u32>,                  // indices with REQ_FLAG set this epoch
    req_port_out: Vec<usize>,             // projector port binding
    msg_flags: Vec<u8>,                   // src * n + dst: REQ/GRANT/RELAY_* presence
    grant_buckets: Vec<Vec<(u32, u64)>>,  // granter * n + requester: (port, debit)
    grant_dirty: Vec<u32>,                // non-empty bucket indices, cleared per epoch
    port_granted: Vec<bool>,              // granter * s + port (relay leftover-port check)
    inbox_requests: Vec<Vec<ReqIn>>,      // per dst
    inbox_grants: Vec<Vec<(Grant, u64)>>, // per src: (grant, stateful debit)
    active: Vec<Option<usize>>,           // src * s + port -> dst
    /// Dense (src, port)-ordered transmissions of this epoch's scheduled
    /// phase — what the phase iterates instead of all `n · s` slots.
    active_list: Vec<ActiveTx>,

    // Cached predefined schedule (built once per topology).
    pre_cache: PredefinedCache,

    // Variant state.
    matrices: Vec<DemandMatrix>, // stateful (empty otherwise)
    enqueued_total: Vec<u64>,    // src * n + dst, lifetime enqueued bytes
    reported_total: Vec<u64>,    // stateful: bytes already reported
    iter_pending: VecDeque<Vec<Vec<Accept>>>, // iterative activation queue

    // Selective relay state (outboxes bucketed like the grants above).
    relay_policy: RelayPolicy,
    relay_buffers: Vec<RelayBuffer>,
    relay_req_buckets: Vec<Vec<RelayRequest>>, // src * n + via
    relay_req_dirty: Vec<u32>,
    relay_grant_buckets: Vec<Vec<(u32, u32, u64)>>, // via * n + src: (port, final, vol)
    relay_grant_dirty: Vec<u32>,
    inbox_relay_req: Vec<Vec<RelayRequest>>, // per via
    inbox_relay_grant: Vec<Vec<(usize, usize, usize, u64)>>, // per src: (via, port, final, vol)
    active_relay: Vec<Option<(usize, usize, u64)>>, // src*s+port -> (via, final, vol left)

    // Dense mirror of every queue's total bytes (src * n + dst), updated
    // on each enqueue/dequeue: the REQUEST scan and the piggyback probe
    // read this contiguous array instead of the queue structs.
    queue_bytes: Vec<u64>,

    // Per-port direct-backlog sums (selective relay only): tor * s + port,
    // maintained incrementally on every enqueue/dequeue so the relay
    // steps' busy-port checks are O(1) instead of O(n).
    backlog_by_port: Vec<u64>,
    pair_port_tbl: Vec<u8>, // src * n + dst -> thin-clos pair port

    /// False after the predefined phase took the healthy-fabric fast path
    /// (skipping observation is a detector no-op then).
    observe_pending: bool,

    // Failures: the shared once-sorted, cursor-consumed schedule.
    failures: LinkFailures,
    detector: FaultDetector,
    fail_sched: FailureSchedule,
    // Adversarial fault families (flap / partition / gray / greedy) layered
    // on top of the clean failure schedule.
    faults: FaultModel,
    // Per-epoch observation scratch.
    egress_attempted: Vec<bool>,
    egress_ok: Vec<bool>,
    ingress_attempted: Vec<bool>,
    ingress_ok: Vec<bool>,

    // §3.6.5 receiver-side buffers (empty unless host_buffer_bytes set).
    rx_buffer: Vec<u64>,
    host_drain_per_epoch: u64,

    // Metrics.
    tracker: Option<FlowTracker>,
    match_rec: MatchRatioRecorder,
    stats: SchedStats,
    rx_series: Vec<BandwidthSeries>,
    total_rx: Option<BandwidthSeries>,
    phase_probe: Option<PhaseProbe>,
    /// Flight recorder (`None` = tracing off: one branch per epoch).
    recorder: Option<Box<FlightRecorder>>,
    ran_duration: Nanos,

    // Reusable per-epoch buffers.
    scratch: SimScratch,
    /// Per-shard lanes + merge cursors for the intra-run parallel path
    /// (`opts.workers > 1`); empty and untouched when sequential.
    par: parallel::ParState,

    ran: bool,
}

impl NegotiatorSim {
    /// Paper-default simulator over `cfg` on `kind`.
    pub fn new(cfg: NegotiatorConfig, kind: TopologyKind) -> Self {
        Self::with_options(cfg, kind, SimOptions::default())
    }

    /// Simulator with explicit options (variants, recording).
    pub fn with_options(cfg: NegotiatorConfig, kind: TopologyKind, opts: SimOptions) -> Self {
        let topo = AnyTopology::build(kind, cfg.net.clone());
        if opts.selective_relay {
            assert_eq!(
                kind,
                TopologyKind::ThinClos,
                "selective relay targets the thin-clos topology (Appendix A.2.2)"
            );
        }
        let n = cfg.net.n_tors;
        let s = cfg.net.n_ports;
        let pre_slots = topo.predefined_slots();
        let mut rng = Xoshiro256::new(cfg.seed);
        let grant_arbs = (0..n)
            .map(|d| GrantArbiter::new(&topo, d, &mut rng))
            .collect();
        let accept_arbs = (0..n)
            .map(|t| AcceptArbiter::new(&topo, t, &mut rng))
            .collect();
        let sched_payload = cfg.scheduled_payload();
        let epoch_capacity = sched_payload * cfg.epoch.scheduled_slots as u64;
        let stateful = matches!(opts.mode, SchedulerMode::Stateful);
        let rx_series = match opts.rx_window {
            Some(w) => (0..n).map(|_| BandwidthSeries::new(w)).collect(),
            None => Vec::new(),
        };
        let selective_relay = opts.selective_relay;
        let pair_port_tbl = if selective_relay {
            let mut tbl = vec![0u8; n * n];
            for src in 0..n {
                for dst in 0..n {
                    if let Some(p) = topo.pair_port(src, dst) {
                        tbl[src * n + dst] = p as u8;
                    }
                }
            }
            tbl
        } else {
            Vec::new()
        };
        let mut sim = NegotiatorSim {
            n,
            s,
            pre_slots,
            pre_slot_len: cfg.epoch.predefined_slot(),
            epoch_len: cfg.epoch.epoch_len(pre_slots),
            pb_payload: cfg.piggyback_payload().max(1),
            sched_payload: sched_payload.max(1),
            pias_th: cfg.pias_thresholds(),
            epoch_capacity,
            queues: (0..n * n).map(|_| DestQueue::new()).collect(),
            grant_arbs,
            accept_arbs,
            req_out: vec![f64::NAN; n * n],
            req_dirty: Vec::new(),
            req_port_out: vec![usize::MAX; n * n],
            msg_flags: vec![0; n * n],
            grant_buckets: vec![Vec::new(); n * n],
            grant_dirty: Vec::new(),
            port_granted: vec![false; n * s],
            inbox_requests: vec![Vec::new(); n],
            inbox_grants: vec![Vec::new(); n],
            active: vec![None; n * s],
            active_list: Vec::with_capacity(n * s),
            pre_cache: PredefinedCache::build(&topo),
            matrices: if stateful {
                (0..n).map(|_| DemandMatrix::new(n)).collect()
            } else {
                Vec::new()
            },
            enqueued_total: vec![0; n * n],
            reported_total: vec![0; n * n],
            iter_pending: VecDeque::new(),
            relay_policy: RelayPolicy::default_for(epoch_capacity),
            relay_buffers: (0..n).map(|_| RelayBuffer::default()).collect(),
            relay_req_buckets: vec![Vec::new(); if selective_relay { n * n } else { 0 }],
            relay_req_dirty: Vec::new(),
            relay_grant_buckets: vec![Vec::new(); if selective_relay { n * n } else { 0 }],
            relay_grant_dirty: Vec::new(),
            inbox_relay_req: vec![Vec::new(); n],
            inbox_relay_grant: vec![Vec::new(); n],
            active_relay: vec![None; n * s],
            queue_bytes: vec![0; n * n],
            backlog_by_port: if selective_relay {
                vec![0; n * s]
            } else {
                Vec::new()
            },
            pair_port_tbl,
            observe_pending: true,
            failures: LinkFailures::new(n, s),
            detector: FaultDetector::new(n, s),
            fail_sched: FailureSchedule::new(),
            faults: FaultModel::new(),
            egress_attempted: vec![false; n * s],
            egress_ok: vec![false; n * s],
            ingress_attempted: vec![false; n * s],
            ingress_ok: vec![false; n * s],
            rx_buffer: vec![
                0;
                if opts.host_buffer_bytes.is_some() {
                    n
                } else {
                    0
                }
            ],
            host_drain_per_epoch: 0, // finalized below (needs epoch length)
            tracker: None,
            match_rec: MatchRatioRecorder::new(),
            stats: SchedStats::default(),
            rx_series,
            total_rx: opts.total_rx_window.map(BandwidthSeries::new),
            phase_probe: None,
            recorder: None,
            ran_duration: 0,
            scratch: SimScratch::default(),
            par: parallel::ParState::default(),

            ran: false,
            cfg,
            topo,
            opts,
        };
        sim.host_drain_per_epoch = sim.cfg.net.host_bandwidth.bytes_in(sim.epoch_len);
        sim
    }

    /// Epoch length in ns for this configuration/topology.
    pub fn epoch_len(&self) -> Nanos {
        self.epoch_len
    }

    /// Effective intra-run worker count. Selective relay pins the run to
    /// one worker: relay admission reads claims left by lower-numbered
    /// ToRs in the same step, so its visit order is semantic, not an
    /// artifact — sharding it would change bytes. The clamp never makes
    /// path *selection* depend on data, only on options fixed at
    /// construction, so a `workers > 1` run is byte-identical to the
    /// sequential one by the merge rules in `sim/parallel.rs`.
    fn par_workers(&self) -> usize {
        if self.opts.selective_relay {
            1
        } else {
            self.opts.workers.max(1)
        }
    }

    /// Schedule a link-state change at absolute time `at` (see
    /// [`topology::FailureSchedule`] for the ordering rules).
    pub fn schedule_failure(&mut self, at: Nanos, action: FailureAction) {
        self.fail_sched.schedule(at, action);
    }

    /// Schedule an adversarial fault action at absolute time `at` (see
    /// [`topology::FaultModel`] for the families and ordering rules).
    pub fn schedule_fault(&mut self, at: Nanos, action: FaultAction) {
        self.faults.schedule(at, action);
    }

    /// Attach a phase-boundary probe; its snapshots are readable via
    /// [`Self::phase_probe`] after the run.
    pub fn set_phase_probe(&mut self, probe: PhaseProbe) {
        self.phase_probe = Some(probe);
    }

    /// The phase probe, once attached (complete after [`Self::run`]).
    pub fn phase_probe(&self) -> Option<&PhaseProbe> {
        self.phase_probe.as_ref()
    }

    /// Attach a flight recorder; the run then emits epoch-stamped trace
    /// events from the sequential top of the epoch loop, where parallel
    /// shards have already merged — so the trace is byte-identical at any
    /// worker count. Off (the default) costs one branch per epoch.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.recorder = Some(Box::new(recorder));
    }

    /// The attached flight recorder, if any (complete after [`Self::run`]).
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_deref()
    }

    /// Detach and return the flight recorder.
    pub fn take_recorder(&mut self) -> Option<FlightRecorder> {
        self.recorder.take().map(|b| *b)
    }

    /// End-of-epoch flight-recorder emission: flow births, control-plane
    /// deltas, detector transitions, flow-lifecycle span milestones and
    /// per-ToR backlog watermarks. Reads the same merged state the phase
    /// counters read: the dirty lists hold this epoch's REQUEST pairs and
    /// GRANT buckets as *sets* (the parallel steps concatenate per-lane
    /// lists in shard order, so the set is worker-invariant even though
    /// the order is not), and span emission iterates live flows in flow-id
    /// order — which is what keeps span bytes identical at any worker
    /// count. Only called when a recorder is attached; the divergence
    /// scan, the span sweep and the O(n²) backlog row sums are paid only
    /// by traced runs.
    fn trace_epoch(
        &mut self,
        epoch: u64,
        t0: Nanos,
        flows: &[workload::Flow],
        injected: usize,
        spans: &mut FlowSpans,
        tracker: &FlowTracker,
    ) {
        let (fp, fn_) = self.detector_divergence();
        let cursor = TraceCursor {
            requests: self.stats.requests_sent,
            grants: self.stats.grants_issued,
            accepts: self.stats.accepts_made,
            control_dropped: self.stats.control_dropped,
            detector_fp: fp,
            detector_fn: fn_,
        };
        let mut rec = self.recorder.take().expect("caller checked recorder");
        for f in &flows[spans.next_born()..injected] {
            spans.born(
                &mut rec,
                t0,
                epoch,
                f.id as u32,
                f.src as u32,
                f.dst as u32,
                f.bytes,
                f.arrival,
            );
        }
        rec.epoch_counters(t0, epoch, cursor);
        // Stamp this epoch's pair-level control activity. Stamping is
        // idempotent, so the dirty lists' order never matters.
        for &idx in &self.req_dirty {
            let (src, dst) = (idx as usize / self.n, idx as usize % self.n);
            spans.mark_request(src as u32, dst as u32, epoch);
        }
        for &idx in &self.grant_dirty {
            // Buckets are granter * n + requester; the flow pair runs
            // requester → granter.
            let (granter, requester) = (idx as usize / self.n, idx as usize % self.n);
            spans.mark_grant(requester as u32, granter as u32, epoch);
        }
        for tx in &self.active_list {
            // Relay slots forward another pair's traffic; only direct
            // matches are pair-level ACCEPTs.
            if !tx.relay {
                let src = tx.slot as usize / self.s;
                spans.mark_accept(src as u32, tx.dst, epoch);
            }
        }
        spans.sweep(&mut rec, t0, epoch, |id| {
            (tracker.remaining(id as u64), tracker.completion(id as u64))
        });
        for tor in 0..self.n {
            let backlog: u64 = self.queue_bytes[tor * self.n..(tor + 1) * self.n]
                .iter()
                .sum();
            rec.backlog_sample(t0, epoch, tor, backlog);
        }
        self.recorder = Some(rec);
    }

    /// Cumulative counters for phase-boundary snapshots.
    fn phase_counters(&self, tracker: &FlowTracker) -> PhaseCounters {
        let (fp, fn_) = self.detector_divergence();
        PhaseCounters {
            delivered_bytes: tracker.delivered_payload(),
            backlog_bytes: self.queue_bytes.iter().sum(),
            grants: self.stats.grants_issued,
            accepts: self.stats.accepts_made,
            control_dropped: self.stats.control_dropped,
            detector_fp_links: fp,
            detector_fn_links: fn_,
            partitioned_tors: self.failures.partitioned_tors() as u64,
        }
    }

    /// Directed links where the detector's exclusion set disagrees with
    /// ground truth: `(false positives, false negatives)`. Gray failures
    /// produce false positives (the link is up for data but its dummies
    /// drop); clean failures show up as false negatives until the
    /// two-epoch detection window closes.
    fn detector_divergence(&self) -> (u64, u64) {
        let (mut fp, mut fn_) = (0, 0);
        for tor in 0..self.n {
            for port in 0..self.s {
                for (excluded, down) in [
                    (
                        self.detector.egress_excluded(tor, port),
                        self.failures.egress_down(tor, port),
                    ),
                    (
                        self.detector.ingress_excluded(tor, port),
                        self.failures.ingress_down(tor, port),
                    ),
                ] {
                    match (excluded, down) {
                        (true, false) => fp += 1,
                        (false, true) => fn_ += 1,
                        _ => {}
                    }
                }
            }
        }
        (fp, fn_)
    }

    /// Per-flow tracker of the completed run.
    pub fn tracker(&self) -> &FlowTracker {
        self.tracker.as_ref().expect("call run() first")
    }

    /// Per-epoch match-ratio record of the completed run.
    pub fn match_recorder(&self) -> &MatchRatioRecorder {
        &self.match_rec
    }

    /// Aggregate scheduler counters of the run so far.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Receive-bandwidth series of ToR `dst` (requires `rx_window`).
    pub fn rx_series(&self, dst: usize) -> Option<&BandwidthSeries> {
        self.rx_series.get(dst)
    }

    /// Network-wide delivery series (requires `total_rx_window`).
    pub fn total_rx(&self) -> Option<&BandwidthSeries> {
        self.total_rx.as_ref()
    }

    /// Build a report restricted to flows where `tags[id]` is true
    /// (Figure 13(a) separates background from incast traffic).
    pub fn report_subset(&self, trace: &FlowTrace, tags: &[bool]) -> RunReport {
        RunReport::build(
            trace,
            self.tracker(),
            self.ran_duration,
            self.n,
            self.cfg.net.host_bandwidth.bps(),
            Some(tags),
        )
    }

    /// Play `trace` for `duration` ns of simulated time and report.
    ///
    /// The engine may stop early once every flow has completed and all
    /// queues are drained; goodput is still normalized over `duration`.
    pub fn run(&mut self, trace: &FlowTrace, duration: Nanos) -> RunReport {
        assert!(
            !self.ran,
            "NegotiatorSim::run is single-shot; build a new sim"
        );
        self.ran = true;
        self.ran_duration = duration;
        let mut tracker = FlowTracker::new(trace);
        let flows = trace.flows();
        let mut cursor = 0usize;
        // Span tracking is sized for the whole trace up front so the
        // per-epoch emission below stays allocation-free.
        let mut spans = self
            .recorder
            .is_some()
            .then(|| FlowSpans::new(self.n, flows.len()));

        let mut epoch: u64 = 0;
        // lint: hot-path
        loop {
            let t0 = epoch * self.epoch_len;
            if t0 >= duration {
                break;
            }
            if self.phase_probe.as_ref().is_some_and(|p| p.due(t0)) {
                let counters = self.phase_counters(&tracker);
                let before = self.phase_probe.as_ref().map_or(0, |p| p.snapshots().len());
                self.phase_probe
                    .as_mut()
                    .expect("probe checked above")
                    .record(t0, counters);
                if let Some(rec) = self.recorder.as_deref_mut() {
                    let after = self.phase_probe.as_ref().map_or(0, |p| p.snapshots().len());
                    for phase in before..after {
                        rec.phase_boundary(t0, epoch, phase as u64, &counters);
                    }
                }
            }
            let fault_mark = match self.recorder.is_some() {
                true => (self.fail_sched.applied(), self.faults.applied()),
                false => (0, 0),
            };
            self.fail_sched.apply_due(t0, &mut self.failures);
            self.faults.epoch_update(t0, &mut self.failures);
            if let Some(rec) = self.recorder.as_deref_mut() {
                let links = (self.fail_sched.applied() - fault_mark.0) as u64;
                let injected = (self.faults.applied() - fault_mark.1) as u64;
                let total = (self.fail_sched.applied() + self.faults.applied()) as u64;
                rec.fault_applied(t0, epoch, injected, links, total);
            }
            cursor = self.inject(flows, cursor, t0);
            self.epoch_start(epoch, t0);
            cursor = self.predefined_phase(flows, cursor, epoch, t0, &mut tracker);
            cursor = self.scheduled_phase(flows, cursor, epoch, t0, &mut tracker);
            self.observe_epoch();
            if let Some(spans) = spans.as_mut() {
                self.trace_epoch(epoch, t0, flows, cursor, spans, &tracker);
            }
            epoch += 1;

            // Early exit when nothing is left anywhere.
            if cursor >= flows.len()
                && tracker.completed_count() == flows.len()
                && self.fail_sched.is_drained()
                && self.faults.is_drained()
            {
                break;
            }
        }
        if let Some(mut probe) = self.phase_probe.take() {
            let counters = self.phase_counters(&tracker);
            let before = probe.snapshots().len();
            probe.finish(counters);
            if let Some(rec) = self.recorder.as_deref_mut() {
                // Trailing boundaries the early exit skipped: stamp them
                // into the trace at their nominal times, like the probe.
                for (phase, snap) in probe.snapshots().iter().enumerate().skip(before) {
                    rec.phase_boundary(snap.at, epoch, phase as u64, &counters);
                }
            }
            self.phase_probe = Some(probe);
        }
        self.tracker = Some(tracker);
        RunReport::build(
            trace,
            self.tracker(),
            duration,
            self.n,
            self.cfg.net.host_bandwidth.bps(),
            None,
        )
    }

    // ------------------------------------------------------------------
    // Flow injection and failures
    // ------------------------------------------------------------------

    fn inject(&mut self, flows: &[workload::Flow], mut cursor: usize, now: Nanos) -> usize {
        let pias = self.cfg.priority_queues;
        while cursor < flows.len() && flows[cursor].arrival <= now {
            let f = &flows[cursor];
            self.queues[f.src * self.n + f.dst].enqueue_flow(
                f.id,
                f.bytes,
                f.arrival,
                pias,
                self.pias_th,
            );
            self.enqueued_total[f.src * self.n + f.dst] += f.bytes;
            self.note_enqueue(f.src, f.dst, f.bytes);
            cursor += 1;
        }
        cursor
    }

    /// Mirror an enqueue into the dense byte counts and (selective relay)
    /// the per-port direct-backlog cache.
    #[inline]
    fn note_enqueue(&mut self, src: usize, dst: usize, bytes: u64) {
        self.queue_bytes[src * self.n + dst] += bytes;
        if !self.backlog_by_port.is_empty() {
            let port = self.pair_port_tbl[src * self.n + dst] as usize;
            self.backlog_by_port[src * self.s + port] += bytes;
        }
    }

    /// Mirror a dequeue; see [`Self::note_enqueue`].
    #[inline]
    fn note_dequeue(&mut self, src: usize, dst: usize, bytes: u64) {
        self.queue_bytes[src * self.n + dst] -= bytes;
        if !self.backlog_by_port.is_empty() {
            let port = self.pair_port_tbl[src * self.n + dst] as usize;
            self.backlog_by_port[src * self.s + port] -= bytes;
        }
    }

    /// Debug-build check that the incremental mirrors still equal fresh
    /// sums over the queues they shadow.
    #[cfg(debug_assertions)]
    fn debug_verify_mirrors(&self) {
        for src in 0..self.n {
            for dst in 0..self.n {
                debug_assert_eq!(
                    self.queue_bytes[src * self.n + dst],
                    self.queues[src * self.n + dst].total_bytes(),
                    "queue-bytes mirror drifted at ({src}, {dst})"
                );
            }
        }
        if self.backlog_by_port.is_empty() {
            return;
        }
        for tor in 0..self.n {
            for port in 0..self.s {
                let mut sum = 0;
                for dst in 0..self.n {
                    if dst != tor && self.topo.port_reaches(tor, port, dst) {
                        sum += self.queues[tor * self.n + dst].total_bytes();
                    }
                }
                debug_assert_eq!(
                    sum,
                    self.backlog_by_port[tor * self.s + port],
                    "backlog cache drifted at tor {tor} port {port}"
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Epoch-start scheduling (the three pipelined steps)
    // ------------------------------------------------------------------

    fn epoch_start(&mut self, epoch: u64, t0: Nanos) {
        // §3.6.5: hosts drain the receive buffers at the downlink rate.
        if !self.rx_buffer.is_empty() {
            let drain = self.host_drain_per_epoch;
            for b in &mut self.rx_buffer {
                *b = b.saturating_sub(drain);
            }
        }
        #[cfg(debug_assertions)]
        self.debug_verify_mirrors();
        if let SchedulerMode::Iterative { rounds } = self.opts.mode {
            self.epoch_start_iterative(rounds);
            self.rebuild_active_list();
            return;
        }
        if self.par_workers() > 1 {
            self.step_accept_parallel();
            self.step_grant_parallel(epoch);
            self.step_request_parallel(t0);
        } else {
            self.step_accept();
            self.step_grant(epoch);
            self.step_request(t0);
        }
        if self.opts.selective_relay {
            self.relay_request_step(epoch);
        }
        self.rebuild_active_list();
    }

    /// Collapse `active`/`active_relay` into the dense, (src, port)-ordered
    /// transmission list the scheduled phase iterates — matched slots only,
    /// in exactly the order the old full `n · s` sweep visited them.
    // lint: hot-path
    fn rebuild_active_list(&mut self) {
        self.active_list.clear();
        for slot in 0..self.n * self.s {
            if let Some(dst) = self.active[slot] {
                // lint: allow(H001) pushes into retained capacity — active_list is cleared, never shrunk
                self.active_list.push(ActiveTx {
                    slot: slot as u32,
                    dst: dst as u32,
                    relay: false,
                });
            } else if self.active_relay[slot].is_some() {
                // lint: allow(H001) pushes into retained capacity — active_list is cleared, never shrunk
                self.active_list.push(ActiveTx {
                    slot: slot as u32,
                    dst: 0,
                    relay: true,
                });
            }
        }
    }

    /// ACCEPT: consume grants delivered last epoch, fix this epoch's
    /// matching, and (stateful) revert debits of rejected grants.
    fn step_accept(&mut self) {
        self.active.fill(None);
        if self.opts.selective_relay {
            self.active_relay.fill(None);
        }
        let mut total_grants = 0u64;
        let mut total_accepts = 0u64;
        let mut grants_in = std::mem::take(&mut self.scratch.grants_in);
        let mut grants = std::mem::take(&mut self.scratch.grants);
        let mut accepts = std::mem::take(&mut self.scratch.accepts);
        for src in 0..self.n {
            grants_in.clear();
            std::mem::swap(&mut grants_in, &mut self.inbox_grants[src]);
            total_grants += grants_in.len() as u64;
            grants.clear();
            grants.extend(grants_in.iter().map(|&(g, _)| g));
            let detector = &self.detector;
            if matches!(self.opts.mode, SchedulerMode::Projector) {
                // Port pre-binding means at most one grant per port: accept
                // everything usable.
                accepts.clear();
                accepts.extend(
                    grants
                        .iter()
                        .filter(|g| detector.usable(src, g.dst, g.port))
                        .map(|g| Accept {
                            dst: g.dst,
                            port: g.port,
                        }),
                );
            } else {
                self.accept_arbs[src].accept_into(
                    self.s,
                    &grants,
                    |dst, port| detector.usable(src, dst, port),
                    &mut accepts,
                );
            }
            total_accepts += accepts.len() as u64;
            for a in &accepts {
                self.active[src * self.s + a.port] = Some(a.dst);
            }
            // Stateful: revert matrix debits for grants not accepted.
            if matches!(self.opts.mode, SchedulerMode::Stateful) {
                for (g, debit) in &grants_in {
                    let kept = accepts.iter().any(|a| a.dst == g.dst && a.port == g.port);
                    if !kept && *debit > 0 {
                        self.matrices[g.dst].revert(src, *debit);
                    }
                }
            }
        }
        grants_in.clear();
        self.scratch.grants_in = grants_in;
        self.scratch.grants = grants;
        self.scratch.accepts = accepts;
        self.match_rec.record_epoch(total_grants, total_accepts);
        self.stats.grants_issued += total_grants;
        self.stats.accepts_made += total_accepts;

        // Relay accepts: leftover egress ports take relay grants.
        if self.opts.selective_relay {
            let mut relay_grants = std::mem::take(&mut self.scratch.relay_grants);
            for src in 0..self.n {
                relay_grants.clear();
                std::mem::swap(&mut relay_grants, &mut self.inbox_relay_grant[src]);
                for &(via, port, final_dst, vol) in &relay_grants {
                    let slot = src * self.s + port;
                    if self.active[slot].is_none()
                        && self.active_relay[slot].is_none()
                        && self.detector.usable(src, via, port)
                    {
                        self.active_relay[slot] = Some((via, final_dst, vol));
                    }
                }
            }
            relay_grants.clear();
            self.scratch.relay_grants = relay_grants;
        }
    }

    /// Drop every grant bucketed last epoch (touched buckets only).
    fn clear_grant_buckets(&mut self) {
        for &i in &self.grant_dirty {
            self.grant_buckets[i as usize].clear();
            self.msg_flags[i as usize] &= !GRANT_FLAG;
        }
        self.grant_dirty.clear();
        if self.opts.selective_relay {
            self.port_granted.fill(false);
        }
    }

    /// Bucket one grant from `granter` to `requester` for delivery over
    /// their predefined connection.
    #[inline]
    fn push_grant(&mut self, granter: usize, requester: usize, port: usize, debit: u64) {
        let idx = granter * self.n + requester;
        if self.grant_buckets[idx].is_empty() {
            self.grant_dirty.push(idx as u32);
            self.msg_flags[idx] |= GRANT_FLAG;
        }
        self.grant_buckets[idx].push((port as u32, debit));
        if self.opts.selective_relay {
            self.port_granted[granter * self.s + port] = true;
        }
    }

    /// GRANT: consume requests delivered last epoch and allocate ports.
    fn step_grant(&mut self, epoch: u64) {
        self.clear_grant_buckets();
        let mut reqs = std::mem::take(&mut self.scratch.reqs);
        let mut srcs = std::mem::take(&mut self.scratch.srcs);
        let mut grant_pairs = std::mem::take(&mut self.scratch.grant_pairs);
        let mut vals = std::mem::take(&mut self.scratch.vals);
        let mut usable_vals = std::mem::take(&mut self.scratch.usable_vals);
        let mut preqs = std::mem::take(&mut self.scratch.preqs);
        for dst in 0..self.n {
            reqs.clear();
            std::mem::swap(&mut reqs, &mut self.inbox_requests[dst]);
            if self.faults.greedy(dst) {
                // Byzantine-lite misbehavior: the requests just swapped in
                // are discarded, backpressure and debits are ignored, and
                // every ingress port is granted round-robin.
                for port in 0..self.s {
                    if let Some(src) = greedy::greedy_source(&self.topo, self.n, epoch, dst, port) {
                        self.push_grant(dst, src, port, 0);
                    }
                }
                continue;
            }
            // §3.6.5 backpressure: a destination whose receive buffer is
            // more than half full grants nothing this epoch.
            if let Some(cap) = self.opts.host_buffer_bytes {
                if self.rx_buffer[dst] > cap / 2 {
                    continue;
                }
            }
            if matches!(self.opts.mode, SchedulerMode::Stateful) {
                for r in &reqs {
                    self.matrices[dst].report(r.src, r.value as u64);
                }
            }
            if reqs.is_empty() && !matches!(self.opts.mode, SchedulerMode::Stateful) {
                continue;
            }
            match self.opts.mode {
                SchedulerMode::Base | SchedulerMode::Iterative { .. } => {
                    srcs.clear();
                    srcs.extend(reqs.iter().map(|r| r.src));
                    let detector = &self.detector;
                    self.grant_arbs[dst].grant_into(
                        self.s,
                        &srcs,
                        |src, port| detector.usable(src, dst, port),
                        &mut grant_pairs,
                    );
                    for &(src, port) in &grant_pairs {
                        self.push_grant(dst, src, port, 0);
                    }
                }
                SchedulerMode::Stateful => {
                    // Candidates: sources whose matrix entry shows pending
                    // data (requests above already refreshed the matrix).
                    let matrix = &self.matrices[dst];
                    srcs.clear();
                    srcs.extend((0..self.n).filter(|&s| matrix.has_pending(s)));
                    if srcs.is_empty() {
                        continue;
                    }
                    let detector = &self.detector;
                    self.grant_arbs[dst].grant_into(
                        self.s,
                        &srcs,
                        |src, port| detector.usable(src, dst, port),
                        &mut grant_pairs,
                    );
                    let cap = self.epoch_capacity;
                    for &(src, port) in &grant_pairs {
                        let debit = self.matrices[dst].debit(src, cap);
                        self.push_grant(dst, src, port, debit);
                    }
                }
                SchedulerMode::DataSize | SchedulerMode::HolDelay { .. } => {
                    // Highest-value requester first. A served pair's value
                    // drops so ports spread across pairs: DataSize debits
                    // one epoch of service and stops granting at zero
                    // remaining backlog; HolDelay demotes the served pair
                    // below every still-waiting one but keeps it eligible
                    // for leftover ports (a deep-backlog pair may use
                    // several ports, as the base algorithm allows).
                    let datasize = matches!(self.opts.mode, SchedulerMode::DataSize);
                    vals.clear();
                    vals.extend(reqs.iter().map(|r| (r.src, r.value)));
                    for port in 0..self.s {
                        usable_vals.clear();
                        usable_vals.extend(
                            vals.iter()
                                .copied()
                                .filter(|&(s, v)| {
                                    (!datasize || v > 0.0) && self.detector.usable(s, dst, port)
                                })
                                .filter(|&(s, _)| self.topo.port_reaches(s, port, dst)),
                        );
                        if let Some(src) = informative::pick_max_value(&usable_vals) {
                            let v = vals.iter_mut().find(|(s, _)| *s == src).unwrap();
                            v.1 = if datasize {
                                (v.1 - self.epoch_capacity as f64).max(0.0)
                            } else {
                                -1.0 - v.1.abs() // strictly below fresh requests
                            };
                            self.push_grant(dst, src, port, 0);
                        }
                    }
                }
                SchedulerMode::Projector => {
                    preqs.clear();
                    preqs.extend(
                        reqs.iter()
                            .filter(|r| r.port != usize::MAX)
                            .filter(|r| self.detector.usable(r.src, dst, r.port))
                            .map(|r| projector::PortRequest {
                                src: r.src,
                                port: r.port,
                                waiting: r.value,
                            }),
                    );
                    let grants = projector::grant_by_waiting(self.s, &preqs);
                    for (src, port) in grants {
                        self.push_grant(dst, src, port, 0);
                    }
                }
            }
        }
        reqs.clear();
        self.scratch.reqs = reqs;
        self.scratch.srcs = srcs;
        self.scratch.grant_pairs = grant_pairs;
        self.scratch.vals = vals;
        self.scratch.usable_vals = usable_vals;
        self.scratch.preqs = preqs;
        if self.opts.selective_relay {
            self.relay_grant_step();
        }
    }

    /// REQUEST: read queues, emit this epoch's requests.
    ///
    /// Request presence is a bit in `msg_flags` (plus the value in
    /// `req_out`), so only last epoch's undelivered stragglers need
    /// clearing — no per-epoch sweep over all `n²` pairs' values. The
    /// threshold scan reads the dense `queue_bytes` mirror, touching the
    /// queue structs themselves only for above-threshold pairs.
    fn step_request(&mut self, now: Nanos) {
        for &i in &self.req_dirty {
            self.msg_flags[i as usize] &= !REQ_FLAG;
        }
        self.req_dirty.clear();
        let threshold = self.cfg.request_threshold_bytes();
        for src in 0..self.n {
            if matches!(self.opts.mode, SchedulerMode::Projector) {
                let qs = &self.queues[src * self.n..(src + 1) * self.n];
                for (dst, preq) in projector::bind_requests(&self.topo, src, qs, now) {
                    let idx = src * self.n + dst;
                    self.req_out[idx] = preq.waiting;
                    self.req_port_out[idx] = preq.port;
                    self.msg_flags[idx] |= REQ_FLAG;
                    self.req_dirty.push(idx as u32);
                }
                continue;
            }
            for dst in 0..self.n {
                if dst == src {
                    continue;
                }
                let idx = src * self.n + dst;
                if self.queue_bytes[idx] <= threshold {
                    continue;
                }
                let value = match self.opts.mode {
                    SchedulerMode::DataSize => self.queue_bytes[idx] as f64,
                    SchedulerMode::HolDelay { alpha } => {
                        informative::hol_delay_value(&self.queues[idx], now, alpha)
                    }
                    SchedulerMode::Stateful => {
                        let new = self.enqueued_total[idx] - self.reported_total[idx];
                        self.reported_total[idx] = self.enqueued_total[idx];
                        new as f64
                    }
                    _ => 0.0,
                };
                self.req_out[idx] = value;
                self.msg_flags[idx] |= REQ_FLAG;
                self.req_dirty.push(idx as u32);
                self.stats.requests_sent += 1;
            }
        }
    }

    /// Iterative mode: compute the whole multi-round match now, activate it
    /// `2 + 3·(rounds−1)` epochs later (Appendix A.2.1's delay model).
    fn epoch_start_iterative(&mut self, rounds: usize) {
        let threshold = self.cfg.request_threshold_bytes();
        let mut requests: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for (src, row) in self.queue_bytes.chunks(self.n).enumerate() {
            for (dst, &bytes) in row.iter().enumerate() {
                if dst != src && bytes > threshold {
                    requests[dst].push(src);
                }
            }
        }
        let matches = IterativeMatcher::compute(
            &self.topo,
            &requests,
            &mut self.grant_arbs,
            &mut self.accept_arbs,
            rounds,
        );
        self.iter_pending.push_back(matches);
        let delay = 2 + IterativeMatcher::extra_delay_epochs(rounds) as usize;
        self.active.fill(None);
        if self.iter_pending.len() > delay {
            let matches = self.iter_pending.pop_front().unwrap();
            for (src, accepts) in matches.iter().enumerate() {
                for a in accepts {
                    self.active[src * self.s + a.port] = Some(a.dst);
                }
            }
        }
        // Keep the predefined phase silent on requests/grants; messages are
        // modeled as equal-size bundles either way (§A.2.1's fairness note).
        for &i in &self.req_dirty {
            self.msg_flags[i as usize] &= !REQ_FLAG;
        }
        self.req_dirty.clear();
        self.clear_grant_buckets();
    }

    // ------------------------------------------------------------------
    // Selective relay steps (Appendix A.2.2)
    // ------------------------------------------------------------------

    /// Direct backlog whose only path uses `port` of `tor` (thin-clos):
    /// an O(1) read of the incrementally maintained per-port sums.
    fn direct_backlog_via_port(&self, tor: usize, port: usize) -> u64 {
        self.backlog_by_port[tor * self.s + port]
    }

    fn relay_request_step(&mut self, epoch: u64) {
        for &i in &self.relay_req_dirty {
            self.relay_req_buckets[i as usize].clear();
            self.msg_flags[i as usize] &= !RELAY_REQ_FLAG;
        }
        self.relay_req_dirty.clear();
        for src in 0..self.n {
            for dst in 0..self.n {
                if dst == src {
                    continue;
                }
                if !relay::pair_qualifies(&self.queues[src * self.n + dst], &self.relay_policy) {
                    continue;
                }
                // Scan a rotating window of intermediates; keep up to two
                // whose shared egress link is not busy with direct traffic.
                let mut found = 0;
                for j in 0..(2 * self.s).min(self.n - 2) {
                    let via = (src + 1 + ((epoch as usize + j) % (self.n - 1))) % self.n;
                    if via == src || via == dst {
                        continue;
                    }
                    let p1 = match self.topo.pair_port(src, via) {
                        Some(p) => p,
                        None => continue,
                    };
                    if relay::port_busy(self.direct_backlog_via_port(src, p1), &self.relay_policy) {
                        continue;
                    }
                    let idx = src * self.n + via;
                    if self.relay_req_buckets[idx].is_empty() {
                        self.relay_req_dirty.push(idx as u32);
                        self.msg_flags[idx] |= RELAY_REQ_FLAG;
                    }
                    self.relay_req_buckets[idx].push(RelayRequest {
                        src,
                        via,
                        final_dst: dst,
                    });
                    found += 1;
                    if found == 2 {
                        break;
                    }
                }
            }
        }
    }

    /// Intermediates grant leftover ports to relay requests. Direct grants
    /// already marked their ports in `port_granted`; relay grants extend
    /// the same per-epoch map.
    fn relay_grant_step(&mut self) {
        for &i in &self.relay_grant_dirty {
            self.relay_grant_buckets[i as usize].clear();
            self.msg_flags[i as usize] &= !RELAY_GRANT_FLAG;
        }
        self.relay_grant_dirty.clear();
        let mut reqs = std::mem::take(&mut self.scratch.relay_reqs);
        for via in 0..self.n {
            reqs.clear();
            std::mem::swap(&mut reqs, &mut self.inbox_relay_req[via]);
            if reqs.is_empty() {
                continue;
            }
            let mut space = self.relay_buffers[via].space(&self.relay_policy);
            for &r in &reqs {
                let p = match self.topo.pair_port(r.src, via) {
                    Some(p) => p,
                    None => continue,
                };
                if self.port_granted[via * self.s + p] || !self.detector.usable(r.src, via, p) {
                    continue;
                }
                // The intermediate's own egress toward the final destination
                // must not be busy with high-volume direct traffic.
                let p2 = match self.topo.pair_port(via, r.final_dst) {
                    Some(p2) => p2,
                    None => continue,
                };
                if relay::port_busy(self.direct_backlog_via_port(via, p2), &self.relay_policy) {
                    continue;
                }
                let vol = self.relay_policy.grant_volume.min(space);
                if vol == 0 {
                    break;
                }
                space -= vol;
                self.port_granted[via * self.s + p] = true;
                let idx = via * self.n + r.src;
                if self.relay_grant_buckets[idx].is_empty() {
                    self.relay_grant_dirty.push(idx as u32);
                    self.msg_flags[idx] |= RELAY_GRANT_FLAG;
                }
                self.relay_grant_buckets[idx].push((p as u32, r.final_dst as u32, vol));
            }
        }
        reqs.clear();
        self.scratch.relay_reqs = reqs;
    }

    // ------------------------------------------------------------------
    // The two phases
    // ------------------------------------------------------------------

    /// Rotation of the predefined round-robin rule (§3.6.1): the parallel
    /// network shifts the port↔offset mapping every epoch.
    fn rotation(&self, epoch: u64) -> u64 {
        match self.topo.kind() {
            TopologyKind::Parallel => epoch,
            TopologyKind::ThinClos => 0,
        }
    }

    fn predefined_phase(
        &mut self,
        flows: &[workload::Flow],
        mut cursor: usize,
        epoch: u64,
        t0: Nanos,
        tracker: &mut FlowTracker,
    ) -> usize {
        let rot = self.rotation(epoch);
        let prop = self.cfg.net.propagation_delay;
        let piggyback = self.cfg.piggyback;
        // The cached schedule lists each slot's connections in the same
        // (src, port) order the old triple loop visited; take the cache so
        // the loop body can borrow `self` mutably.
        let cache = std::mem::take(&mut self.pre_cache);

        // Healthy-fabric fast path: with zero ground failures (including
        // partitions), a quiescent detector and no active gray failure,
        // every connection is up and usable, and a round of all-success
        // observations would change no detector state — so the
        // per-connection bookkeeping and the end-of-epoch observation pass
        // can be skipped wholesale. Bit-exact: the only skipped work is
        // writes of values already in place. Gray epochs must take the
        // slow path even though no link is down: drops are decided
        // per-connection and the detector has to see the misses.
        if self.failures.healthy() && self.detector.is_quiescent() && !self.faults.gray_active() {
            self.observe_pending = false;
            if self.par_workers() > 1 {
                cursor = self.predefined_healthy_parallel(flows, cursor, &cache, rot, t0, tracker);
                self.pre_cache = cache;
                return cursor;
            }
            for slot in 0..self.pre_slots {
                let slot_start = t0 + slot as Nanos * self.pre_slot_len;
                cursor = self.inject(flows, cursor, slot_start);
                let arrive = slot_start + self.pre_slot_len + prop;
                for conn in cache.slot_conns(rot, slot) {
                    let (src, dst) = (conn.src as usize, conn.dst as usize);
                    let idx = src * self.n + dst;
                    if self.msg_flags[idx] != 0 {
                        self.deliver_messages(src, dst);
                    }
                    if piggyback && self.queue_bytes[idx] > 0 {
                        let pkt = self.queues[idx]
                            .dequeue_packet(self.pb_payload)
                            .expect("non-zero mirror implies a packet");
                        self.note_dequeue(src, dst, pkt.bytes);
                        if pkt.relayed {
                            self.relay_buffers[src].release(pkt.bytes);
                        }
                        self.stats.piggyback_packets += 1;
                        self.stats.piggyback_bytes += pkt.bytes;
                        self.deliver_data(dst, pkt.flow, pkt.bytes, arrive, tracker);
                    }
                }
            }
            self.pre_cache = cache;
            return cursor;
        }

        self.observe_pending = true;
        self.egress_attempted.fill(false);
        self.egress_ok.fill(false);
        self.ingress_attempted.fill(false);
        self.ingress_ok.fill(false);
        for slot in 0..self.pre_slots {
            let slot_start = t0 + slot as Nanos * self.pre_slot_len;
            cursor = self.inject(flows, cursor, slot_start);
            let arrive = slot_start + self.pre_slot_len + prop;
            for conn in cache.slot_conns(rot, slot) {
                let (src, port, dst) = (conn.src as usize, conn.port as usize, conn.dst as usize);
                self.egress_attempted[src * self.s + port] = true;
                self.ingress_attempted[dst * self.s + port] = true;
                let up = self.failures.link_up(src, dst, port);
                // Gray failure: the link carries data but loses this
                // epoch's control traffic. No ok-observation is recorded
                // (the detector sees a missed dummy and may exclude the
                // link — an organic false positive) and no scheduling
                // message crosses; undelivered requests and grants expire
                // in their buckets at the next epoch start.
                let gray = up && self.faults.gray_drops(epoch, src, dst);
                if up && !gray {
                    self.egress_ok[src * self.s + port] = true;
                    self.ingress_ok[dst * self.s + port] = true;
                    if self.msg_flags[src * self.n + dst] != 0 {
                        self.deliver_messages(src, dst);
                    }
                } else if gray {
                    self.stats.control_dropped += self.control_msg_count(src, dst) + 1;
                }
                // Piggyback one data packet (§3.4.1) unless the
                // detector already excluded the link.
                if piggyback && self.detector.usable(src, dst, port) {
                    if let Some(pkt) =
                        self.queues[src * self.n + dst].dequeue_packet(self.pb_payload)
                    {
                        self.note_dequeue(src, dst, pkt.bytes);
                        if pkt.relayed {
                            self.relay_buffers[src].release(pkt.bytes);
                        }
                        if up {
                            self.stats.piggyback_packets += 1;
                            self.stats.piggyback_bytes += pkt.bytes;
                            self.deliver_data(dst, pkt.flow, pkt.bytes, arrive, tracker);
                        } else {
                            // A ground-truth-down link loses the packet;
                            // recovery is an upper-layer (TCP) concern.
                            self.stats.lost_packets += 1;
                        }
                    }
                }
            }
        }
        self.pre_cache = cache;
        cursor
    }

    /// Control messages queued on the `src → dst` predefined connection
    /// this epoch: the request (if flagged) plus the pair's grant and
    /// relay buckets. Used to size [`SchedStats::control_dropped`] when a
    /// gray failure eats the connection's control traffic.
    fn control_msg_count(&self, src: usize, dst: usize) -> u64 {
        let idx = src * self.n + dst;
        let flags = self.msg_flags[idx];
        let mut count = 0;
        if flags & REQ_FLAG != 0 {
            count += 1;
        }
        if flags & GRANT_FLAG != 0 {
            count += self.grant_buckets[idx].len() as u64;
        }
        if flags & RELAY_REQ_FLAG != 0 {
            count += self.relay_req_buckets[idx].len() as u64;
        }
        if flags & RELAY_GRANT_FLAG != 0 {
            count += self.relay_grant_buckets[idx].len() as u64;
        }
        count
    }

    /// Move this epoch's outgoing scheduling messages across one predefined
    /// connection `src → dst`: an O(messages) indexed delivery — the
    /// request slot plus this pair's grant/relay buckets, no scanning.
    /// Callers gate on `msg_flags[idx] != 0`.
    fn deliver_messages(&mut self, src: usize, dst: usize) {
        let idx = src * self.n + dst;
        let flags = self.msg_flags[idx];
        if flags & REQ_FLAG != 0 {
            self.inbox_requests[dst].push(ReqIn {
                src,
                value: self.req_out[idx],
                port: self.req_port_out[idx],
            });
            self.msg_flags[idx] &= !REQ_FLAG; // delivered once
        }
        // Grants computed by `src` for requester `dst` ride this connection.
        if flags & GRANT_FLAG != 0 {
            for &(port, debit) in &self.grant_buckets[idx] {
                self.inbox_grants[dst].push((
                    Grant {
                        dst: src,
                        port: port as usize,
                    },
                    debit,
                ));
            }
        }
        if flags & RELAY_REQ_FLAG != 0 {
            for r in &self.relay_req_buckets[idx] {
                self.inbox_relay_req[dst].push(*r);
            }
        }
        if flags & RELAY_GRANT_FLAG != 0 {
            for &(port, final_dst, vol) in &self.relay_grant_buckets[idx] {
                self.inbox_relay_grant[dst].push((src, port as usize, final_dst as usize, vol));
            }
        }
    }

    fn scheduled_phase(
        &mut self,
        flows: &[workload::Flow],
        mut cursor: usize,
        _epoch: u64,
        t0: Nanos,
        tracker: &mut FlowTracker,
    ) -> usize {
        let sched_start = t0 + self.pre_slots as Nanos * self.pre_slot_len;
        let prop = self.cfg.net.propagation_delay;
        let slot_len = self.cfg.epoch.scheduled_slot;
        let k_slots = self.cfg.epoch.scheduled_slots;
        if k_slots == 0 {
            return cursor;
        }
        let total_slots = (self.n * self.s) as u64;
        cursor = self.inject(flows, cursor, sched_start);

        // Fast path: no flow arrives during the remaining slots and no
        // relay transmissions are live, so every matched port can drain its
        // whole phase in one batch. This is bit-exact, not approximate:
        // without relays a flow lives in exactly one queue, each queue's
        // dequeue sequence is preserved (single server batches; multi-port
        // servers of one queue replay slot order below), and the tracker /
        // bandwidth series accumulate order-insensitively across queues.
        let quiet = cursor >= flows.len()
            || flows[cursor].arrival > sched_start + (k_slots as Nanos - 1) * slot_len;
        if quiet && !self.opts.selective_relay {
            self.stats.unmatched_slots +=
                (total_slots - self.active_list.len() as u64) * k_slots as u64;
            if self.par_workers() > 1 {
                self.scheduled_batched_parallel(sched_start, tracker);
            } else {
                self.scheduled_phase_batched(sched_start, tracker);
            }
            return cursor;
        }

        // General path: slot-major over the active list only; slots outside
        // the list are unmatched for the whole phase (arithmetic, not
        // iteration), relay slots that drain mid-phase count from then on.
        let list = std::mem::take(&mut self.active_list);
        for k in 0..k_slots {
            let slot_start = sched_start + k as Nanos * slot_len;
            cursor = self.inject(flows, cursor, slot_start);
            let arrive = slot_start + slot_len + prop;
            self.stats.unmatched_slots += total_slots - list.len() as u64;
            for e in &list {
                let slot = e.slot as usize;
                let (src, port) = (slot / self.s, slot % self.s);
                if !e.relay {
                    self.serve_direct_slot(src, port, e.dst as usize, arrive, tracker);
                } else if let Some((via, final_dst, vol)) = self.active_relay[slot] {
                    if vol == 0 {
                        continue;
                    }
                    let cap = self.sched_payload.min(vol);
                    if let Some(pkt) =
                        self.queues[src * self.n + final_dst].dequeue_lowest_packet(cap)
                    {
                        self.note_dequeue(src, final_dst, pkt.bytes);
                        if pkt.relayed {
                            self.relay_buffers[src].release(pkt.bytes);
                        }
                        self.active_relay[slot] = Some((via, final_dst, vol - pkt.bytes));
                        if self.failures.link_up(src, via, port) {
                            // Arrives at the intermediate: admitted to
                            // its relay buffer and re-queued for the
                            // final destination at lowest priority.
                            self.relay_buffers[via].admit(pkt.bytes);
                            self.queues[via * self.n + final_dst]
                                .enqueue_relay(pkt.flow, pkt.bytes, arrive);
                            self.note_enqueue(via, final_dst, pkt.bytes);
                        }
                    } else {
                        self.active_relay[slot] = None; // drained
                    }
                } else {
                    self.stats.unmatched_slots += 1;
                }
            }
        }
        self.active_list = list;
        cursor
    }

    /// One scheduled-slot transmission of a direct match (general path).
    #[inline]
    fn serve_direct_slot(
        &mut self,
        src: usize,
        port: usize,
        dst: usize,
        arrive: Nanos,
        tracker: &mut FlowTracker,
    ) {
        if let Some(pkt) = self.queues[src * self.n + dst].dequeue_packet(self.sched_payload) {
            self.note_dequeue(src, dst, pkt.bytes);
            if pkt.relayed {
                self.relay_buffers[src].release(pkt.bytes);
            }
            if self.failures.link_up(src, dst, port) {
                self.stats.scheduled_packets += 1;
                self.stats.scheduled_bytes += pkt.bytes;
                self.deliver_data(dst, pkt.flow, pkt.bytes, arrive, tracker);
            } else {
                self.stats.lost_packets += 1;
            }
        } else {
            self.stats.overscheduled_slots += 1;
        }
    }

    /// Entry-major scheduled phase: each matched port pulls its whole
    /// phase's packets in one batch dequeue. Ports of one source serving
    /// the *same* destination queue replay exact slot order instead (their
    /// interleaving determines which packet each port carries).
    fn scheduled_phase_batched(&mut self, sched_start: Nanos, tracker: &mut FlowTracker) {
        let prop = self.cfg.net.propagation_delay;
        let slot_len = self.cfg.epoch.scheduled_slot;
        let k_slots = self.cfg.epoch.scheduled_slots;
        let list = std::mem::take(&mut self.active_list);
        let mut packets = std::mem::take(&mut self.scratch.packets);
        let mut i = 0;
        while i < list.len() {
            // One source's run of entries (same src ⇒ contiguous, ≤ s long).
            let src = list[i].slot as usize / self.s;
            let mut run_end = i + 1;
            while run_end < list.len() && list[run_end].slot as usize / self.s == src {
                run_end += 1;
            }
            let run = &list[i..run_end];
            let shared_queue = run
                .iter()
                .enumerate()
                .any(|(a, e)| run[..a].iter().any(|f| f.dst == e.dst));
            if shared_queue {
                // Rare: one queue feeds several ports; replay slot order.
                for k in 0..k_slots {
                    let arrive = sched_start + (k as Nanos + 1) * slot_len + prop;
                    for e in run {
                        let port = e.slot as usize % self.s;
                        self.serve_direct_slot(src, port, e.dst as usize, arrive, tracker);
                    }
                }
            } else {
                for e in run {
                    let (port, dst) = (e.slot as usize % self.s, e.dst as usize);
                    packets.clear();
                    self.queues[src * self.n + dst].dequeue_packets_into(
                        self.sched_payload,
                        k_slots,
                        &mut packets,
                    );
                    let drained: u64 = packets.iter().map(|p| p.bytes).sum();
                    self.note_dequeue(src, dst, drained);
                    self.stats.overscheduled_slots += (k_slots - packets.len()) as u64;
                    let up = self.failures.link_up(src, dst, port);
                    for (k, pkt) in packets.iter().enumerate() {
                        if pkt.relayed {
                            self.relay_buffers[src].release(pkt.bytes);
                        }
                        if up {
                            self.stats.scheduled_packets += 1;
                            self.stats.scheduled_bytes += pkt.bytes;
                            let arrive = sched_start + (k as Nanos + 1) * slot_len + prop;
                            self.deliver_data(dst, pkt.flow, pkt.bytes, arrive, tracker);
                        } else {
                            self.stats.lost_packets += 1;
                        }
                    }
                }
            }
            i = run_end;
        }
        self.scratch.packets = packets;
        self.active_list = list;
    }

    fn deliver_data(
        &mut self,
        dst: usize,
        flow: u64,
        bytes: u64,
        at: Nanos,
        tracker: &mut FlowTracker,
    ) {
        if let Some(b) = self.rx_buffer.get_mut(dst) {
            *b += bytes;
        }
        tracker.deliver(flow, bytes, at);
        if let Some(series) = self.rx_series.get_mut(dst) {
            series.record(at, bytes);
        }
        if let Some(total) = self.total_rx.as_mut() {
            total.record(at, bytes);
        }
    }

    /// Feed the epoch's predefined-phase observations to the detector.
    /// A no-op after healthy-fast-path epochs (all-success observations on
    /// a quiescent detector change nothing).
    fn observe_epoch(&mut self) {
        if !self.observe_pending {
            return;
        }
        for tor in 0..self.n {
            for port in 0..self.s {
                let i = tor * self.s + port;
                if self.egress_attempted[i] {
                    self.detector.observe_egress(tor, port, self.egress_ok[i]);
                }
                if self.ingress_attempted[i] {
                    self.detector.observe_ingress(tor, port, self.ingress_ok[i]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::NetworkConfig;
    use workload::{Flow, FlowTrace, IncastWorkload};

    fn small_cfg() -> NegotiatorConfig {
        NegotiatorConfig::paper_default(NetworkConfig::small_for_tests())
    }

    fn single_flow(bytes: u64, arrival: Nanos) -> FlowTrace {
        FlowTrace::new(vec![Flow {
            id: 0,
            src: 0,
            dst: 5,
            bytes,
            arrival,
        }])
    }

    #[test]
    fn mice_flow_bypasses_scheduling_delay_via_piggyback() {
        // A 500 B flow fits one piggyback packet: it should complete within
        // roughly one epoch + propagation, far below the 2-epoch delay.
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        let epoch = s.epoch_len();
        let report = s.run(&single_flow(500, 0), 50 * epoch);
        let fct = s.tracker().fct(0).expect("flow must complete");
        assert!(
            fct < 2 * epoch,
            "piggybacked mice FCT {fct} should beat the 2-epoch delay ({})",
            2 * epoch
        );
        assert_eq!(report.mice.completed, 1);
    }

    #[test]
    fn piggyback_disabled_pays_the_scheduling_delay() {
        let mut cfg = small_cfg();
        cfg.piggyback = false;
        let mut s = NegotiatorSim::new(cfg, TopologyKind::Parallel);
        let epoch = s.epoch_len();
        s.run(&single_flow(500, 0), 50 * epoch);
        let fct = s.tracker().fct(0).expect("flow must complete");
        assert!(
            fct >= 2 * epoch,
            "without PB the flow waits for the pipeline: fct {fct}"
        );
        assert!(fct < 5 * epoch, "but not forever: fct {fct}");
    }

    #[test]
    fn elephant_flow_completes_via_scheduled_phase() {
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let mut s = NegotiatorSim::new(small_cfg(), kind);
            let epoch = s.epoch_len();
            let report = s.run(&single_flow(500_000, 0), 600 * epoch);
            assert_eq!(
                s.tracker().completed_count(),
                1,
                "{kind:?}: elephant must finish"
            );
            assert!(report.all.completed == 1);
        }
    }

    #[test]
    fn incast_finishes_fast_regardless_of_degree() {
        // §4.2/Figure 7(a): piggybacking serves each sender its own
        // predefined slot, so finish time is flat in degree.
        let mut finish = Vec::new();
        for degree in [2usize, 8, 14] {
            let trace = IncastWorkload {
                degree,
                flow_bytes: 1_000,
                n_tors: 16,
                start: 10_000,
            }
            .generate(3);
            let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
            let epoch = s.epoch_len();
            s.run(&trace, 100 * epoch);
            let t =
                RunReport::burst_finish_time(&trace, s.tracker()).expect("incast must complete");
            finish.push(t);
        }
        let spread = *finish.iter().max().unwrap() as f64 / *finish.iter().min().unwrap() as f64;
        assert!(
            spread < 2.5,
            "incast finish should be nearly flat in degree: {finish:?}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let trace = single_flow(100_000, 123);
        let run = |seed: u64| {
            let mut cfg = small_cfg();
            cfg.seed = seed;
            let mut s = NegotiatorSim::new(cfg, TopologyKind::Parallel);
            s.run(&trace, 500_000);
            s.tracker().fct(0)
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn match_ratio_recorded_under_load() {
        let trace = FlowTrace::new(
            (0..16)
                .flat_map(|src| {
                    (0..16).filter(move |&d| d != src).map(move |dst| Flow {
                        id: 0,
                        src,
                        dst,
                        bytes: 200_000,
                        arrival: 0,
                    })
                })
                .collect(),
        );
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        let epoch = s.epoch_len();
        s.run(&trace, 100 * epoch);
        let ratio = s.match_recorder().overall_ratio().expect("grants happened");
        assert!(ratio > 0.3 && ratio <= 1.0, "ratio {ratio}");
    }

    #[test]
    fn failed_links_reduce_then_recover_bandwidth() {
        let trace = single_flow(100_000_000, 0); // effectively infinite source
        let mut cfg = small_cfg();
        cfg.piggyback = true;
        let mut s = NegotiatorSim::with_options(
            cfg,
            TopologyKind::Parallel,
            SimOptions {
                total_rx_window: Some(10_000),
                ..SimOptions::default()
            },
        );
        let epoch = s.epoch_len();
        let fail_at = 60 * epoch;
        let repair_at = 160 * epoch;
        s.schedule_failure(
            fail_at,
            FailureAction::FailRandom {
                ratio: 0.25,
                seed: 7,
            },
        );
        s.schedule_failure(repair_at, FailureAction::RepairAll);
        s.run(&trace, 260 * epoch);
        let rx = s.total_rx().unwrap();
        let before = rx.mean_gbps(10 * epoch, fail_at);
        let during = rx.mean_gbps(fail_at + 10 * epoch, repair_at);
        let after = rx.mean_gbps(repair_at + 10 * epoch, 250 * epoch);
        assert!(before > 0.0);
        assert!(
            during < before * 0.95,
            "failures must cost bandwidth: before {before}, during {during}"
        );
        assert!(
            after > during,
            "recovery must restore bandwidth: during {during}, after {after}"
        );
    }

    #[test]
    fn selective_relay_runs_and_delivers_on_thin_clos() {
        let mut s = NegotiatorSim::with_options(
            small_cfg(),
            TopologyKind::ThinClos,
            SimOptions {
                selective_relay: true,
                ..SimOptions::default()
            },
        );
        let epoch = s.epoch_len();
        let report = s.run(&single_flow(2_000_000, 0), 3000 * epoch);
        assert_eq!(report.all.completed, 1, "elephant must fully arrive");
    }

    #[test]
    #[should_panic(expected = "thin-clos")]
    fn selective_relay_rejected_on_parallel() {
        NegotiatorSim::with_options(
            small_cfg(),
            TopologyKind::Parallel,
            SimOptions {
                selective_relay: true,
                ..SimOptions::default()
            },
        );
    }

    #[test]
    fn variant_modes_all_run_to_completion() {
        for mode in [
            SchedulerMode::Iterative { rounds: 3 },
            SchedulerMode::DataSize,
            SchedulerMode::HolDelay { alpha: 0.001 },
            SchedulerMode::Stateful,
            SchedulerMode::Projector,
        ] {
            let mut s = NegotiatorSim::with_options(
                small_cfg(),
                TopologyKind::Parallel,
                SimOptions {
                    mode,
                    ..SimOptions::default()
                },
            );
            let epoch = s.epoch_len();
            let report = s.run(&single_flow(300_000, 0), 1000 * epoch);
            assert_eq!(report.all.completed, 1, "{mode:?} must deliver the flow");
        }
    }

    #[test]
    fn stats_capture_bypass_and_overscheduling() {
        // A small flow (one piggyback packet) delivered entirely via PB.
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        let epoch = s.epoch_len();
        s.run(&single_flow(500, 0), 20 * epoch);
        let st = *s.stats();
        assert_eq!(st.piggyback_packets, 1);
        assert_eq!(st.piggyback_bytes, 500);
        assert_eq!(st.scheduled_packets, 0, "no scheduled data needed");
        assert_eq!(st.piggyback_share(), 1.0);
        assert_eq!(st.lost_packets, 0);

        // A large flow drains mostly through the scheduled phase, and the
        // stateless pipeline over-schedules the tail: grants keep arriving
        // for an already-empty queue.
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        s.run(&single_flow(200_000, 0), 200 * epoch);
        let st = *s.stats();
        assert!(st.scheduled_bytes > st.piggyback_bytes);
        assert!(
            st.overscheduled_slots > 0,
            "stateless scheduling must waste some tail slots"
        );
        assert!(st.requests_sent > 0);
        assert!(st.accepts_made <= st.grants_issued);
    }

    #[test]
    fn lost_packets_counted_under_ground_failures() {
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        let epoch = s.epoch_len();
        s.schedule_failure(
            0,
            FailureAction::FailRandom {
                ratio: 0.3,
                seed: 2,
            },
        );
        s.run(&single_flow(500_000, 0), 50 * epoch);
        assert!(
            s.stats().lost_packets > 0,
            "undetected failures must lose packets in flight"
        );
    }

    #[test]
    fn host_backpressure_caps_receive_rate() {
        // One hot destination fed by many sources; with §3.6.5 enabled and
        // a small receive buffer, sustained delivery cannot exceed the
        // host-aggregate rate by much, while the unbounded setting enjoys
        // the full 2x fabric speedup.
        let trace = FlowTrace::new(
            (1..16)
                .map(|src| Flow {
                    id: 0,
                    src,
                    dst: 0,
                    bytes: 400_000,
                    arrival: 0,
                })
                .collect(),
        );
        let run = |buffer: Option<u64>| {
            let mut s = NegotiatorSim::with_options(
                small_cfg(),
                TopologyKind::Parallel,
                SimOptions {
                    host_buffer_bytes: buffer,
                    ..SimOptions::default()
                },
            );
            let epoch = s.epoch_len();
            s.run(&trace, 600 * epoch);
            // Received rate at the hot ToR while the burst drains, in Gbps.
            let finish =
                RunReport::burst_finish_time(&trace, s.tracker()).expect("burst must complete");
            (s.tracker().delivered_payload() * 8) as f64 / finish as f64
        };
        let unbounded = run(None);
        let bounded = run(Some(100_000));
        // Hosts drain at 200 Gbps on the test fabric; the fabric can push
        // 400 Gbps into one ToR.
        assert!(
            unbounded > 250.0,
            "unbounded should use speedup: {unbounded}"
        );
        assert!(
            bounded < unbounded * 0.85,
            "backpressure must throttle: bounded {bounded} vs unbounded {unbounded}"
        );
        assert!(bounded > 100.0, "but data must still flow: {bounded}");
    }

    #[test]
    fn goodput_reflects_offered_load() {
        // Saturating all-to-all: goodput should be substantial.
        let trace = FlowTrace::new(
            (0..16)
                .flat_map(|src| {
                    (0..16).filter(move |&d| d != src).map(move |dst| Flow {
                        id: 0,
                        src,
                        dst,
                        bytes: 1_000_000,
                        arrival: 0,
                    })
                })
                .collect(),
        );
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        let dur = 300 * s.epoch_len();
        let report = s.run(&trace, dur);
        assert!(
            report.goodput.normalized() > 0.5,
            "normalized goodput {}",
            report.goodput.normalized()
        );
    }
}
