//! The NegotiaToR epoch engine: a deterministic, slot-synchronous
//! packet-level simulator of the full architecture (§3).
//!
//! One call to [`NegotiatorSim::run`] plays a flow trace through the
//! two-phase epochs of Figure 2:
//!
//! * **Epoch start** — the three pipelined scheduling steps (Figure 4):
//!   ACCEPT consumes the grants delivered during the previous epoch and
//!   fixes this epoch's scheduled-phase matching; GRANT consumes the
//!   requests delivered during the previous epoch; REQUEST reads the
//!   per-destination queues. Each step's outgoing messages ride this
//!   epoch's predefined phase and are consumed one epoch later, giving the
//!   ≈2-epoch scheduling delay of §3.3.1.
//! * **Predefined phase** — round-robin all-to-all timeslots carrying
//!   scheduling messages, dummy/feedback messages (fault detection,
//!   §3.6.1) and one piggybacked data packet per connected pair (§3.4.1).
//! * **Scheduled phase** — the accepted matches transmit packets from the
//!   per-destination queues until the epoch ends or the queues empty.
//!
//! Collisions are impossible by construction (GRANT serializes each ingress
//! port, ACCEPT each egress port); integration tests assert this against
//! `topology::validate_matching` anyway.
//!
//! The engine also hosts the Appendix A.2 design variants via
//! [`SchedulerMode`] and [`SimOptions::selective_relay`] — only the
//! scheduling logic changes, never the data path, mirroring the paper's
//! methodology. Two deliberate simulation simplifications, both documented
//! in DESIGN.md: flows are injected at timeslot granularity (the paper's
//! packet simulator injects continuously; a timeslot is 60–90 ns), and the
//! stateful variant's accept-feedback reaches the demand matrix one epoch
//! early (the revert path is exercised identically).

use crate::config::NegotiatorConfig;
use crate::fault::FaultDetector;
use crate::matching::{Accept, AcceptArbiter, Grant, GrantArbiter};
use crate::queues::DestQueue;
use crate::stats::SchedStats;
use crate::variants::informative;
use crate::variants::iterative::IterativeMatcher;
use crate::variants::projector;
use crate::variants::relay::{self, RelayBuffer, RelayPolicy, RelayRequest};
use crate::variants::stateful::DemandMatrix;
use metrics::{FlowTracker, MatchRatioRecorder, RunReport};
use sim::time::Nanos;
use sim::{BandwidthSeries, Xoshiro256};
use std::collections::VecDeque;
use topology::failures::LinkDir;
use topology::{AnyTopology, LinkFailures, Topology, TopologyKind};
use workload::FlowTrace;

/// Which scheduling logic runs on top of the common data path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerMode {
    /// NegotiaToR Matching as published (§3.2).
    Base,
    /// Appendix A.2.1: iterative matching with `rounds` request/grant/accept
    /// rounds; each extra round delays activation by three epochs.
    Iterative {
        /// Number of matching rounds (1 = equivalent delay to `Base`).
        rounds: usize,
    },
    /// Appendix A.2.3, goodput-oriented: requests carry queue sizes.
    DataSize,
    /// Appendix A.2.3, FCT-oriented: requests carry weighted HoL delays.
    HolDelay {
        /// Mice/elephant weighting (paper's best: 0.001).
        alpha: f64,
    },
    /// Appendix A.2.4: destinations keep demand matrices.
    Stateful,
    /// Appendix A.2.5: ProjecToR-style per-port, delay-prioritized requests.
    Projector,
}

/// Engine options beyond the paper-default configuration.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Scheduling logic.
    pub mode: SchedulerMode,
    /// Traffic-aware selective relay (thin-clos only, Appendix A.2.2).
    pub selective_relay: bool,
    /// Record per-destination receive-bandwidth series with this window
    /// (Appendix A.3 micro-observations); `None` disables.
    pub rx_window: Option<Nanos>,
    /// Record the network-wide delivery series with this window
    /// (fault-tolerance bandwidth plots); `None` disables.
    pub total_rx_window: Option<Nanos>,
    /// §3.6.5 receiver-side traffic management: model the ToR→host
    /// downlink with a bounded receive buffer of this many bytes. The
    /// buffer drains at the host-aggregate rate; while it is more than
    /// half full the ToR withholds grants (backpressure), so fabric
    /// speedup cannot overrun ToR memory. `None` (the paper's evaluation
    /// setting) treats ToRs as sinks.
    pub host_buffer_bytes: Option<u64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            mode: SchedulerMode::Base,
            selective_relay: false,
            rx_window: None,
            total_rx_window: None,
            host_buffer_bytes: None,
        }
    }
}

/// A scheduled change to the ground-truth link state (§4.3 experiments).
#[derive(Debug, Clone)]
pub enum FailureAction {
    /// Fail a uniform random fraction of all directed links.
    FailRandom {
        /// Fraction of directed links to fail.
        ratio: f64,
        /// Sampling seed.
        seed: u64,
    },
    /// Repair everything failed by earlier `FailRandom`/`FailLink` actions.
    RepairAll,
    /// Fail one directed link.
    FailLink {
        /// ToR index.
        tor: usize,
        /// Port index.
        port: usize,
        /// Fiber direction.
        dir: LinkDir,
    },
}

/// A request as seen by the destination after the predefined phase.
#[derive(Debug, Clone, Copy)]
struct ReqIn {
    src: usize,
    /// Mode-specific priority value (bytes, weighted delay, new bytes…).
    value: f64,
    /// Pre-bound port for `Projector`; `usize::MAX` otherwise.
    port: usize,
}

/// The full NegotiaToR simulator.
pub struct NegotiatorSim {
    cfg: NegotiatorConfig,
    topo: AnyTopology,
    opts: SimOptions,

    // Derived constants.
    n: usize,
    s: usize,
    pre_slots: usize,
    pre_slot_len: Nanos,
    epoch_len: Nanos,
    pb_payload: u64,
    sched_payload: u64,
    pias_th: [u64; 2],
    /// Bytes one port can move in one scheduled phase (grant debit unit).
    epoch_capacity: u64,

    // Per-ToR state.
    queues: Vec<DestQueue>, // src * n + dst
    grant_arbs: Vec<GrantArbiter>,
    accept_arbs: Vec<AcceptArbiter>,

    // Pipeline outboxes (filled at epoch start, drained by the predefined
    // phase) and inboxes (filled by the predefined phase, consumed next
    // epoch start).
    req_out: Vec<f64>,                         // src * n + dst; NAN = no request
    req_port_out: Vec<usize>,                  // projector port binding
    grants_out: Vec<Vec<(usize, usize, u64)>>, // per dst: (src, port, debit)
    inbox_requests: Vec<Vec<ReqIn>>,           // per dst
    inbox_grants: Vec<Vec<(Grant, u64)>>,      // per src: (grant, stateful debit)
    active: Vec<Option<usize>>,                // src * s + port -> dst

    // Variant state.
    matrices: Vec<DemandMatrix>, // stateful (empty otherwise)
    enqueued_total: Vec<u64>,    // src * n + dst, lifetime enqueued bytes
    reported_total: Vec<u64>,    // stateful: bytes already reported
    iter_pending: VecDeque<Vec<Vec<Accept>>>, // iterative activation queue

    // Selective relay state.
    relay_policy: RelayPolicy,
    relay_buffers: Vec<RelayBuffer>,
    relay_req_out: Vec<Vec<RelayRequest>>, // per src
    relay_grant_out: Vec<Vec<(usize, usize, usize, u64)>>, // per via: (src, port, final, vol)
    inbox_relay_req: Vec<Vec<RelayRequest>>, // per via
    inbox_relay_grant: Vec<Vec<(usize, usize, usize, u64)>>, // per src: (via, port, final, vol)
    active_relay: Vec<Option<(usize, usize, u64)>>, // src*s+port -> (via, final, vol left)

    // Failures.
    failures: LinkFailures,
    detector: FaultDetector,
    fail_schedule: Vec<(Nanos, FailureAction)>,
    injected_failures: Vec<(usize, usize, LinkDir)>,
    // Per-epoch observation scratch.
    egress_attempted: Vec<bool>,
    egress_ok: Vec<bool>,
    ingress_attempted: Vec<bool>,
    ingress_ok: Vec<bool>,

    // §3.6.5 receiver-side buffers (empty unless host_buffer_bytes set).
    rx_buffer: Vec<u64>,
    host_drain_per_epoch: u64,

    // Metrics.
    tracker: Option<FlowTracker>,
    match_rec: MatchRatioRecorder,
    stats: SchedStats,
    rx_series: Vec<BandwidthSeries>,
    total_rx: Option<BandwidthSeries>,
    ran_duration: Nanos,

    ran: bool,
}

impl NegotiatorSim {
    /// Paper-default simulator over `cfg` on `kind`.
    pub fn new(cfg: NegotiatorConfig, kind: TopologyKind) -> Self {
        Self::with_options(cfg, kind, SimOptions::default())
    }

    /// Simulator with explicit options (variants, recording).
    pub fn with_options(cfg: NegotiatorConfig, kind: TopologyKind, opts: SimOptions) -> Self {
        let topo = AnyTopology::build(kind, cfg.net.clone());
        if opts.selective_relay {
            assert_eq!(
                kind,
                TopologyKind::ThinClos,
                "selective relay targets the thin-clos topology (Appendix A.2.2)"
            );
        }
        let n = cfg.net.n_tors;
        let s = cfg.net.n_ports;
        let pre_slots = topo.predefined_slots();
        let mut rng = Xoshiro256::new(cfg.seed);
        let grant_arbs = (0..n)
            .map(|d| GrantArbiter::new(&topo, d, &mut rng))
            .collect();
        let accept_arbs = (0..n)
            .map(|t| AcceptArbiter::new(&topo, t, &mut rng))
            .collect();
        let sched_payload = cfg.scheduled_payload();
        let epoch_capacity = sched_payload * cfg.epoch.scheduled_slots as u64;
        let stateful = matches!(opts.mode, SchedulerMode::Stateful);
        let rx_series = match opts.rx_window {
            Some(w) => (0..n).map(|_| BandwidthSeries::new(w)).collect(),
            None => Vec::new(),
        };
        let mut sim = NegotiatorSim {
            n,
            s,
            pre_slots,
            pre_slot_len: cfg.epoch.predefined_slot(),
            epoch_len: cfg.epoch.epoch_len(pre_slots),
            pb_payload: cfg.piggyback_payload().max(1),
            sched_payload: sched_payload.max(1),
            pias_th: cfg.pias_thresholds(),
            epoch_capacity,
            queues: (0..n * n).map(|_| DestQueue::new()).collect(),
            grant_arbs,
            accept_arbs,
            req_out: vec![f64::NAN; n * n],
            req_port_out: vec![usize::MAX; n * n],
            grants_out: vec![Vec::new(); n],
            inbox_requests: vec![Vec::new(); n],
            inbox_grants: vec![Vec::new(); n],
            active: vec![None; n * s],
            matrices: if stateful {
                (0..n).map(|_| DemandMatrix::new(n)).collect()
            } else {
                Vec::new()
            },
            enqueued_total: vec![0; n * n],
            reported_total: vec![0; n * n],
            iter_pending: VecDeque::new(),
            relay_policy: RelayPolicy::default_for(epoch_capacity),
            relay_buffers: (0..n).map(|_| RelayBuffer::default()).collect(),
            relay_req_out: vec![Vec::new(); n],
            relay_grant_out: vec![Vec::new(); n],
            inbox_relay_req: vec![Vec::new(); n],
            inbox_relay_grant: vec![Vec::new(); n],
            active_relay: vec![None; n * s],
            failures: LinkFailures::new(n, s),
            detector: FaultDetector::new(n, s),
            fail_schedule: Vec::new(),
            injected_failures: Vec::new(),
            egress_attempted: vec![false; n * s],
            egress_ok: vec![false; n * s],
            ingress_attempted: vec![false; n * s],
            ingress_ok: vec![false; n * s],
            rx_buffer: vec![
                0;
                if opts.host_buffer_bytes.is_some() {
                    n
                } else {
                    0
                }
            ],
            host_drain_per_epoch: 0, // finalized below (needs epoch length)
            tracker: None,
            match_rec: MatchRatioRecorder::new(),
            stats: SchedStats::default(),
            rx_series,
            total_rx: opts.total_rx_window.map(BandwidthSeries::new),
            ran_duration: 0,

            ran: false,
            cfg,
            topo,
            opts,
        };
        sim.host_drain_per_epoch = sim.cfg.net.host_bandwidth.bytes_in(sim.epoch_len);
        sim
    }

    /// Epoch length in ns for this configuration/topology.
    pub fn epoch_len(&self) -> Nanos {
        self.epoch_len
    }

    /// Schedule a link-state change at absolute time `at`.
    pub fn schedule_failure(&mut self, at: Nanos, action: FailureAction) {
        self.fail_schedule.push((at, action));
        self.fail_schedule.sort_by_key(|&(t, _)| t);
    }

    /// Per-flow tracker of the completed run.
    pub fn tracker(&self) -> &FlowTracker {
        self.tracker.as_ref().expect("call run() first")
    }

    /// Per-epoch match-ratio record of the completed run.
    pub fn match_recorder(&self) -> &MatchRatioRecorder {
        &self.match_rec
    }

    /// Aggregate scheduler counters of the run so far.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Receive-bandwidth series of ToR `dst` (requires `rx_window`).
    pub fn rx_series(&self, dst: usize) -> Option<&BandwidthSeries> {
        self.rx_series.get(dst)
    }

    /// Network-wide delivery series (requires `total_rx_window`).
    pub fn total_rx(&self) -> Option<&BandwidthSeries> {
        self.total_rx.as_ref()
    }

    /// Build a report restricted to flows where `tags[id]` is true
    /// (Figure 13(a) separates background from incast traffic).
    pub fn report_subset(&self, trace: &FlowTrace, tags: &[bool]) -> RunReport {
        RunReport::build(
            trace,
            self.tracker(),
            self.ran_duration,
            self.n,
            self.cfg.net.host_bandwidth.bps(),
            Some(tags),
        )
    }

    /// Play `trace` for `duration` ns of simulated time and report.
    ///
    /// The engine may stop early once every flow has completed and all
    /// queues are drained; goodput is still normalized over `duration`.
    pub fn run(&mut self, trace: &FlowTrace, duration: Nanos) -> RunReport {
        assert!(
            !self.ran,
            "NegotiatorSim::run is single-shot; build a new sim"
        );
        self.ran = true;
        self.ran_duration = duration;
        let mut tracker = FlowTracker::new(trace);
        let flows = trace.flows();
        let mut cursor = 0usize;

        let mut epoch: u64 = 0;
        loop {
            let t0 = epoch * self.epoch_len;
            if t0 >= duration {
                break;
            }
            self.apply_due_failures(t0);
            cursor = self.inject(flows, cursor, t0);
            self.epoch_start(epoch, t0);
            cursor = self.predefined_phase(flows, cursor, epoch, t0, &mut tracker);
            cursor = self.scheduled_phase(flows, cursor, epoch, t0, &mut tracker);
            self.observe_epoch();
            epoch += 1;

            // Early exit when nothing is left anywhere.
            if cursor >= flows.len()
                && tracker.completed_count() == flows.len()
                && self.fail_schedule.is_empty()
            {
                break;
            }
        }
        self.tracker = Some(tracker);
        RunReport::build(
            trace,
            self.tracker(),
            duration,
            self.n,
            self.cfg.net.host_bandwidth.bps(),
            None,
        )
    }

    // ------------------------------------------------------------------
    // Flow injection and failures
    // ------------------------------------------------------------------

    fn inject(&mut self, flows: &[workload::Flow], mut cursor: usize, now: Nanos) -> usize {
        let pias = self.cfg.priority_queues;
        while cursor < flows.len() && flows[cursor].arrival <= now {
            let f = &flows[cursor];
            self.queues[f.src * self.n + f.dst].enqueue_flow(
                f.id,
                f.bytes,
                f.arrival,
                pias,
                self.pias_th,
            );
            self.enqueued_total[f.src * self.n + f.dst] += f.bytes;
            cursor += 1;
        }
        cursor
    }

    fn apply_due_failures(&mut self, now: Nanos) {
        while let Some(&(at, _)) = self.fail_schedule.first() {
            if at > now {
                break;
            }
            let (_, action) = self.fail_schedule.remove(0);
            match action {
                FailureAction::FailRandom { ratio, seed } => {
                    let mut rng = Xoshiro256::new(seed);
                    let failed = self.failures.fail_random(ratio, &mut rng);
                    self.injected_failures.extend(failed);
                }
                FailureAction::RepairAll => {
                    self.failures.repair_all(&self.injected_failures);
                    self.injected_failures.clear();
                }
                FailureAction::FailLink { tor, port, dir } => {
                    self.failures.fail(tor, port, dir);
                    self.injected_failures.push((tor, port, dir));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Epoch-start scheduling (the three pipelined steps)
    // ------------------------------------------------------------------

    fn epoch_start(&mut self, epoch: u64, t0: Nanos) {
        // §3.6.5: hosts drain the receive buffers at the downlink rate.
        if !self.rx_buffer.is_empty() {
            let drain = self.host_drain_per_epoch;
            for b in &mut self.rx_buffer {
                *b = b.saturating_sub(drain);
            }
        }
        if let SchedulerMode::Iterative { rounds } = self.opts.mode {
            self.epoch_start_iterative(rounds);
            return;
        }
        self.step_accept();
        self.step_grant();
        self.step_request(t0);
        if self.opts.selective_relay {
            self.relay_request_step(epoch);
        }
    }

    /// ACCEPT: consume grants delivered last epoch, fix this epoch's
    /// matching, and (stateful) revert debits of rejected grants.
    fn step_accept(&mut self) {
        self.active.fill(None);
        self.active_relay.fill(None);
        let mut total_grants = 0u64;
        let mut total_accepts = 0u64;
        for src in 0..self.n {
            let grants_in = std::mem::take(&mut self.inbox_grants[src]);
            total_grants += grants_in.len() as u64;
            let grants: Vec<Grant> = grants_in.iter().map(|&(g, _)| g).collect();
            let detector = &self.detector;
            let accepts: Vec<Accept> = if matches!(self.opts.mode, SchedulerMode::Projector) {
                // Port pre-binding means at most one grant per port: accept
                // everything usable.
                grants
                    .iter()
                    .filter(|g| detector.usable(src, g.dst, g.port))
                    .map(|g| Accept {
                        dst: g.dst,
                        port: g.port,
                    })
                    .collect()
            } else {
                self.accept_arbs[src]
                    .accept(self.s, &grants, |dst, port| detector.usable(src, dst, port))
            };
            total_accepts += accepts.len() as u64;
            for a in &accepts {
                self.active[src * self.s + a.port] = Some(a.dst);
            }
            // Stateful: revert matrix debits for grants not accepted.
            if matches!(self.opts.mode, SchedulerMode::Stateful) {
                for (g, debit) in &grants_in {
                    let kept = accepts.iter().any(|a| a.dst == g.dst && a.port == g.port);
                    if !kept && *debit > 0 {
                        self.matrices[g.dst].revert(src, *debit);
                    }
                }
            }
        }
        self.match_rec.record_epoch(total_grants, total_accepts);
        self.stats.grants_issued += total_grants;
        self.stats.accepts_made += total_accepts;

        // Relay accepts: leftover egress ports take relay grants.
        if self.opts.selective_relay {
            for src in 0..self.n {
                let grants = std::mem::take(&mut self.inbox_relay_grant[src]);
                for (via, port, final_dst, vol) in grants {
                    let slot = src * self.s + port;
                    if self.active[slot].is_none()
                        && self.active_relay[slot].is_none()
                        && self.detector.usable(src, via, port)
                    {
                        self.active_relay[slot] = Some((via, final_dst, vol));
                    }
                }
            }
        }
    }

    /// GRANT: consume requests delivered last epoch and allocate ports.
    fn step_grant(&mut self) {
        for dst in 0..self.n {
            let reqs = std::mem::take(&mut self.inbox_requests[dst]);
            self.grants_out[dst].clear();
            // §3.6.5 backpressure: a destination whose receive buffer is
            // more than half full grants nothing this epoch.
            if let Some(cap) = self.opts.host_buffer_bytes {
                if self.rx_buffer[dst] > cap / 2 {
                    continue;
                }
            }
            if matches!(self.opts.mode, SchedulerMode::Stateful) {
                for r in &reqs {
                    self.matrices[dst].report(r.src, r.value as u64);
                }
            }
            if reqs.is_empty() && !matches!(self.opts.mode, SchedulerMode::Stateful) {
                continue;
            }
            let detector = &self.detector;
            match self.opts.mode {
                SchedulerMode::Base | SchedulerMode::Iterative { .. } => {
                    let srcs: Vec<usize> = reqs.iter().map(|r| r.src).collect();
                    let grants = self.grant_arbs[dst]
                        .grant(self.s, &srcs, |src, port| detector.usable(src, dst, port));
                    self.grants_out[dst].extend(grants.into_iter().map(|(s, p)| (s, p, 0)));
                }
                SchedulerMode::Stateful => {
                    // Candidates: sources whose matrix entry shows pending
                    // data (requests above already refreshed the matrix).
                    let matrix = &self.matrices[dst];
                    let srcs: Vec<usize> = (0..self.n).filter(|&s| matrix.has_pending(s)).collect();
                    if srcs.is_empty() {
                        continue;
                    }
                    let grants = self.grant_arbs[dst]
                        .grant(self.s, &srcs, |src, port| detector.usable(src, dst, port));
                    let cap = self.epoch_capacity;
                    for (src, port) in grants {
                        let debit = self.matrices[dst].debit(src, cap);
                        self.grants_out[dst].push((src, port, debit));
                    }
                }
                SchedulerMode::DataSize | SchedulerMode::HolDelay { .. } => {
                    // Highest-value requester first. A served pair's value
                    // drops so ports spread across pairs: DataSize debits
                    // one epoch of service and stops granting at zero
                    // remaining backlog; HolDelay demotes the served pair
                    // below every still-waiting one but keeps it eligible
                    // for leftover ports (a deep-backlog pair may use
                    // several ports, as the base algorithm allows).
                    let datasize = matches!(self.opts.mode, SchedulerMode::DataSize);
                    let mut vals: Vec<(usize, f64)> =
                        reqs.iter().map(|r| (r.src, r.value)).collect();
                    for port in 0..self.s {
                        let usable_vals: Vec<(usize, f64)> = vals
                            .iter()
                            .copied()
                            .filter(|&(s, v)| {
                                (!datasize || v > 0.0) && detector.usable(s, dst, port)
                            })
                            .filter(|&(s, _)| self.topo.port_reaches(s, port, dst))
                            .collect();
                        if let Some(src) = informative::pick_max_value(&usable_vals) {
                            self.grants_out[dst].push((src, port, 0));
                            let v = vals.iter_mut().find(|(s, _)| *s == src).unwrap();
                            v.1 = if datasize {
                                (v.1 - self.epoch_capacity as f64).max(0.0)
                            } else {
                                -1.0 - v.1.abs() // strictly below fresh requests
                            };
                        }
                    }
                }
                SchedulerMode::Projector => {
                    let preqs: Vec<projector::PortRequest> = reqs
                        .iter()
                        .filter(|r| r.port != usize::MAX)
                        .filter(|r| detector.usable(r.src, dst, r.port))
                        .map(|r| projector::PortRequest {
                            src: r.src,
                            port: r.port,
                            waiting: r.value,
                        })
                        .collect();
                    let grants = projector::grant_by_waiting(self.s, &preqs);
                    self.grants_out[dst].extend(grants.into_iter().map(|(s, p)| (s, p, 0)));
                }
            }
        }
        if self.opts.selective_relay {
            self.relay_grant_step();
        }
    }

    /// REQUEST: read queues, emit this epoch's requests.
    fn step_request(&mut self, now: Nanos) {
        self.req_out.fill(f64::NAN);
        let threshold = self.cfg.request_threshold_bytes();
        for src in 0..self.n {
            if matches!(self.opts.mode, SchedulerMode::Projector) {
                let qs = &self.queues[src * self.n..(src + 1) * self.n];
                for (dst, preq) in projector::bind_requests(&self.topo, src, qs, now) {
                    self.req_out[src * self.n + dst] = preq.waiting;
                    self.req_port_out[src * self.n + dst] = preq.port;
                }
                continue;
            }
            for dst in 0..self.n {
                if dst == src {
                    continue;
                }
                let idx = src * self.n + dst;
                let q = &self.queues[idx];
                if q.total_bytes() <= threshold {
                    continue;
                }
                let value = match self.opts.mode {
                    SchedulerMode::DataSize => q.total_bytes() as f64,
                    SchedulerMode::HolDelay { alpha } => {
                        informative::hol_delay_value(q, now, alpha)
                    }
                    SchedulerMode::Stateful => {
                        let new = self.enqueued_total[idx] - self.reported_total[idx];
                        self.reported_total[idx] = self.enqueued_total[idx];
                        new as f64
                    }
                    _ => 0.0,
                };
                self.req_out[idx] = value;
                self.stats.requests_sent += 1;
            }
        }
    }

    /// Iterative mode: compute the whole multi-round match now, activate it
    /// `2 + 3·(rounds−1)` epochs later (Appendix A.2.1's delay model).
    fn epoch_start_iterative(&mut self, rounds: usize) {
        let threshold = self.cfg.request_threshold_bytes();
        let mut requests: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        #[allow(clippy::needless_range_loop)] // src indexes two flat arrays
        for src in 0..self.n {
            for dst in 0..self.n {
                if dst != src && self.queues[src * self.n + dst].total_bytes() > threshold {
                    requests[dst].push(src);
                }
            }
        }
        let matches = IterativeMatcher::compute(
            &self.topo,
            &requests,
            &mut self.grant_arbs,
            &mut self.accept_arbs,
            rounds,
        );
        self.iter_pending.push_back(matches);
        let delay = 2 + IterativeMatcher::extra_delay_epochs(rounds) as usize;
        self.active.fill(None);
        if self.iter_pending.len() > delay {
            let matches = self.iter_pending.pop_front().unwrap();
            for (src, accepts) in matches.iter().enumerate() {
                for a in accepts {
                    self.active[src * self.s + a.port] = Some(a.dst);
                }
            }
        }
        // Keep the predefined phase silent on requests/grants; messages are
        // modeled as equal-size bundles either way (§A.2.1's fairness note).
        self.req_out.fill(f64::NAN);
        for g in &mut self.grants_out {
            g.clear();
        }
    }

    // ------------------------------------------------------------------
    // Selective relay steps (Appendix A.2.2)
    // ------------------------------------------------------------------

    /// Direct backlog whose only path uses `port` of `tor` (thin-clos).
    fn direct_backlog_via_port(&self, tor: usize, port: usize) -> u64 {
        let mut sum = 0;
        for dst in 0..self.n {
            if dst != tor && self.topo.port_reaches(tor, port, dst) {
                sum += self.queues[tor * self.n + dst].total_bytes();
            }
        }
        sum
    }

    fn relay_request_step(&mut self, epoch: u64) {
        for src in 0..self.n {
            self.relay_req_out[src].clear();
            for dst in 0..self.n {
                if dst == src {
                    continue;
                }
                if !relay::pair_qualifies(&self.queues[src * self.n + dst], &self.relay_policy) {
                    continue;
                }
                // Scan a rotating window of intermediates; keep up to two
                // whose shared egress link is not busy with direct traffic.
                let mut found = 0;
                for j in 0..(2 * self.s).min(self.n - 2) {
                    let via = (src + 1 + ((epoch as usize + j) % (self.n - 1))) % self.n;
                    if via == src || via == dst {
                        continue;
                    }
                    let p1 = match self.topo.pair_port(src, via) {
                        Some(p) => p,
                        None => continue,
                    };
                    if relay::port_busy(self.direct_backlog_via_port(src, p1), &self.relay_policy) {
                        continue;
                    }
                    self.relay_req_out[src].push(RelayRequest {
                        src,
                        via,
                        final_dst: dst,
                    });
                    found += 1;
                    if found == 2 {
                        break;
                    }
                }
            }
        }
    }

    /// Intermediates grant leftover ports to relay requests.
    fn relay_grant_step(&mut self) {
        for via in 0..self.n {
            self.relay_grant_out[via].clear();
            let reqs = std::mem::take(&mut self.inbox_relay_req[via]);
            if reqs.is_empty() {
                continue;
            }
            let mut port_taken = vec![false; self.s];
            for &(_, p, _) in &self.grants_out[via] {
                port_taken[p] = true;
            }
            let mut space = self.relay_buffers[via].space(&self.relay_policy);
            for r in reqs {
                let p = match self.topo.pair_port(r.src, via) {
                    Some(p) => p,
                    None => continue,
                };
                if port_taken[p] || !self.detector.usable(r.src, via, p) {
                    continue;
                }
                // The intermediate's own egress toward the final destination
                // must not be busy with high-volume direct traffic.
                let p2 = match self.topo.pair_port(via, r.final_dst) {
                    Some(p2) => p2,
                    None => continue,
                };
                if relay::port_busy(self.direct_backlog_via_port(via, p2), &self.relay_policy) {
                    continue;
                }
                let vol = self.relay_policy.grant_volume.min(space);
                if vol == 0 {
                    break;
                }
                space -= vol;
                port_taken[p] = true;
                self.relay_grant_out[via].push((r.src, p, r.final_dst, vol));
            }
        }
    }

    // ------------------------------------------------------------------
    // The two phases
    // ------------------------------------------------------------------

    /// Rotation of the predefined round-robin rule (§3.6.1): the parallel
    /// network shifts the port↔offset mapping every epoch.
    fn rotation(&self, epoch: u64) -> u64 {
        match self.topo.kind() {
            TopologyKind::Parallel => epoch,
            TopologyKind::ThinClos => 0,
        }
    }

    fn predefined_phase(
        &mut self,
        flows: &[workload::Flow],
        mut cursor: usize,
        epoch: u64,
        t0: Nanos,
        tracker: &mut FlowTracker,
    ) -> usize {
        let rot = self.rotation(epoch);
        self.egress_attempted.fill(false);
        self.egress_ok.fill(false);
        self.ingress_attempted.fill(false);
        self.ingress_ok.fill(false);
        let prop = self.cfg.net.propagation_delay;
        for slot in 0..self.pre_slots {
            let slot_start = t0 + slot as Nanos * self.pre_slot_len;
            cursor = self.inject(flows, cursor, slot_start);
            let arrive = slot_start + self.pre_slot_len + prop;
            for src in 0..self.n {
                for port in 0..self.s {
                    let dst = match self.topo.predefined_dst(rot, slot, src, port) {
                        Some(d) => d,
                        None => continue,
                    };
                    self.egress_attempted[src * self.s + port] = true;
                    self.ingress_attempted[dst * self.s + port] = true;
                    let up = self.failures.link_up(src, dst, port);
                    if up {
                        self.egress_ok[src * self.s + port] = true;
                        self.ingress_ok[dst * self.s + port] = true;
                        self.deliver_messages(src, dst);
                    }
                    // Piggyback one data packet (§3.4.1) unless the
                    // detector already excluded the link.
                    if self.cfg.piggyback && self.detector.usable(src, dst, port) {
                        if let Some(pkt) =
                            self.queues[src * self.n + dst].dequeue_packet(self.pb_payload)
                        {
                            if pkt.relayed {
                                self.relay_buffers[src].release(pkt.bytes);
                            }
                            if up {
                                self.stats.piggyback_packets += 1;
                                self.stats.piggyback_bytes += pkt.bytes;
                                self.deliver_data(dst, pkt.flow, pkt.bytes, arrive, tracker);
                            } else {
                                // A ground-truth-down link loses the packet;
                                // recovery is an upper-layer (TCP) concern.
                                self.stats.lost_packets += 1;
                            }
                        }
                    }
                }
            }
        }
        cursor
    }

    /// Move this epoch's outgoing scheduling messages across one predefined
    /// connection `src → dst`.
    fn deliver_messages(&mut self, src: usize, dst: usize) {
        let idx = src * self.n + dst;
        let v = self.req_out[idx];
        if !v.is_nan() {
            self.inbox_requests[dst].push(ReqIn {
                src,
                value: v,
                port: self.req_port_out[idx],
            });
            self.req_out[idx] = f64::NAN; // delivered once
        }
        // Grants computed by `src` for requester `dst` ride this connection.
        for &(to, port, debit) in &self.grants_out[src] {
            if to == dst {
                self.inbox_grants[dst].push((Grant { dst: src, port }, debit));
            }
        }
        if self.opts.selective_relay {
            for r in &self.relay_req_out[src] {
                if r.via == dst {
                    self.inbox_relay_req[dst].push(*r);
                }
            }
            for &(to, port, final_dst, vol) in &self.relay_grant_out[src] {
                if to == dst {
                    self.inbox_relay_grant[dst].push((src, port, final_dst, vol));
                }
            }
        }
    }

    fn scheduled_phase(
        &mut self,
        flows: &[workload::Flow],
        mut cursor: usize,
        _epoch: u64,
        t0: Nanos,
        tracker: &mut FlowTracker,
    ) -> usize {
        let sched_start = t0 + self.pre_slots as Nanos * self.pre_slot_len;
        let prop = self.cfg.net.propagation_delay;
        for k in 0..self.cfg.epoch.scheduled_slots {
            let slot_start = sched_start + k as Nanos * self.cfg.epoch.scheduled_slot;
            cursor = self.inject(flows, cursor, slot_start);
            let arrive = slot_start + self.cfg.epoch.scheduled_slot + prop;
            for src in 0..self.n {
                for port in 0..self.s {
                    let slot = src * self.s + port;
                    if let Some(dst) = self.active[slot] {
                        if let Some(pkt) =
                            self.queues[src * self.n + dst].dequeue_packet(self.sched_payload)
                        {
                            if pkt.relayed {
                                self.relay_buffers[src].release(pkt.bytes);
                            }
                            if self.failures.link_up(src, dst, port) {
                                self.stats.scheduled_packets += 1;
                                self.stats.scheduled_bytes += pkt.bytes;
                                self.deliver_data(dst, pkt.flow, pkt.bytes, arrive, tracker);
                            } else {
                                self.stats.lost_packets += 1;
                            }
                        } else {
                            self.stats.overscheduled_slots += 1;
                        }
                    } else if let Some((via, final_dst, vol)) = self.active_relay[slot] {
                        if vol == 0 {
                            continue;
                        }
                        let cap = self.sched_payload.min(vol);
                        if let Some(pkt) =
                            self.queues[src * self.n + final_dst].dequeue_lowest_packet(cap)
                        {
                            if pkt.relayed {
                                self.relay_buffers[src].release(pkt.bytes);
                            }
                            self.active_relay[slot] = Some((via, final_dst, vol - pkt.bytes));
                            if self.failures.link_up(src, via, port) {
                                // Arrives at the intermediate: admitted to
                                // its relay buffer and re-queued for the
                                // final destination at lowest priority.
                                self.relay_buffers[via].admit(pkt.bytes);
                                self.queues[via * self.n + final_dst]
                                    .enqueue_relay(pkt.flow, pkt.bytes, arrive);
                            }
                        } else {
                            self.active_relay[slot] = None; // drained
                        }
                    } else {
                        self.stats.unmatched_slots += 1;
                    }
                }
            }
        }
        cursor
    }

    fn deliver_data(
        &mut self,
        dst: usize,
        flow: u64,
        bytes: u64,
        at: Nanos,
        tracker: &mut FlowTracker,
    ) {
        if let Some(b) = self.rx_buffer.get_mut(dst) {
            *b += bytes;
        }
        tracker.deliver(flow, bytes, at);
        if let Some(series) = self.rx_series.get_mut(dst) {
            series.record(at, bytes);
        }
        if let Some(total) = self.total_rx.as_mut() {
            total.record(at, bytes);
        }
    }

    /// Feed the epoch's predefined-phase observations to the detector.
    fn observe_epoch(&mut self) {
        for tor in 0..self.n {
            for port in 0..self.s {
                let i = tor * self.s + port;
                if self.egress_attempted[i] {
                    self.detector.observe_egress(tor, port, self.egress_ok[i]);
                }
                if self.ingress_attempted[i] {
                    self.detector.observe_ingress(tor, port, self.ingress_ok[i]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::NetworkConfig;
    use workload::{Flow, FlowTrace, IncastWorkload};

    fn small_cfg() -> NegotiatorConfig {
        NegotiatorConfig::paper_default(NetworkConfig::small_for_tests())
    }

    fn single_flow(bytes: u64, arrival: Nanos) -> FlowTrace {
        FlowTrace::new(vec![Flow {
            id: 0,
            src: 0,
            dst: 5,
            bytes,
            arrival,
        }])
    }

    #[test]
    fn mice_flow_bypasses_scheduling_delay_via_piggyback() {
        // A 500 B flow fits one piggyback packet: it should complete within
        // roughly one epoch + propagation, far below the 2-epoch delay.
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        let epoch = s.epoch_len();
        let report = s.run(&single_flow(500, 0), 50 * epoch);
        let fct = s.tracker().fct(0).expect("flow must complete");
        assert!(
            fct < 2 * epoch,
            "piggybacked mice FCT {fct} should beat the 2-epoch delay ({})",
            2 * epoch
        );
        assert_eq!(report.mice.completed, 1);
    }

    #[test]
    fn piggyback_disabled_pays_the_scheduling_delay() {
        let mut cfg = small_cfg();
        cfg.piggyback = false;
        let mut s = NegotiatorSim::new(cfg, TopologyKind::Parallel);
        let epoch = s.epoch_len();
        s.run(&single_flow(500, 0), 50 * epoch);
        let fct = s.tracker().fct(0).expect("flow must complete");
        assert!(
            fct >= 2 * epoch,
            "without PB the flow waits for the pipeline: fct {fct}"
        );
        assert!(fct < 5 * epoch, "but not forever: fct {fct}");
    }

    #[test]
    fn elephant_flow_completes_via_scheduled_phase() {
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let mut s = NegotiatorSim::new(small_cfg(), kind);
            let epoch = s.epoch_len();
            let report = s.run(&single_flow(500_000, 0), 600 * epoch);
            assert_eq!(
                s.tracker().completed_count(),
                1,
                "{kind:?}: elephant must finish"
            );
            assert!(report.all.completed == 1);
        }
    }

    #[test]
    fn incast_finishes_fast_regardless_of_degree() {
        // §4.2/Figure 7(a): piggybacking serves each sender its own
        // predefined slot, so finish time is flat in degree.
        let mut finish = Vec::new();
        for degree in [2usize, 8, 14] {
            let trace = IncastWorkload {
                degree,
                flow_bytes: 1_000,
                n_tors: 16,
                start: 10_000,
            }
            .generate(3);
            let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
            let epoch = s.epoch_len();
            s.run(&trace, 100 * epoch);
            let t =
                RunReport::burst_finish_time(&trace, s.tracker()).expect("incast must complete");
            finish.push(t);
        }
        let spread = *finish.iter().max().unwrap() as f64 / *finish.iter().min().unwrap() as f64;
        assert!(
            spread < 2.5,
            "incast finish should be nearly flat in degree: {finish:?}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let trace = single_flow(100_000, 123);
        let run = |seed: u64| {
            let mut cfg = small_cfg();
            cfg.seed = seed;
            let mut s = NegotiatorSim::new(cfg, TopologyKind::Parallel);
            s.run(&trace, 500_000);
            s.tracker().fct(0)
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn match_ratio_recorded_under_load() {
        let trace = FlowTrace::new(
            (0..16)
                .flat_map(|src| {
                    (0..16).filter(move |&d| d != src).map(move |dst| Flow {
                        id: 0,
                        src,
                        dst,
                        bytes: 200_000,
                        arrival: 0,
                    })
                })
                .collect(),
        );
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        let epoch = s.epoch_len();
        s.run(&trace, 100 * epoch);
        let ratio = s.match_recorder().overall_ratio().expect("grants happened");
        assert!(ratio > 0.3 && ratio <= 1.0, "ratio {ratio}");
    }

    #[test]
    fn failed_links_reduce_then_recover_bandwidth() {
        let trace = single_flow(100_000_000, 0); // effectively infinite source
        let mut cfg = small_cfg();
        cfg.piggyback = true;
        let mut s = NegotiatorSim::with_options(
            cfg,
            TopologyKind::Parallel,
            SimOptions {
                total_rx_window: Some(10_000),
                ..SimOptions::default()
            },
        );
        let epoch = s.epoch_len();
        let fail_at = 60 * epoch;
        let repair_at = 160 * epoch;
        s.schedule_failure(
            fail_at,
            FailureAction::FailRandom {
                ratio: 0.25,
                seed: 7,
            },
        );
        s.schedule_failure(repair_at, FailureAction::RepairAll);
        s.run(&trace, 260 * epoch);
        let rx = s.total_rx().unwrap();
        let before = rx.mean_gbps(10 * epoch, fail_at);
        let during = rx.mean_gbps(fail_at + 10 * epoch, repair_at);
        let after = rx.mean_gbps(repair_at + 10 * epoch, 250 * epoch);
        assert!(before > 0.0);
        assert!(
            during < before * 0.95,
            "failures must cost bandwidth: before {before}, during {during}"
        );
        assert!(
            after > during,
            "recovery must restore bandwidth: during {during}, after {after}"
        );
    }

    #[test]
    fn selective_relay_runs_and_delivers_on_thin_clos() {
        let mut s = NegotiatorSim::with_options(
            small_cfg(),
            TopologyKind::ThinClos,
            SimOptions {
                selective_relay: true,
                ..SimOptions::default()
            },
        );
        let epoch = s.epoch_len();
        let report = s.run(&single_flow(2_000_000, 0), 3000 * epoch);
        assert_eq!(report.all.completed, 1, "elephant must fully arrive");
    }

    #[test]
    #[should_panic(expected = "thin-clos")]
    fn selective_relay_rejected_on_parallel() {
        NegotiatorSim::with_options(
            small_cfg(),
            TopologyKind::Parallel,
            SimOptions {
                selective_relay: true,
                ..SimOptions::default()
            },
        );
    }

    #[test]
    fn variant_modes_all_run_to_completion() {
        for mode in [
            SchedulerMode::Iterative { rounds: 3 },
            SchedulerMode::DataSize,
            SchedulerMode::HolDelay { alpha: 0.001 },
            SchedulerMode::Stateful,
            SchedulerMode::Projector,
        ] {
            let mut s = NegotiatorSim::with_options(
                small_cfg(),
                TopologyKind::Parallel,
                SimOptions {
                    mode,
                    ..SimOptions::default()
                },
            );
            let epoch = s.epoch_len();
            let report = s.run(&single_flow(300_000, 0), 1000 * epoch);
            assert_eq!(report.all.completed, 1, "{mode:?} must deliver the flow");
        }
    }

    #[test]
    fn stats_capture_bypass_and_overscheduling() {
        // A small flow (one piggyback packet) delivered entirely via PB.
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        let epoch = s.epoch_len();
        s.run(&single_flow(500, 0), 20 * epoch);
        let st = *s.stats();
        assert_eq!(st.piggyback_packets, 1);
        assert_eq!(st.piggyback_bytes, 500);
        assert_eq!(st.scheduled_packets, 0, "no scheduled data needed");
        assert_eq!(st.piggyback_share(), 1.0);
        assert_eq!(st.lost_packets, 0);

        // A large flow drains mostly through the scheduled phase, and the
        // stateless pipeline over-schedules the tail: grants keep arriving
        // for an already-empty queue.
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        s.run(&single_flow(200_000, 0), 200 * epoch);
        let st = *s.stats();
        assert!(st.scheduled_bytes > st.piggyback_bytes);
        assert!(
            st.overscheduled_slots > 0,
            "stateless scheduling must waste some tail slots"
        );
        assert!(st.requests_sent > 0);
        assert!(st.accepts_made <= st.grants_issued);
    }

    #[test]
    fn lost_packets_counted_under_ground_failures() {
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        let epoch = s.epoch_len();
        s.schedule_failure(
            0,
            FailureAction::FailRandom {
                ratio: 0.3,
                seed: 2,
            },
        );
        s.run(&single_flow(500_000, 0), 50 * epoch);
        assert!(
            s.stats().lost_packets > 0,
            "undetected failures must lose packets in flight"
        );
    }

    #[test]
    fn host_backpressure_caps_receive_rate() {
        // One hot destination fed by many sources; with §3.6.5 enabled and
        // a small receive buffer, sustained delivery cannot exceed the
        // host-aggregate rate by much, while the unbounded setting enjoys
        // the full 2x fabric speedup.
        let trace = FlowTrace::new(
            (1..16)
                .map(|src| Flow {
                    id: 0,
                    src,
                    dst: 0,
                    bytes: 400_000,
                    arrival: 0,
                })
                .collect(),
        );
        let run = |buffer: Option<u64>| {
            let mut s = NegotiatorSim::with_options(
                small_cfg(),
                TopologyKind::Parallel,
                SimOptions {
                    host_buffer_bytes: buffer,
                    ..SimOptions::default()
                },
            );
            let epoch = s.epoch_len();
            s.run(&trace, 600 * epoch);
            // Received rate at the hot ToR while the burst drains, in Gbps.
            let finish =
                RunReport::burst_finish_time(&trace, s.tracker()).expect("burst must complete");
            (s.tracker().delivered_payload() * 8) as f64 / finish as f64
        };
        let unbounded = run(None);
        let bounded = run(Some(100_000));
        // Hosts drain at 200 Gbps on the test fabric; the fabric can push
        // 400 Gbps into one ToR.
        assert!(
            unbounded > 250.0,
            "unbounded should use speedup: {unbounded}"
        );
        assert!(
            bounded < unbounded * 0.85,
            "backpressure must throttle: bounded {bounded} vs unbounded {unbounded}"
        );
        assert!(bounded > 100.0, "but data must still flow: {bounded}");
    }

    #[test]
    fn goodput_reflects_offered_load() {
        // Saturating all-to-all: goodput should be substantial.
        let trace = FlowTrace::new(
            (0..16)
                .flat_map(|src| {
                    (0..16).filter(move |&d| d != src).map(move |dst| Flow {
                        id: 0,
                        src,
                        dst,
                        bytes: 1_000_000,
                        arrival: 0,
                    })
                })
                .collect(),
        );
        let mut s = NegotiatorSim::new(small_cfg(), TopologyKind::Parallel);
        let dur = 300 * s.epoch_len();
        let report = s.run(&trace, dur);
        assert!(
            report.goodput.normalized() > 0.5,
            "normalized goodput {}",
            report.goodput.normalized()
        );
    }
}
