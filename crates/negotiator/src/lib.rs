#![warn(missing_docs)]

//! # NegotiaToR
//!
//! A from-scratch implementation of *NegotiaToR: Towards A Simple Yet
//! Effective On-demand Reconfigurable Datacenter Network* (SIGCOMM 2024):
//! an optical DCN architecture where ToRs, connected by passive AWGRs and
//! fast-tunable lasers, negotiate non-conflicting one-hop paths each epoch
//! from binary traffic demands.
//!
//! The architecture in one paragraph (§3): time is divided into fixed
//! epochs of two phases. The *predefined phase* round-robins all-to-all
//! connectivity in a handful of nanosecond timeslots; ToRs use it as an
//! in-band control plane to exchange REQUEST/GRANT/ACCEPT messages of the
//! distributed **NegotiaToR Matching** algorithm — pipelined across three
//! epochs so each epoch carries one step — and additionally piggyback one
//! small data packet per pair, which is what lets latency-sensitive mice
//! flows (and incasts) bypass the ≈2-epoch scheduling delay entirely. The
//! *scheduled phase* then holds the negotiated matching for ~30 packet
//! slots of conflict-free, bufferless one-hop transmission. PIAS-style
//! priority queues keep elephants from blocking mice at the sources.
//!
//! Crate layout:
//!
//! * [`config`] — epoch timing (§3.3/§4.1) and feature switches.
//! * [`rings`] — RRM-style round-robin arbiters.
//! * [`queues`] — per-destination PIAS priority queues (§3.4.2).
//! * [`matching`] — the three-step matching algorithm (§3.2, Algorithm 1).
//! * [`fault`] — dummy-message fault detection/recovery (§3.6.1).
//! * [`sim`] — the slot-synchronous epoch engine binding it all.
//! * [`theory`] — closed-form efficiency model (§3.2.2).
//! * [`variants`] — the Appendix A.2 design-space explorations.

pub mod config;
pub mod fault;
pub mod matching;
pub mod queues;
pub mod rings;
pub mod sim;
pub mod stats;
pub mod theory;
pub mod variants;

pub use config::{EpochConfig, NegotiatorConfig};
pub use sim::{FailureAction, FaultAction, NegotiatorSim, SchedulerMode, SimOptions};
