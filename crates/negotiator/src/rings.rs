//! Round-robin priority rings (§3.2.1), the arbiters behind GRANT and
//! ACCEPT.
//!
//! A ring holds a fixed member set (ToR ids). The pointer marks the
//! highest-priority member; priority decreases clockwise. Picking among a
//! candidate subset selects the candidate closest clockwise from the
//! pointer, then advances the pointer to just past the winner — RRM's
//! "least recently granted first" rule, which the paper adopts for fairness
//! and starvation freedom.

use sim::Xoshiro256;

/// A round-robin arbiter over a fixed set of ToR ids.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Members in clockwise order.
    members: Vec<usize>,
    /// `slot_of[tor]` = position in `members`, or `usize::MAX` if absent.
    slot_of: Vec<usize>,
    /// Index into `members` of the highest-priority member.
    pointer: usize,
}

impl Ring {
    /// Ring over `members` (deduplicated, in the given clockwise order)
    /// with a randomly initialized pointer, as Algorithm 1 specifies.
    pub fn new(members: Vec<usize>, rng: &mut Xoshiro256) -> Self {
        assert!(!members.is_empty(), "a ring needs at least one member");
        let max = members.iter().copied().max().unwrap();
        let mut slot_of = vec![usize::MAX; max + 1];
        for (i, &m) in members.iter().enumerate() {
            assert_eq!(slot_of[m], usize::MAX, "duplicate ring member {m}");
            slot_of[m] = i;
        }
        let pointer = rng.index(members.len());
        Ring {
            members,
            slot_of,
            pointer,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ring has no members (never — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Current highest-priority member (exposed for tests/diagnostics).
    pub fn pointer_member(&self) -> usize {
        self.members[self.pointer]
    }

    /// Clockwise distance from the pointer to `member`.
    fn distance(&self, member: usize) -> Option<usize> {
        let slot = *self.slot_of.get(member)?;
        if slot == usize::MAX {
            return None;
        }
        Some((slot + self.members.len() - self.pointer) % self.members.len())
    }

    /// Pick the highest-priority candidate and advance the pointer past it.
    /// Candidates not in the ring are ignored; `None` if no candidate
    /// qualifies. Duplicate candidates are harmless.
    pub fn pick(&mut self, candidates: &[usize]) -> Option<usize> {
        let (winner, slot) = candidates
            .iter()
            .filter_map(|&c| self.distance(c).map(|d| (d, c)))
            .min()
            .map(|(d, c)| (c, (self.pointer + d) % self.members.len()))?;
        self.pointer = (slot + 1) % self.members.len();
        Some(winner)
    }

    /// Pick up to `k` times in sequence (the shared per-ToR GRANT ring on
    /// the parallel network allocates all `k` ports from one ring; with
    /// fewer candidates than ports, members are granted again in cycle —
    /// exactly the Figure 3(a) example where two requesters split four
    /// ports two-and-two).
    pub fn pick_cycle(&mut self, candidates: &[usize], k: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            match self.pick(candidates) {
                Some(w) => out.push(w),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(members: Vec<usize>) -> Ring {
        // Seed chosen so tests can pin the initial pointer via rotation.
        let mut r = Ring::new(members, &mut Xoshiro256::new(1));
        // Normalize pointer to 0 for deterministic assertions.
        r.pointer = 0;
        r
    }

    #[test]
    fn picks_clockwise_from_pointer() {
        let mut r = ring(vec![0, 1, 2, 3]);
        assert_eq!(r.pick(&[2, 3]), Some(2));
        // Pointer now just past 2 → member 3 is highest priority.
        assert_eq!(r.pointer_member(), 3);
        assert_eq!(r.pick(&[1, 3]), Some(3));
        assert_eq!(r.pick(&[1, 2]), Some(1), "wraps around");
    }

    #[test]
    fn least_recently_granted_wins() {
        let mut r = ring(vec![0, 1, 2, 3]);
        // Grant 0 repeatedly; each time, 0 moves to lowest priority.
        assert_eq!(r.pick(&[0, 1]), Some(0));
        assert_eq!(r.pick(&[0, 1]), Some(1));
        assert_eq!(r.pick(&[0, 1]), Some(0), "alternates fairly");
    }

    #[test]
    fn no_candidate_no_pick() {
        let mut r = ring(vec![0, 1, 2]);
        assert_eq!(r.pick(&[]), None);
        assert_eq!(r.pick(&[7, 9]), None, "non-members ignored");
        assert_eq!(r.pointer_member(), 0, "pointer untouched on failure");
    }

    #[test]
    fn pick_cycle_splits_ports_like_figure_3a() {
        // 4 ports, 2 requesters → each granted twice, alternating.
        let mut r = ring(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let grants = r.pick_cycle(&[1, 3], 4);
        assert_eq!(grants, vec![1, 3, 1, 3]);
    }

    #[test]
    fn pick_cycle_stops_without_candidates() {
        let mut r = ring(vec![0, 1]);
        assert_eq!(r.pick_cycle(&[], 4), Vec::<usize>::new());
    }

    #[test]
    fn sparse_member_sets_work() {
        // Thin-clos per-port rings hold one source group, e.g. {32..48}.
        let members: Vec<usize> = (32..48).collect();
        let mut r = ring(members);
        assert_eq!(r.pick(&[40, 35]), Some(35));
        assert_eq!(r.pick(&[0, 100]), None);
    }

    #[test]
    fn random_initialization_varies_pointer() {
        let members: Vec<usize> = (0..64).collect();
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..32 {
            let r = Ring::new(members.clone(), &mut Xoshiro256::new(seed));
            seen.insert(r.pointer_member());
        }
        assert!(seen.len() > 10, "pointers should spread across members");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_members_rejected() {
        Ring::new(vec![1, 2, 1], &mut Xoshiro256::new(0));
    }

    #[test]
    fn fairness_over_many_rounds() {
        // All members always requesting: grants must be perfectly balanced.
        let mut r = ring((0..8).collect());
        let all: Vec<usize> = (0..8).collect();
        let mut counts = [0u32; 8];
        for _ in 0..800 {
            counts[r.pick(&all).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "counts {counts:?}");
    }
}
