//! Per-destination queues with PIAS-style mice prioritization (§3.1, §3.4.2).
//!
//! Every ToR keeps one queue per destination ToR. Arriving flow data is
//! split across three priority levels by cumulative byte count — the
//! information-agnostic PIAS scheme [3]: the first 1 KB of a flow is
//! highest priority, the next 9 KB middle, the remainder lowest (§4.1).
//! Dequeueing always serves the highest non-empty level; within a level,
//! FIFO. A flow's bytes therefore leave in order (its priority only ever
//! demotes), which is what keeps per-flow delivery in order end-to-end
//! (§3.6.5).
//!
//! With priority queues disabled everything lands on one level, giving the
//! plain FIFO of the "w/o PQ" configurations.

use sim::time::Nanos;
use std::collections::VecDeque;

/// Number of PIAS levels (§4.1 uses three).
pub const PRIORITY_LEVELS: usize = 3;

/// A contiguous run of one flow's bytes at one priority level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Owning flow.
    pub flow: u64,
    /// Bytes in this segment still queued.
    pub bytes: u64,
    /// When the segment was enqueued (HoL waiting-delay measurements for
    /// the informative-requests variant, Appendix A.2.3).
    pub enqueued: Nanos,
    /// True when the bytes arrived over a relay hop and are being forwarded
    /// (traffic-aware selective relay, Appendix A.2.2) — the intermediate
    /// ToR's relay-buffer accounting needs to see them leave.
    pub relayed: bool,
}

/// One packet's worth of dequeued data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Owning flow.
    pub flow: u64,
    /// Payload bytes (≤ the per-packet payload limit).
    pub bytes: u64,
    /// Priority level the bytes came from (0 = highest).
    pub priority: usize,
    /// Whether the bytes were relay-forwarded (see [`Segment::relayed`]).
    pub relayed: bool,
}

/// The per-destination queue of one (source ToR, destination ToR) pair.
#[derive(Debug, Clone, Default)]
pub struct DestQueue {
    levels: [VecDeque<Segment>; PRIORITY_LEVELS],
    level_totals: [u64; PRIORITY_LEVELS],
    total_bytes: u64,
    relayed_bytes: u64,
}

impl DestQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue `bytes` of `flow` at `now`, split across priority levels by
    /// the PIAS `thresholds` (cumulative byte boundaries, e.g. `[1000,
    /// 10000]`). With `pias` false, all bytes go to level 0 (plain FIFO).
    pub fn enqueue_flow(
        &mut self,
        flow: u64,
        bytes: u64,
        now: Nanos,
        pias: bool,
        thresholds: [u64; PRIORITY_LEVELS - 1],
    ) {
        debug_assert!(bytes > 0, "flows carry at least one byte");
        self.total_bytes += bytes;
        if !pias {
            self.level_totals[0] += bytes;
            self.levels[0].push_back(Segment {
                flow,
                bytes,
                enqueued: now,
                relayed: false,
            });
            return;
        }
        let mut remaining = bytes;
        let mut prev_boundary = 0u64;
        for (level, &boundary) in thresholds.iter().enumerate() {
            let cap = boundary - prev_boundary;
            let take = remaining.min(cap);
            if take > 0 {
                self.level_totals[level] += take;
                self.levels[level].push_back(Segment {
                    flow,
                    bytes: take,
                    enqueued: now,
                    relayed: false,
                });
                remaining -= take;
            }
            prev_boundary = boundary;
        }
        if remaining > 0 {
            self.level_totals[PRIORITY_LEVELS - 1] += remaining;
            self.levels[PRIORITY_LEVELS - 1].push_back(Segment {
                flow,
                bytes: remaining,
                enqueued: now,
                relayed: false,
            });
        }
    }

    /// Total queued bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Queued bytes that arrived over a relay hop (forwarding backlog).
    /// Relay qualification subtracts these so already-relayed data does not
    /// trigger further relaying.
    pub fn relayed_bytes(&self) -> u64 {
        self.relayed_bytes
    }

    /// Any data pending?
    pub fn has_data(&self) -> bool {
        self.total_bytes > 0
    }

    /// Bytes queued at one priority level (O(1)).
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.level_totals[level]
    }

    /// Enqueue `bytes` of `flow` directly at `level` — the traffic-oblivious
    /// baseline splits flows itself (its first-KB chunks are bound to a VLB
    /// intermediate instead of queued here).
    pub fn enqueue_at_level(&mut self, flow: u64, bytes: u64, level: usize, now: Nanos) {
        debug_assert!(bytes > 0);
        self.total_bytes += bytes;
        self.level_totals[level] += bytes;
        self.levels[level].push_back(Segment {
            flow,
            bytes,
            enqueued: now,
            relayed: false,
        });
    }

    /// Dequeue one packet of at most `max_payload` bytes from a specific
    /// priority level.
    pub fn dequeue_level_packet(&mut self, level: usize, max_payload: u64) -> Option<Packet> {
        debug_assert!(max_payload > 0);
        let q = &mut self.levels[level];
        let seg = q.front_mut()?;
        let take = seg.bytes.min(max_payload);
        seg.bytes -= take;
        let (flow, relayed) = (seg.flow, seg.relayed);
        if seg.bytes == 0 {
            q.pop_front();
        }
        self.total_bytes -= take;
        self.level_totals[level] -= take;
        if relayed {
            self.relayed_bytes -= take;
        }
        Some(Packet {
            flow,
            bytes: take,
            priority: level,
            relayed,
        })
    }

    /// Enqueue time of the head-of-line segment at `level`, if any
    /// (Appendix A.2.3's weighted HoL waiting delay).
    pub fn hol_enqueued(&self, level: usize) -> Option<Nanos> {
        self.levels[level].front().map(|s| s.enqueued)
    }

    /// Dequeue one packet of at most `max_payload` bytes from the highest
    /// non-empty priority level. One packet carries bytes of one flow only
    /// (a short segment yields a short packet — the slot still costs full
    /// slot time, as on the wire).
    pub fn dequeue_packet(&mut self, max_payload: u64) -> Option<Packet> {
        debug_assert!(max_payload > 0);
        for (priority, level) in self.levels.iter_mut().enumerate() {
            if let Some(seg) = level.front_mut() {
                let take = seg.bytes.min(max_payload);
                seg.bytes -= take;
                let (flow, relayed) = (seg.flow, seg.relayed);
                if seg.bytes == 0 {
                    level.pop_front();
                }
                self.total_bytes -= take;
                self.level_totals[priority] -= take;
                if relayed {
                    self.relayed_bytes -= take;
                }
                return Some(Packet {
                    flow,
                    bytes: take,
                    priority,
                    relayed,
                });
            }
        }
        None
    }

    /// Dequeue up to `max_packets` packets of at most `max_payload` bytes
    /// each, appending to `out` (not cleared): one call pulls a full
    /// scheduled phase's worth of packets for a matched port, amortizing
    /// the per-packet dispatch the epoch engine used to pay slot by slot.
    /// Equivalent to calling [`DestQueue::dequeue_packet`] `max_packets`
    /// times and stopping at the first `None`.
    pub fn dequeue_packets_into(
        &mut self,
        max_payload: u64,
        max_packets: usize,
        out: &mut Vec<Packet>,
    ) {
        for _ in 0..max_packets {
            let Some(packet) = self.dequeue_packet(max_payload) else {
                break;
            };
            out.push(packet);
        }
    }

    /// Enqueue relay-forwarded bytes at the lowest priority level (the
    /// intermediate ToR side of traffic-aware selective relay; relayed data
    /// never outranks the intermediate's own traffic).
    pub fn enqueue_relay(&mut self, flow: u64, bytes: u64, now: Nanos) {
        debug_assert!(bytes > 0);
        self.total_bytes += bytes;
        self.relayed_bytes += bytes;
        self.level_totals[PRIORITY_LEVELS - 1] += bytes;
        self.levels[PRIORITY_LEVELS - 1].push_back(Segment {
            flow,
            bytes,
            enqueued: now,
            relayed: true,
        });
    }

    /// Dequeue one packet from the *lowest* priority level only — used by
    /// the traffic-aware selective relay variant, which relays elephant
    /// (lowest-priority) data exclusively (Appendix A.2.2).
    pub fn dequeue_lowest_packet(&mut self, max_payload: u64) -> Option<Packet> {
        let level = &mut self.levels[PRIORITY_LEVELS - 1];
        let seg = level.front_mut()?;
        let take = seg.bytes.min(max_payload);
        seg.bytes -= take;
        let (flow, relayed) = (seg.flow, seg.relayed);
        if seg.bytes == 0 {
            level.pop_front();
        }
        self.total_bytes -= take;
        self.level_totals[PRIORITY_LEVELS - 1] -= take;
        if relayed {
            self.relayed_bytes -= take;
        }
        Some(Packet {
            flow,
            bytes: take,
            priority: PRIORITY_LEVELS - 1,
            relayed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TH: [u64; 2] = [1_000, 10_000];

    #[test]
    fn pias_splits_a_large_flow_across_levels() {
        let mut q = DestQueue::new();
        q.enqueue_flow(7, 50_000, 0, true, TH);
        assert_eq!(q.level_bytes(0), 1_000);
        assert_eq!(q.level_bytes(1), 9_000);
        assert_eq!(q.level_bytes(2), 40_000);
        assert_eq!(q.total_bytes(), 50_000);
    }

    #[test]
    fn small_flow_stays_at_top_priority() {
        let mut q = DestQueue::new();
        q.enqueue_flow(1, 800, 0, true, TH);
        assert_eq!(q.level_bytes(0), 800);
        assert_eq!(q.level_bytes(1), 0);
    }

    #[test]
    fn mid_size_flow_spans_two_levels() {
        let mut q = DestQueue::new();
        q.enqueue_flow(1, 5_000, 0, true, TH);
        assert_eq!(q.level_bytes(0), 1_000);
        assert_eq!(q.level_bytes(1), 4_000);
        assert_eq!(q.level_bytes(2), 0);
    }

    #[test]
    fn without_pias_everything_is_fifo() {
        let mut q = DestQueue::new();
        q.enqueue_flow(1, 50_000, 0, false, TH);
        q.enqueue_flow(2, 500, 1, false, TH);
        assert_eq!(q.level_bytes(0), 50_500);
        // Elephant 1 fully drains before mice 2 — head-of-line blocking.
        let p = q.dequeue_packet(1_115).unwrap();
        assert_eq!(p.flow, 1);
    }

    #[test]
    fn pias_lets_late_mice_bypass_earlier_elephant_tail() {
        let mut q = DestQueue::new();
        q.enqueue_flow(1, 50_000, 0, true, TH); // elephant first
        q.enqueue_flow(2, 500, 1, true, TH); // mice later
                                             // Elephant's first 1 KB is level 0 and FIFO-ahead of the mice…
        assert_eq!(q.dequeue_packet(1_115).unwrap().flow, 1);
        // …but the mice's 500 B now outranks the elephant's levels 1/2.
        let p = q.dequeue_packet(1_115).unwrap();
        assert_eq!((p.flow, p.bytes, p.priority), (2, 500, 0));
    }

    #[test]
    fn dequeue_respects_packet_size_and_flow_boundaries() {
        let mut q = DestQueue::new();
        q.enqueue_flow(1, 2_500, 0, true, TH);
        // Level 0 holds 1000 B: one full packet caps at that segment.
        let p = q.dequeue_packet(1_115).unwrap();
        assert_eq!((p.flow, p.bytes, p.priority), (1, 1_000, 0));
        let p = q.dequeue_packet(1_115).unwrap();
        assert_eq!((p.flow, p.bytes, p.priority), (1, 1_115, 1));
        let p = q.dequeue_packet(1_115).unwrap();
        assert_eq!((p.flow, p.bytes, p.priority), (1, 385, 1));
        assert!(q.dequeue_packet(1_115).is_none());
        assert_eq!(q.total_bytes(), 0);
    }

    #[test]
    fn per_flow_byte_order_is_preserved() {
        // Priority only demotes, so a flow's own bytes always leave in order.
        let mut q = DestQueue::new();
        q.enqueue_flow(1, 12_000, 0, true, TH);
        q.enqueue_flow(2, 12_000, 5, true, TH);
        let mut seen = std::collections::BTreeMap::new();
        let mut last_prio: std::collections::BTreeMap<u64, usize> = Default::default();
        while let Some(p) = q.dequeue_packet(1_115) {
            *seen.entry(p.flow).or_insert(0u64) += p.bytes;
            let lp = last_prio.entry(p.flow).or_insert(0);
            assert!(p.priority >= *lp, "flow priority must only demote");
            *lp = p.priority;
        }
        assert_eq!(seen[&1], 12_000);
        assert_eq!(seen[&2], 12_000);
    }

    #[test]
    fn hol_enqueue_times() {
        let mut q = DestQueue::new();
        assert_eq!(q.hol_enqueued(0), None);
        q.enqueue_flow(1, 20_000, 42, true, TH);
        assert_eq!(q.hol_enqueued(0), Some(42));
        assert_eq!(q.hol_enqueued(2), Some(42));
    }

    #[test]
    fn batch_dequeue_equals_repeated_single_dequeues() {
        let build = || {
            let mut q = DestQueue::new();
            q.enqueue_flow(1, 12_000, 0, true, TH);
            q.enqueue_flow(2, 500, 1, true, TH);
            q.enqueue_relay(3, 4_000, 2);
            q.enqueue_flow(4, 27, 3, true, TH);
            q
        };
        for limit in [0usize, 1, 5, 100] {
            let mut a = build();
            let mut b = build();
            let mut batch = Vec::new();
            a.dequeue_packets_into(1_115, limit, &mut batch);
            let mut single = Vec::new();
            for _ in 0..limit {
                match b.dequeue_packet(1_115) {
                    Some(p) => single.push(p),
                    None => break,
                }
            }
            assert_eq!(batch, single, "limit {limit}");
            assert_eq!(a.total_bytes(), b.total_bytes());
            assert_eq!(a.relayed_bytes(), b.relayed_bytes());
            for level in 0..PRIORITY_LEVELS {
                assert_eq!(a.level_bytes(level), b.level_bytes(level));
            }
        }
    }

    #[test]
    fn dequeue_lowest_skips_mice_levels() {
        let mut q = DestQueue::new();
        q.enqueue_flow(1, 50_000, 0, true, TH);
        q.enqueue_flow(2, 500, 0, true, TH);
        let p = q.dequeue_lowest_packet(1_115).unwrap();
        assert_eq!((p.flow, p.priority), (1, 2));
        assert_eq!(q.total_bytes(), 50_500 - 1_115);
    }
}
