#![warn(missing_docs)]

//! Traffic-oblivious reconfigurable DCN baseline (§2, §4.1).
//!
//! The state of the art NegotiaToR compares against: a Sirius-like [4]
//! design in which the network reconfigures itself on a fixed round-robin
//! schedule — every timeslot, regardless of traffic — and adapts the
//! *traffic* to the network with Valiant Load Balancing: data is spread
//! uniformly across intermediate ToRs on a first hop, then forwarded to the
//! real destination on a second. No scheduling messages, no demand
//! measurement; simplicity traded for doubled traffic volume, bandwidth
//! competition at receivers, and detour latency — the costs §2 analyzes and
//! §4 measures.
//!
//! Implementation notes, matching the paper's own re-implementation
//! (§4.1 "following Sirius [4] to implement the state-of-the-art benchmark
//! on the same simulator"):
//!
//! * Same fabric model and 2× uplink speedup as NegotiaToR; every 100 ns
//!   timeslot (10 ns guard + 90 ns data) reconfigures to the next
//!   round-robin match, using the same topology pattern functions.
//! * PIAS priority queues at *sources only* — "the multi-level-feedback-
//!   queue based prioritization does not apply to data at intermediate
//!   nodes"; relay queues are plain FIFO, which is exactly why elephants
//!   block mice at intermediates.
//! * First-KB (mice) chunks are bound to a uniformly random intermediate at
//!   arrival, as in per-packet VLB; bulk data is spread lazily across
//!   whatever intermediate the rotor offers next, which realizes the same
//!   uniform spreading without materializing per-chunk state.
//! * Congestion control for relay buffers: a source does not inject
//!   first-hop traffic toward an intermediate whose relay backlog exceeds
//!   the buffer cap (standing in for Sirius's credit-based flow control).

pub mod config;
pub mod sim;

pub use config::ObliviousConfig;
pub use sim::{ObliviousRecording, ObliviousSim};
