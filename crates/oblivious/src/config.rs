//! Configuration of the traffic-oblivious baseline.

use sim::time::Nanos;
use topology::NetworkConfig;

/// Timing and feature knobs of the rotor fabric.
#[derive(Debug, Clone)]
pub struct ObliviousConfig {
    /// Physical network parameters (shared with NegotiaToR).
    pub net: NetworkConfig,
    /// Guardband absorbing the per-slot reconfiguration (paper: 10 ns).
    pub guardband: Nanos,
    /// Data window of one rotor timeslot (paper-equivalent: 90 ns).
    pub data_window: Nanos,
    /// Packet header bytes (paper: 10 B).
    pub header_bytes: u64,
    /// PIAS priority queues at sources ("w/o PQ" configurations disable).
    pub priority_queues: bool,
    /// Shallow relay buffer per (intermediate, final-destination) pair, in
    /// packets. Sources withhold first-hop bulk toward a full buffer
    /// (credit-style congestion control, cf. §3.2.1's remark that
    /// traffic-oblivious designs need one).
    pub relay_pair_packets: u32,
    /// Bulk (lowest-priority) data is sprayed in bundles of this many
    /// packets per random intermediate; mice levels spray per packet.
    pub bundle_chunks: u32,
    /// Seed for VLB intermediate choices.
    pub seed: u64,
}

impl ObliviousConfig {
    /// Paper-equivalent defaults over `net`.
    pub fn paper_default(net: NetworkConfig) -> Self {
        ObliviousConfig {
            net,
            guardband: 10,
            data_window: 90,
            header_bytes: 10,
            priority_queues: true,
            relay_pair_packets: 96,
            bundle_chunks: 16,
            seed: 0x0B11_7105,
        }
    }

    /// Full slot length.
    pub fn slot_len(&self) -> Nanos {
        self.guardband + self.data_window
    }

    /// Payload bytes of one rotor packet (paper: 1115 B at 100 Gbps).
    pub fn payload(&self) -> u64 {
        self.net
            .port_bandwidth
            .bytes_in(self.data_window)
            .saturating_sub(self.header_bytes)
            .max(1)
    }

    /// PIAS thresholds (same as NegotiaToR's, §4.1).
    pub fn pias_thresholds(&self) -> [u64; 2] {
        [1_000, 10_000]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ObliviousConfig::paper_default(NetworkConfig::paper_default());
        assert_eq!(c.slot_len(), 100);
        assert_eq!(c.payload(), 1_115);
    }

    #[test]
    fn no_speedup_payload() {
        let c = ObliviousConfig::paper_default(NetworkConfig::paper_no_speedup());
        assert_eq!(c.payload(), 562 - 10);
    }
}
