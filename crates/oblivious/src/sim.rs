//! The rotor + VLB engine.
//!
//! Time is a sequence of identical timeslots; in slot `t` the fabric is
//! configured to round-robin match `t mod R` (same pattern functions as
//! NegotiaToR's predefined phase), so every ToR pair connects once per
//! round of `R` slots per port. There is no control plane: each ToR just
//! transmits whatever it has queued for the neighbor the rotor currently
//! offers.
//!
//! Valiant Load Balancing: arriving data is *sprayed* across intermediates.
//! Mice-level bytes (PIAS levels 0/1) are bound per packet to a uniformly
//! random intermediate; bulk bytes (level 2) are bound per bundle of
//! [`ObliviousConfig`]`::bundle_chunks` packets. A chunk reaching its
//! intermediate is queued in that ToR's per-final-destination relay FIFO —
//! *no priority there* (§4.1: prioritization applies at sources only),
//! which is how relayed elephants end up blocking mice in the middle of
//! the network.
//!
//! Congestion control (the paper notes traffic-oblivious designs need one
//! "to avoid buffer overflow at intermediate ToRs"): relay buffers are
//! shallow and per-pair; a source withholds first-hop traffic toward an
//! intermediate whose buffer for that final destination is full. The
//! resulting head-of-line stalls and wasted slots are precisely the
//! "relayed traffic competes for bandwidth" degradation of §2.
//!
//! Within a slot a source serves, in order: bound mice packets for this
//! neighbor, then alternates between second-hop relay forwarding and
//! first-hop bulk injection — FIFO-fair competition between the two hops,
//! which is what caps heavy-load goodput near the worst case.

use crate::config::ObliviousConfig;
use metrics::{
    trace::{FlightRecorder, FlowSpans},
    FlowTracker, PhaseCounters, PhaseProbe, RunReport,
};
use sim::time::Nanos;
use sim::{BandwidthSeries, Xoshiro256};
use std::collections::VecDeque;
use topology::{
    AnyTopology, FailureAction, FailureSchedule, FaultAction, FaultModel, LinkFailures,
    PredefinedCache, Topology, TopologyKind,
};
use workload::FlowTrace;

/// A data unit bound to a VLB intermediate, waiting at the source.
#[derive(Debug, Clone, Copy)]
struct BoundSeg {
    flow: u64,
    final_dst: u32,
    bytes: u32,
}

/// A chunk in flight on its first hop.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    to: u32,
    final_dst: u32,
    flow: u64,
    bytes: u32,
}

/// Recording options for the baseline.
#[derive(Debug, Clone, Default)]
pub struct ObliviousRecording {
    /// Per-destination final-delivery bandwidth series window.
    pub rx_window: Option<Nanos>,
    /// Per-destination transit (first-hop arrivals) series window —
    /// Figure 18's light-grey dots.
    pub transit_window: Option<Nanos>,
}

/// The traffic-oblivious simulator.
pub struct ObliviousSim {
    cfg: ObliviousConfig,
    n: usize,
    round: usize,
    payload: u64,
    slot_len: Nanos,

    /// Per (src, via): three priority FIFOs of bound segments
    /// (levels 0/1 mice spray, level 2 bulk bundles; without PQ only
    /// level 2 is used).
    bound: Vec<[VecDeque<BoundSeg>; 3]>,
    /// Per (intermediate, final): relay forwarding FIFO of (flow, bytes).
    relay: Vec<VecDeque<(u64, u32)>>,
    /// Per (intermediate, final): queued + in-flight relay bytes, checked
    /// by the sender-side admission control (credits).
    relay_claim: Vec<u64>,
    /// Alternation bit per (src, via): relay-first vs inject-first.
    alt: Vec<bool>,
    /// First-hop chunks in flight, indexed by arrival slot.
    inflight: Vec<Vec<Inflight>>,
    /// Cached rotor schedule (one rotation; the rotor never rotates its
    /// round-robin rule).
    cache: PredefinedCache,
    /// Reused landing buffer, swapped against the in-flight ring slots.
    landing: Vec<Inflight>,

    /// Ground-truth link state. The rotor has no failure detection: a
    /// down link simply wastes its slots (data stays queued at the
    /// sender), which is the §2 degradation scenario timelines exercise.
    failures: LinkFailures,
    fail_sched: FailureSchedule,
    // Adversarial fault families. Gray failures and greedy ToRs are
    // negotiation-plane faults, so on this engine only the link-state
    // families (flap, partition) have any effect.
    faults: FaultModel,

    rx_final: Vec<BandwidthSeries>,
    rx_transit: Vec<BandwidthSeries>,
    phase_probe: Option<PhaseProbe>,
    /// Flight recorder (`None` = tracing off). The rotor has no control
    /// plane, so its trace carries `phase` and `fault` events only.
    recorder: Option<Box<FlightRecorder>>,
    tracker: Option<FlowTracker>,
    ran_duration: Nanos,
    rng: Xoshiro256,
    /// Intra-run workers for the associative backlog scans (probes).
    ///
    /// Unlike the negotiator engine, `serve_slot` itself cannot shard:
    /// relay admission is a sequential credit protocol — connection `i`
    /// of a slot reads `relay_claim` entries written by connections
    /// `< i`, and `pick_via` consumes one RNG stream in visit order —
    /// so the rotor's per-slot loop is order-*semantic*, not merely
    /// order-preserving. Worker counts therefore only fan out the
    /// read-only probe sums, which are exact at any shard split
    /// (integer addition is associative), keeping reports byte-identical
    /// at any value.
    workers: usize,
    ran: bool,
}

impl ObliviousSim {
    /// Build the baseline over `cfg` on `kind` (the paper runs it on
    /// thin-clos; performance is identical on the parallel network).
    pub fn new(cfg: ObliviousConfig, kind: TopologyKind) -> Self {
        Self::with_recording(cfg, kind, ObliviousRecording::default())
    }

    /// Build with bandwidth-series recording enabled.
    pub fn with_recording(
        cfg: ObliviousConfig,
        kind: TopologyKind,
        rec: ObliviousRecording,
    ) -> Self {
        let topo = AnyTopology::build(kind, cfg.net.clone());
        let n = cfg.net.n_tors;
        let round = topo.predefined_slots();
        let slot_len = cfg.slot_len();
        // Ring buffer deep enough for transmission + propagation.
        let depth = 2 + ((cfg.net.propagation_delay + slot_len) / slot_len) as usize;
        ObliviousSim {
            n,
            round,
            payload: cfg.payload(),
            slot_len,
            bound: (0..n * n).map(|_| Default::default()).collect(),
            relay: vec![VecDeque::new(); n * n],
            relay_claim: vec![0; n * n],
            alt: vec![false; n * n],
            inflight: vec![Vec::new(); depth],
            cache: PredefinedCache::build(&topo),
            landing: Vec::new(),
            failures: LinkFailures::new(n, cfg.net.n_ports),
            fail_sched: FailureSchedule::new(),
            faults: FaultModel::new(),
            rx_final: match rec.rx_window {
                Some(w) => (0..n).map(|_| BandwidthSeries::new(w)).collect(),
                None => Vec::new(),
            },
            rx_transit: match rec.transit_window {
                Some(w) => (0..n).map(|_| BandwidthSeries::new(w)).collect(),
                None => Vec::new(),
            },
            phase_probe: None,
            recorder: None,
            tracker: None,
            ran_duration: 0,
            rng: Xoshiro256::new(cfg.seed),
            workers: 1,
            ran: false,
            cfg,
        }
    }

    /// Set the intra-run worker count (`--workers`). Byte-identical at
    /// any value: see the field doc for why only the probe scans shard.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Slot length in ns.
    pub fn slot_len(&self) -> Nanos {
        self.slot_len
    }

    /// One all-to-all rotor round in ns.
    pub fn round_len(&self) -> Nanos {
        self.round as Nanos * self.slot_len
    }

    /// Per-flow tracker of the completed run.
    pub fn tracker(&self) -> &FlowTracker {
        self.tracker.as_ref().expect("call run() first")
    }

    /// Schedule a link-state change at absolute time `at`. The rotor has
    /// no detection or recovery: while a link is down its slots transmit
    /// nothing and the affected traffic waits at the sender.
    pub fn schedule_failure(&mut self, at: Nanos, action: FailureAction) {
        self.fail_sched.schedule(at, action);
    }

    /// Schedule an adversarial fault action at absolute time `at`. Flaps
    /// and partitions take links down exactly as clean failures do; gray
    /// failures and greedy ToRs are no-ops here — the rotor has no
    /// control plane to degrade.
    pub fn schedule_fault(&mut self, at: Nanos, action: FaultAction) {
        self.faults.schedule(at, action);
    }

    /// Attach a phase-boundary probe; its snapshots are readable via
    /// [`Self::phase_probe`] after the run.
    pub fn set_phase_probe(&mut self, probe: PhaseProbe) {
        self.phase_probe = Some(probe);
    }

    /// The phase probe, once attached (complete after [`Self::run`]).
    pub fn phase_probe(&self) -> Option<&PhaseProbe> {
        self.phase_probe.as_ref()
    }

    /// Attach a flight recorder. The rotor never negotiates, so the
    /// trace carries `phase` boundary snapshots and `fault` activations
    /// only — but those are exactly the events the sharded probe scans
    /// feed, so the trace still exercises the cross-worker merge and is
    /// byte-identical at any `--workers` count.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.recorder = Some(Box::new(recorder));
    }

    /// The attached flight recorder, if any (complete after [`Self::run`]).
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_deref()
    }

    /// Detach and return the flight recorder.
    pub fn take_recorder(&mut self) -> Option<FlightRecorder> {
        self.recorder.take().map(|b| *b)
    }

    /// Cumulative counters for phase-boundary snapshots. Backlog covers
    /// bound segments at sources and relay FIFOs at intermediates; grants
    /// and accepts stay zero — the rotor never negotiates.
    fn phase_counters(&self, tracker: &FlowTracker) -> PhaseCounters {
        // Shard the O(n²) backlog scans across the intra-run workers:
        // u64 sums over disjoint row ranges recombine exactly, so any
        // worker count produces the same totals.
        let shards = sim::shard::partition(self.n, self.workers);
        let (bound_q, relay_q) = (&self.bound, &self.relay);
        let n = self.n;
        let partials = sim::shard::map_shards(shards, |_, shard| {
            let bound: u64 = bound_q[shard.start * n..shard.end * n]
                .iter()
                .flat_map(|levels| levels.iter())
                .flat_map(|q| q.iter())
                .map(|seg| seg.bytes as u64)
                .sum();
            let relay: u64 = relay_q[shard.start * n..shard.end * n]
                .iter()
                .flat_map(|q| q.iter())
                .map(|&(_, bytes)| bytes as u64)
                .sum();
            (bound, relay)
        });
        let bound: u64 = partials.iter().map(|&(b, _)| b).sum();
        let relay: u64 = partials.iter().map(|&(_, r)| r).sum();
        PhaseCounters {
            delivered_bytes: tracker.delivered_payload(),
            backlog_bytes: bound + relay,
            grants: 0,
            accepts: 0,
            control_dropped: 0,
            detector_fp_links: 0,
            detector_fn_links: 0,
            partitioned_tors: self.failures.partitioned_tors() as u64,
        }
    }

    /// Final-delivery bandwidth series of `dst` (requires recording).
    pub fn rx_final(&self, dst: usize) -> Option<&BandwidthSeries> {
        self.rx_final.get(dst)
    }

    /// Transit-arrival bandwidth series of `dst` (requires recording).
    pub fn rx_transit(&self, dst: usize) -> Option<&BandwidthSeries> {
        self.rx_transit.get(dst)
    }

    /// Report restricted to tagged flows (mixed-workload experiments).
    pub fn report_subset(&self, trace: &FlowTrace, tags: &[bool]) -> RunReport {
        RunReport::build(
            trace,
            self.tracker(),
            self.ran_duration,
            self.n,
            self.cfg.net.host_bandwidth.bps(),
            Some(tags),
        )
    }

    /// Pick a uniform random intermediate other than `src` (the final
    /// destination is allowed — that fraction is effectively direct).
    fn pick_via(&mut self, src: usize) -> usize {
        let mut via = self.rng.index(self.n - 1);
        if via >= src {
            via += 1;
        }
        via
    }

    fn enqueue_flow(&mut self, flow: u64, src: usize, dst: usize, bytes: u64) {
        let payload = self.payload;
        if self.cfg.priority_queues {
            let th = self.cfg.pias_thresholds();
            // Level 0: first KB, sprayed per packet.
            let mut l0 = bytes.min(th[0]);
            while l0 > 0 {
                let take = l0.min(payload);
                let via = self.pick_via(src);
                self.bound[src * self.n + via][0].push_back(BoundSeg {
                    flow,
                    final_dst: dst as u32,
                    bytes: take as u32,
                });
                l0 -= take;
            }
            // Level 1: next 9 KB, sprayed per packet.
            let mut l1 = bytes.saturating_sub(th[0]).min(th[1] - th[0]);
            while l1 > 0 {
                let take = l1.min(payload);
                let via = self.pick_via(src);
                self.bound[src * self.n + via][1].push_back(BoundSeg {
                    flow,
                    final_dst: dst as u32,
                    bytes: take as u32,
                });
                l1 -= take;
            }
            // Level 2: the bulk, sprayed per bundle.
            let bundle = payload * self.cfg.bundle_chunks as u64;
            let mut l2 = bytes.saturating_sub(th[1]);
            while l2 > 0 {
                let take = l2.min(bundle);
                let via = self.pick_via(src);
                self.bound[src * self.n + via][2].push_back(BoundSeg {
                    flow,
                    final_dst: dst as u32,
                    bytes: take as u32,
                });
                l2 -= take;
            }
        } else {
            // No PQ: plain FIFO bundles.
            let bundle = payload * self.cfg.bundle_chunks as u64;
            let mut rest = bytes;
            while rest > 0 {
                let take = rest.min(bundle);
                let via = self.pick_via(src);
                self.bound[src * self.n + via][2].push_back(BoundSeg {
                    flow,
                    final_dst: dst as u32,
                    bytes: take as u32,
                });
                rest -= take;
            }
        }
    }

    /// Play `trace` for `duration` ns and report.
    pub fn run(&mut self, trace: &FlowTrace, duration: Nanos) -> RunReport {
        assert!(
            !self.ran,
            "ObliviousSim::run is single-shot; build a new sim"
        );
        self.ran = true;
        self.ran_duration = duration;
        let mut tracker = FlowTracker::new(trace);
        let flows = trace.flows();
        let mut cursor = 0usize;
        // Span tracking sized for the whole trace up front; the rotor has
        // no control plane, so its spans are birth → first_tx → complete.
        let mut spans = self
            .recorder
            .is_some()
            .then(|| FlowSpans::new(self.n, flows.len()));
        let depth = self.inflight.len();
        let prop = self.cfg.net.propagation_delay;
        let per_pair_cap = self.cfg.relay_pair_packets as u64 * self.payload;

        let mut t: u64 = 0;
        // lint: hot-path
        loop {
            let now = t * self.slot_len;
            if now >= duration {
                break;
            }
            if self.phase_probe.as_ref().is_some_and(|p| p.due(now)) {
                let counters = self.phase_counters(&tracker);
                let before = self.phase_probe.as_ref().map_or(0, |p| p.snapshots().len());
                self.phase_probe
                    .as_mut()
                    .expect("probe checked above")
                    .record(now, counters);
                if let Some(rec) = self.recorder.as_deref_mut() {
                    let after = self.phase_probe.as_ref().map_or(0, |p| p.snapshots().len());
                    for phase in before..after {
                        rec.phase_boundary(now, t, phase as u64, &counters);
                    }
                }
            }
            let fault_mark = match self.recorder.is_some() {
                true => (self.fail_sched.applied(), self.faults.applied()),
                false => (0, 0),
            };
            self.fail_sched.apply_due(now, &mut self.failures);
            self.faults.epoch_update(now, &mut self.failures);
            if let Some(rec) = self.recorder.as_deref_mut() {
                let links = (self.fail_sched.applied() - fault_mark.0) as u64;
                let injected = (self.faults.applied() - fault_mark.1) as u64;
                let total = (self.fail_sched.applied() + self.faults.applied()) as u64;
                rec.fault_applied(now, t, injected, links, total);
            }
            // Inject flows due by this slot.
            while cursor < flows.len() && flows[cursor].arrival <= now {
                let f = flows[cursor];
                self.enqueue_flow(f.id, f.src, f.dst, f.bytes);
                cursor += 1;
            }
            // Land first-hop chunks whose flight ends at this slot (the
            // landing buffer is swapped, not reallocated, each slot).
            let mut landing = std::mem::take(&mut self.landing);
            landing.clear();
            std::mem::swap(&mut landing, &mut self.inflight[(t as usize) % depth]);
            for c in &landing {
                let (to, d) = (c.to as usize, c.final_dst as usize);
                self.relay[to * self.n + d].push_back((c.flow, c.bytes));
                if let Some(series) = self.rx_transit.get_mut(to) {
                    series.record(now, c.bytes as u64);
                }
            }
            landing.clear();
            self.landing = landing;

            let arrive = now + self.slot_len + prop;
            let arrive_slot =
                (t as usize + (self.slot_len + prop).div_ceil(self.slot_len) as usize) % depth;
            let slot = (t % self.round as u64) as usize;
            let cache = std::mem::take(&mut self.cache);
            let any_failed = !self.failures.healthy();
            for conn in cache.slot_conns(0, slot) {
                let (src, via) = (conn.src as usize, conn.dst as usize);
                // A down fiber silently wastes the slot; the rotor has no
                // feedback channel to learn about it.
                if any_failed && !self.failures.link_up(src, via, conn.port as usize) {
                    continue;
                }
                self.serve_slot(src, via, arrive, arrive_slot, per_pair_cap, &mut tracker);
            }
            self.cache = cache;
            // End-of-slot span emission: the slot loop is fully sequential
            // (workers only shard the probe's backlog scans), so this is
            // the merge point and span bytes are worker-invariant.
            if let Some(spans) = spans.as_mut() {
                let mut rec = self.recorder.take().expect("spans exist only when tracing");
                for f in &flows[spans.next_born()..cursor] {
                    spans.born(
                        &mut rec,
                        now,
                        t,
                        f.id as u32,
                        f.src as u32,
                        f.dst as u32,
                        f.bytes,
                        f.arrival,
                    );
                }
                spans.sweep(&mut rec, now, t, |id| {
                    (tracker.remaining(id as u64), tracker.completion(id as u64))
                });
                self.recorder = Some(rec);
            }
            t += 1;
            if cursor >= flows.len()
                && tracker.completed_count() == flows.len()
                && self.fail_sched.is_drained()
                && self.faults.is_drained()
            {
                break;
            }
        }
        if let Some(mut probe) = self.phase_probe.take() {
            let counters = self.phase_counters(&tracker);
            let before = probe.snapshots().len();
            probe.finish(counters);
            if let Some(rec) = self.recorder.as_deref_mut() {
                for (phase, snap) in probe.snapshots().iter().enumerate().skip(before) {
                    rec.phase_boundary(snap.at, t, phase as u64, &counters);
                }
            }
            self.phase_probe = Some(probe);
        }
        self.tracker = Some(tracker);
        RunReport::build(
            trace,
            self.tracker(),
            duration,
            self.n,
            self.cfg.net.host_bandwidth.bps(),
            None,
        )
    }

    /// Transmit at most one packet on the rotor connection `src → via`.
    fn serve_slot(
        &mut self,
        src: usize,
        via: usize,
        arrive: Nanos,
        arrive_slot: usize,
        per_pair_cap: u64,
        tracker: &mut FlowTracker,
    ) {
        let pair = src * self.n + via;
        // 1. Bound mice packets for this neighbor (levels 0, then 1).
        for level in 0..2 {
            if let Some(&seg) = self.bound[pair][level].front() {
                // Mice ignore the relay cap: their volume is negligible and
                // Sirius-style flow control reserves headroom for them.
                self.bound[pair][level].pop_front();
                self.send_hop1(src, via, seg, arrive, arrive_slot, tracker);
                return;
            }
        }
        // 2. Alternate second-hop forwarding with first-hop bulk injection.
        let relay_first = self.alt[pair];
        for attempt in 0..2 {
            let do_relay = relay_first ^ (attempt == 1);
            if do_relay {
                if let Some((flow, bytes)) = self.relay[pair].pop_front() {
                    self.relay_claim[pair] = self.relay_claim[pair].saturating_sub(bytes as u64);
                    self.deliver_final(via, flow, bytes as u64, arrive, tracker);
                    self.alt[pair] = false; // injection's turn next
                    return;
                }
            } else {
                // First-hop bulk injection, subject to the relay credit of
                // the (via, final) buffer.
                if let Some(&seg) = self.bound[pair][2].front() {
                    let rc = via * self.n + seg.final_dst as usize;
                    let direct = seg.final_dst as usize == via;
                    if direct || self.relay_claim[rc] + self.payload <= per_pair_cap {
                        // Send one packet off the head segment.
                        let take = (seg.bytes as u64).min(self.payload) as u32;
                        {
                            let head = self.bound[pair][2].front_mut().unwrap();
                            head.bytes -= take;
                            if head.bytes == 0 {
                                self.bound[pair][2].pop_front();
                            }
                        }
                        let chunk = BoundSeg {
                            flow: seg.flow,
                            final_dst: seg.final_dst,
                            bytes: take,
                        };
                        self.send_hop1(src, via, chunk, arrive, arrive_slot, tracker);
                        self.alt[pair] = true; // relay's turn next
                        return;
                    }
                    // Head-of-line blocked by a full relay buffer: fall
                    // through to the other side of the alternation.
                }
            }
        }
        // Slot wasted — rotor quantization at work.
    }

    fn send_hop1(
        &mut self,
        _src: usize,
        via: usize,
        seg: BoundSeg,
        arrive: Nanos,
        arrive_slot: usize,
        tracker: &mut FlowTracker,
    ) {
        if seg.final_dst as usize == via {
            // The random intermediate happened to be the destination:
            // effectively a direct one-hop delivery.
            self.deliver_final(via, seg.flow, seg.bytes as u64, arrive, tracker);
            return;
        }
        self.relay_claim[via * self.n + seg.final_dst as usize] += seg.bytes as u64;
        self.inflight[arrive_slot].push(Inflight {
            to: via as u32,
            final_dst: seg.final_dst,
            flow: seg.flow,
            bytes: seg.bytes,
        });
    }

    fn deliver_final(
        &mut self,
        dst: usize,
        flow: u64,
        bytes: u64,
        at: Nanos,
        tracker: &mut FlowTracker,
    ) {
        tracker.deliver(flow, bytes, at);
        if let Some(series) = self.rx_final.get_mut(dst) {
            series.record(at, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::NetworkConfig;
    use workload::{Flow, FlowTrace, IncastWorkload};

    fn small_cfg() -> ObliviousConfig {
        ObliviousConfig::paper_default(NetworkConfig::small_for_tests())
    }

    fn single_flow(bytes: u64) -> FlowTrace {
        FlowTrace::new(vec![Flow {
            id: 0,
            src: 0,
            dst: 5,
            bytes,
            arrival: 0,
        }])
    }

    #[test]
    fn mice_flow_takes_two_hops() {
        let mut s = ObliviousSim::new(small_cfg(), TopologyKind::ThinClos);
        let round = s.round_len();
        let prop = 2_000;
        s.run(&single_flow(500), 1_000_000);
        let fct = s.tracker().fct(0).expect("must complete");
        // Two propagation delays are unavoidable; two round waits bound it.
        assert!(fct >= 2 * prop, "fct {fct} must include two hops");
        assert!(fct <= 2 * (round + prop) + 10_000, "fct {fct} too slow");
    }

    #[test]
    fn elephant_completes() {
        for kind in [TopologyKind::ThinClos, TopologyKind::Parallel] {
            let mut s = ObliviousSim::new(small_cfg(), kind);
            let r = s.run(&single_flow(500_000), 10_000_000);
            assert_eq!(r.all.completed, 1, "{kind:?}");
        }
    }

    #[test]
    fn incast_grows_mildly_with_degree() {
        let finish = |degree: usize| {
            let trace = IncastWorkload {
                degree,
                flow_bytes: 1_000,
                n_tors: 16,
                start: 10_000,
            }
            .generate(3);
            let mut s = ObliviousSim::new(small_cfg(), TopologyKind::ThinClos);
            s.run(&trace, 5_000_000);
            RunReport::burst_finish_time(&trace, s.tracker()).expect("completes")
        };
        let f2 = finish(2);
        let f14 = finish(14);
        assert!(f14 >= f2, "more senders cannot finish faster");
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = single_flow(50_000);
        let fct = |seed: u64| {
            let mut cfg = small_cfg();
            cfg.seed = seed;
            let mut s = ObliviousSim::new(cfg, TopologyKind::ThinClos);
            s.run(&trace, 5_000_000);
            s.tracker().fct(0)
        };
        assert_eq!(fct(4), fct(4));
    }

    #[test]
    fn no_pq_blocks_mice_behind_elephants() {
        // Same trace with and without PQ: an elephant enqueued just before
        // a mice flow to the same destination.
        let trace = FlowTrace::new(vec![
            Flow {
                id: 0,
                src: 0,
                dst: 5,
                bytes: 3_000_000,
                arrival: 0,
            },
            Flow {
                id: 1,
                src: 0,
                dst: 5,
                bytes: 500,
                arrival: 100,
            },
        ]);
        let run = |pq: bool| {
            let mut cfg = small_cfg();
            cfg.priority_queues = pq;
            let mut s = ObliviousSim::new(cfg, TopologyKind::ThinClos);
            s.run(&trace, 100_000_000);
            s.tracker().fct(1).expect("mice must finish")
        };
        let with_pq = run(true);
        let without_pq = run(false);
        assert!(
            without_pq > 2 * with_pq,
            "PQ should protect mice: with {with_pq}, without {without_pq}"
        );
    }

    #[test]
    fn relay_credit_is_conserved() {
        // After everything drains, all claims must return to zero.
        let trace = single_flow(200_000);
        let mut s = ObliviousSim::new(small_cfg(), TopologyKind::ThinClos);
        s.run(&trace, 50_000_000);
        assert_eq!(s.tracker().completed_count(), 1);
        assert!(s.relay_claim.iter().all(|&c| c == 0), "claims leaked");
        assert!(s.relay.iter().all(|q| q.is_empty()));
    }

    #[test]
    fn transit_series_sees_relay_traffic() {
        let mut s = ObliviousSim::with_recording(
            small_cfg(),
            TopologyKind::ThinClos,
            ObliviousRecording {
                rx_window: Some(10_000),
                transit_window: Some(10_000),
            },
        );
        s.run(&single_flow(100_000), 20_000_000);
        let transit_total: u64 = (0..16)
            .map(|d| {
                s.rx_transit(d)
                    .unwrap()
                    .bytes_per_window()
                    .iter()
                    .sum::<u64>()
            })
            .sum();
        assert!(transit_total > 0, "VLB must generate transit traffic");
        let final_total: u64 = (0..16)
            .map(|d| {
                s.rx_final(d)
                    .unwrap()
                    .bytes_per_window()
                    .iter()
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(final_total, 100_000);
    }
}

#[cfg(test)]
mod topology_equivalence_tests {
    use super::*;
    use topology::NetworkConfig;
    use workload::{FlowSizeDist, PoissonWorkload, WorkloadSpec};

    /// §4.1: "Its relay-enabled round-robin scheduling cannot utilize the
    /// sufficient connectivity of the parallel networks, resulting in
    /// identical performance on both topologies." The rotor schedule and
    /// VLB spreading see only neighbor sequences, so the two topologies
    /// should deliver near-identical aggregate results.
    #[test]
    fn baseline_performs_alike_on_both_topologies() {
        let duration = 400_000;
        let trace = PoissonWorkload::new(WorkloadSpec {
            dist: FlowSizeDist::hadoop(),
            load: 0.8,
            n_tors: 16,
            host_bps: 200_000_000_000,
        })
        .generate(duration, 31);
        let run = |kind: TopologyKind| {
            let mut s = ObliviousSim::new(
                ObliviousConfig::paper_default(NetworkConfig::small_for_tests()),
                kind,
            );
            let r = s.run(&trace, duration);
            r.goodput.delivered_bytes
        };
        let thin = run(TopologyKind::ThinClos) as f64;
        let par = run(TopologyKind::Parallel) as f64;
        let ratio = par / thin;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "goodput should match across topologies: parallel/thin = {ratio:.3}"
        );
    }
}
