//! Flow records and traces.

use sim::time::Nanos;

/// Flows strictly smaller than this are "mice" (§4.1: "Flows less than
/// 10 KB are regarded as mice flows").
pub const MICE_THRESHOLD_BYTES: u64 = 10_000;

/// One ToR-to-ToR flow. ToRs are the endpoints of the simulated network
/// (§4.1), so there is no host addressing below the ToR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Dense id; doubles as the index into per-flow bookkeeping arrays.
    pub id: u64,
    /// Source ToR.
    pub src: usize,
    /// Destination ToR.
    pub dst: usize,
    /// Application payload bytes to deliver.
    pub bytes: u64,
    /// Arrival time at the source ToR.
    pub arrival: Nanos,
}

impl Flow {
    /// Is this a latency-sensitive mice flow?
    pub fn is_mice(&self) -> bool {
        self.bytes < MICE_THRESHOLD_BYTES
    }
}

/// A time-sorted collection of flows, the unit handed to a simulator run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowTrace {
    flows: Vec<Flow>,
}

impl FlowTrace {
    /// Build from flows in any order; sorts by `(arrival, id)` and
    /// re-numbers ids densely so they index recorder arrays.
    pub fn new(mut flows: Vec<Flow>) -> Self {
        flows.sort_by_key(|f| (f.arrival, f.id));
        for (i, f) in flows.iter_mut().enumerate() {
            f.id = i as u64;
        }
        FlowTrace { flows }
    }

    /// Flows in arrival order.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when the trace carries no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total payload bytes across all flows.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }

    /// Number of mice flows.
    pub fn mice_count(&self) -> usize {
        self.flows.iter().filter(|f| f.is_mice()).count()
    }

    /// Merge two traces (e.g. background + incasts), re-sorting and
    /// re-numbering.
    pub fn merge(self, other: FlowTrace) -> FlowTrace {
        let mut all = self.flows;
        all.extend(other.flows);
        FlowTrace::new(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64, arrival: Nanos, bytes: u64) -> Flow {
        Flow {
            id,
            src: 0,
            dst: 1,
            bytes,
            arrival,
        }
    }

    #[test]
    fn trace_sorts_and_renumbers() {
        let t = FlowTrace::new(vec![f(9, 300, 10), f(4, 100, 20), f(7, 200, 30)]);
        let arrivals: Vec<Nanos> = t.flows().iter().map(|x| x.arrival).collect();
        assert_eq!(arrivals, vec![100, 200, 300]);
        let ids: Vec<u64> = t.flows().iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn mice_classification_uses_strict_10kb() {
        assert!(f(0, 0, 9_999).is_mice());
        assert!(!f(0, 0, 10_000).is_mice());
    }

    #[test]
    fn totals() {
        let t = FlowTrace::new(vec![f(0, 0, 5_000), f(1, 1, 50_000)]);
        assert_eq!(t.total_bytes(), 55_000);
        assert_eq!(t.mice_count(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn merge_preserves_order() {
        let a = FlowTrace::new(vec![f(0, 10, 1), f(1, 30, 1)]);
        let b = FlowTrace::new(vec![f(0, 20, 1)]);
        let m = a.merge(b);
        let arrivals: Vec<Nanos> = m.flows().iter().map(|x| x.arrival).collect();
        assert_eq!(arrivals, vec![10, 20, 30]);
        assert_eq!(m.flows()[2].id, 2);
    }
}
