//! Background traffic randomly mixed with incasts (§4.4, Figure 13(a)).
//!
//! "We first randomly mix incasts on top of the workload used in §4.3 to
//! mimic bursty traffic, where each incast has a degree of 20 and a flow
//! size of 1 KB, and all incasts take 2% of ToR's aggregated downlink
//! bandwidth."
//!
//! We interpret the 2% as offered load: incast events form their own
//! Poisson process whose aggregate byte rate equals `incast_load · R · N`.

use crate::flow::{Flow, FlowTrace};
use crate::poisson::{PoissonWorkload, WorkloadSpec};
use sim::time::Nanos;
use sim::Xoshiro256;

/// Generator for background + incast mixes.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// Background Poisson workload.
    pub background: WorkloadSpec,
    /// Senders per incast (paper: 20).
    pub incast_degree: usize,
    /// Bytes per incast flow (paper: 1 KB).
    pub incast_flow_bytes: u64,
    /// Offered load of all incast traffic as a fraction of `R·N`
    /// (paper: 0.02).
    pub incast_load: f64,
}

impl MixedWorkload {
    /// Mean interval between incast events in nanoseconds.
    pub fn incast_interval_ns(&self) -> f64 {
        let bits_per_incast = (self.incast_degree as u64 * self.incast_flow_bytes * 8) as f64;
        let rate_bits_per_ns =
            self.incast_load * self.background.host_bps as f64 * self.background.n_tors as f64
                / 1e9;
        bits_per_incast / rate_bits_per_ns
    }

    /// Generate background and incast flows over `[0, duration)`.
    /// Returns `(trace, incast_ids)` where `incast_ids` marks which flow
    /// ids (after renumbering) belong to incasts, so the harness can report
    /// background FCT and incast finish time separately.
    pub fn generate(&self, duration: Nanos, seed: u64) -> (FlowTrace, Vec<bool>) {
        let bg = PoissonWorkload::new(self.background.clone()).generate(duration, seed);
        // Distinct stream for incast placement so background flows are
        // identical with and without the mix.
        let mut rng = Xoshiro256::new(seed ^ INCAST_SEED_SALT);
        let n = self.background.n_tors;
        let mean_gap = self.incast_interval_ns();
        let mut t = 0.0f64;
        let mut incasts = Vec::new();
        loop {
            t += rng.next_exp(mean_gap);
            let at = t as Nanos;
            if at >= duration {
                break;
            }
            let dst = rng.index(n);
            let mut candidates: Vec<usize> = (0..n).filter(|&x| x != dst).collect();
            rng.shuffle(&mut candidates);
            for &src in candidates.iter().take(self.incast_degree) {
                incasts.push(Flow {
                    id: 0, // renumbered by FlowTrace
                    src,
                    dst,
                    bytes: self.incast_flow_bytes,
                    arrival: at,
                });
            }
        }
        // Tag incast flows by (src, dst, arrival, bytes) before the merge
        // renumbers ids.
        let key = |f: &Flow| (f.src, f.dst, f.arrival, f.bytes);
        let incast_keys: std::collections::BTreeSet<_> = incasts.iter().map(key).collect();
        let merged = bg.merge(FlowTrace::new(incasts));
        let tags = merged
            .flows()
            .iter()
            .map(|f| incast_keys.contains(&key(f)))
            .collect();
        (merged, tags)
    }
}

const INCAST_SEED_SALT: u64 = 0x1AC0_57ED_0000_0001;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::FlowSizeDist;

    fn mixed() -> MixedWorkload {
        MixedWorkload {
            background: WorkloadSpec {
                dist: FlowSizeDist::hadoop(),
                load: 0.5,
                n_tors: 32,
                host_bps: 400_000_000_000,
            },
            incast_degree: 20,
            incast_flow_bytes: 1_000,
            incast_load: 0.02,
        }
    }

    #[test]
    fn incast_load_is_two_percent() {
        let m = mixed();
        let dur: Nanos = 10_000_000;
        let (trace, tags) = m.generate(dur, 11);
        let incast_bytes: u64 = trace
            .flows()
            .iter()
            .zip(&tags)
            .filter(|(_, &t)| t)
            .map(|(f, _)| f.bytes)
            .sum();
        let capacity_bits = 400e9 * 32.0 * (dur as f64 / 1e9);
        let measured = incast_bytes as f64 * 8.0 / capacity_bits;
        assert!(
            (measured - 0.02).abs() < 0.005,
            "incast load measured {measured}"
        );
    }

    #[test]
    fn incast_groups_share_destination_and_time() {
        let m = mixed();
        let (trace, tags) = m.generate(5_000_000, 3);
        // Group tagged flows by (arrival, destination); each group is one
        // incast burst (two bursts can share a nanosecond, but sharing both
        // the nanosecond and the destination collapses them — hence the
        // multiple-of-degree check rather than exact equality).
        let mut groups: std::collections::BTreeMap<(Nanos, usize), usize> = Default::default();
        for (f, &t) in trace.flows().iter().zip(&tags) {
            if t {
                *groups.entry((f.arrival, f.dst)).or_default() += 1;
            }
        }
        assert!(!groups.is_empty(), "some incasts should occur");
        for (&(at, dst), &count) in &groups {
            assert!(
                count % 20 == 0,
                "burst at {at} to {dst} has {count} flows, not a multiple of 20"
            );
        }
    }

    #[test]
    fn tags_align_with_trace() {
        let (trace, tags) = mixed().generate(2_000_000, 5);
        assert_eq!(trace.len(), tags.len());
        assert!(tags.iter().any(|&t| t));
        assert!(tags.iter().any(|&t| !t));
    }
}
