//! Plain-text flow-trace import/export.
//!
//! A trace file is line-oriented TSV: `src dst bytes arrival_ns`,
//! `#`-comments and blank lines ignored. This keeps user-supplied traces
//! (or traces exported from other simulators) replayable through either
//! engine without pulling a serialization framework into the workspace.

use crate::flow::{Flow, FlowTrace};
use std::fmt::Write as _;
use std::path::Path;

/// Errors from parsing a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        content: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, content } => {
                write!(f, "trace parse error at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Parse a trace from TSV text.
pub fn parse_trace(text: &str) -> Result<FlowTrace, TraceError> {
    let mut flows = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let parsed = (|| {
            let src = fields.next()?.parse().ok()?;
            let dst = fields.next()?.parse().ok()?;
            let bytes = fields.next()?.parse().ok()?;
            let arrival = fields.next()?.parse().ok()?;
            if fields.next().is_some() {
                return None; // trailing garbage
            }
            Some(Flow {
                id: flows.len() as u64,
                src,
                dst,
                bytes,
                arrival,
            })
        })();
        match parsed {
            Some(f) if f.src != f.dst && f.bytes > 0 => flows.push(f),
            _ => {
                return Err(TraceError::Parse {
                    line: i + 1,
                    content: raw.to_string(),
                })
            }
        }
    }
    Ok(FlowTrace::new(flows))
}

/// Render a trace as TSV text (inverse of [`parse_trace`]).
pub fn format_trace(trace: &FlowTrace) -> String {
    let mut out = String::from("# src\tdst\tbytes\tarrival_ns\n");
    for f in trace.flows() {
        writeln!(out, "{}\t{}\t{}\t{}", f.src, f.dst, f.bytes, f.arrival).unwrap();
    }
    out
}

/// Load a trace from a file.
pub fn load_trace(path: impl AsRef<Path>) -> Result<FlowTrace, TraceError> {
    parse_trace(&std::fs::read_to_string(path)?)
}

/// Save a trace to a file.
pub fn save_trace(trace: &FlowTrace, path: impl AsRef<Path>) -> Result<(), TraceError> {
    Ok(std::fs::write(path, format_trace(trace))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = FlowTrace::new(vec![
            Flow {
                id: 0,
                src: 1,
                dst: 2,
                bytes: 1_000,
                arrival: 50,
            },
            Flow {
                id: 1,
                src: 3,
                dst: 0,
                bytes: 99,
                arrival: 10,
            },
        ]);
        let text = format_trace(&t);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back.flows(), t.flows());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = parse_trace("# header\n\n0 1 500 0\n  \n# tail\n2 3 100 7\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "0 1 500",         // missing arrival
            "0 1 500 0 extra", // trailing field
            "0 0 500 0",       // self-loop
            "0 1 0 0",         // zero bytes
            "a b c d",         // not numbers
        ] {
            let err = parse_trace(bad).unwrap_err();
            assert!(matches!(err, TraceError::Parse { line: 1, .. }), "{bad}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = FlowTrace::new(vec![Flow {
            id: 0,
            src: 5,
            dst: 9,
            bytes: 12_345,
            arrival: 777,
        }]);
        let path = std::env::temp_dir().join("negotiator_dcn_trace_test.tsv");
        save_trace(&t, &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back.flows(), t.flows());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn error_display() {
        let err = parse_trace("bogus").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
