#![warn(missing_docs)]

//! DCN workload synthesis for the NegotiaToR evaluation (§4.1, §4.4).
//!
//! The paper drives its simulations with flows whose sizes follow published
//! datacenter traces and whose arrivals form a Poisson process; incast and
//! all-to-all microbenchmarks exercise the scheduling-delay-bypass and
//! matching machinery directly. This crate reproduces all of it:
//!
//! * [`dist`] — empirical flow-size CDFs synthesized from the distribution
//!   statistics the paper cites: Meta Hadoop (60% of flows < 1 KB, > 80% of
//!   bytes from > 100 KB elephants), DCTCP web search (> 80% of flows
//!   > 10 KB), and Google (> 80% of flows < 1 KB).
//! * [`poisson`] — Poisson arrivals with the paper's load definition
//!   `L = F / (R·N·τ)`.
//! * [`incast`] — synchronized many-to-one bursts (Figure 7(a)).
//! * [`alltoall`] — synchronized equal-size all-to-all (Figure 7(b)).
//! * [`mixed`] — background trace with randomly mixed incasts
//!   (Figure 13(a)).
//! * [`flow`] — the [`Flow`] record and sorted [`FlowTrace`] container.

pub mod alltoall;
pub mod dist;
pub mod flow;
pub mod incast;
pub mod mixed;
pub mod poisson;
pub mod trace_io;

pub use alltoall::AllToAllWorkload;
pub use dist::FlowSizeDist;
pub use flow::{Flow, FlowTrace, MICE_THRESHOLD_BYTES};
pub use incast::IncastWorkload;
pub use mixed::MixedWorkload;
pub use poisson::{PoissonWorkload, WorkloadSpec};
pub use trace_io::{load_trace, parse_trace, save_trace, TraceError};
