//! Empirical flow-size distributions.
//!
//! The paper samples flow sizes from three published datacenter traces. The
//! raw traces are not public, but the papers describing them publish their
//! CDFs; we encode piecewise-linear CDFs that preserve the statistics the
//! NegotiaToR paper itself relies on:
//!
//! * **Hadoop** (Meta [41], §4.1): "60% of the flows are less than 1 KB,
//!   while more than 80% of the bits are from elephant flows larger than
//!   100 KB" — a heavily tailed mix; mice dominate the flow count,
//!   elephants the byte count.
//! * **Web search** (DCTCP [1], §4.4): "more than 80% flows exceed 10 KB" —
//!   the heavy workload.
//! * **Google** ([34, 46], §4.4): "more than 80% flows are less than 1 KB"
//!   — the light, mice-dominated workload.
//!
//! Sampling inverts the CDF with linear interpolation inside each segment,
//! so any size within the trace's support can occur.

use sim::Xoshiro256;

/// A flow-size distribution given as a piecewise-linear CDF over bytes.
#[derive(Debug, Clone)]
pub struct FlowSizeDist {
    name: &'static str,
    /// `(size_bytes, cumulative_probability)`, strictly increasing in both
    /// coordinates, ending at probability 1.0.
    points: Vec<(f64, f64)>,
}

impl FlowSizeDist {
    /// Build from CDF points; panics unless the points form a valid CDF.
    pub fn from_points(name: &'static str, points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        assert!(
            points
                .windows(2)
                .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1),
            "CDF points must be strictly increasing"
        );
        let last = points.last().unwrap();
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "CDF must end at probability 1.0"
        );
        assert!(points[0].0 >= 1.0, "flow sizes must be at least one byte");
        FlowSizeDist { name, points }
    }

    /// Meta Hadoop-cluster trace [41] (the paper's default workload).
    pub fn hadoop() -> Self {
        Self::from_points(
            "hadoop",
            vec![
                (120.0, 0.10),
                (250.0, 0.25),
                (500.0, 0.42),
                (1_000.0, 0.60), // 60% of flows < 1 KB
                (2_000.0, 0.70),
                (5_000.0, 0.76),
                (10_000.0, 0.80), // 80% mice by count
                (30_000.0, 0.85),
                (100_000.0, 0.90), // 10% elephants > 100 KB …
                (300_000.0, 0.95),
                (1_000_000.0, 0.98),
                (10_000_000.0, 1.0), // … carrying the vast majority of bytes
            ],
        )
    }

    /// DCTCP web-search trace [1] (heavy: most flows exceed 10 KB).
    pub fn web_search() -> Self {
        Self::from_points(
            "web-search",
            vec![
                (5_000.0, 0.10),
                (10_000.0, 0.18), // > 80% of flows exceed 10 KB
                (15_000.0, 0.30),
                (20_000.0, 0.40),
                (33_000.0, 0.53),
                (53_000.0, 0.60),
                (133_000.0, 0.70),
                (667_000.0, 0.80),
                (1_333_000.0, 0.90),
                (3_333_000.0, 0.95),
                (6_667_000.0, 0.98),
                (20_000_000.0, 1.0),
            ],
        )
    }

    /// Aggregated Google-datacenter traffic [34, 46] (light: mice-dominated).
    pub fn google() -> Self {
        Self::from_points(
            "google",
            vec![
                (100.0, 0.30),
                (200.0, 0.50),
                (400.0, 0.70),
                (700.0, 0.80),
                (1_000.0, 0.85), // > 80% of flows < 1 KB
                (2_000.0, 0.89),
                (10_000.0, 0.93),
                (100_000.0, 0.97),
                (1_000_000.0, 0.995),
                (5_000_000.0, 1.0),
            ],
        )
    }

    /// Fixed-size "distribution" (used by the incast/all-to-all workloads
    /// and handy in tests).
    pub fn fixed(bytes: u64) -> Self {
        let b = bytes as f64;
        FlowSizeDist {
            name: "fixed",
            points: vec![(b.max(1.0) - 0.5, 0.0), (b.max(1.0), 1.0)],
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sample one flow size in bytes (≥ 1).
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let u = rng.next_f64();
        self.quantile(u)
    }

    /// Inverse CDF: size at cumulative probability `u ∈ [0, 1)`.
    pub fn quantile(&self, u: f64) -> u64 {
        let pts = &self.points;
        if u <= pts[0].1 {
            // Interpolate from 1 byte up to the first point.
            let frac = (u / pts[0].1).clamp(0.0, 1.0);
            return (1.0 + frac * (pts[0].0 - 1.0)).round().max(1.0) as u64;
        }
        for w in pts.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if u <= p1 {
                let frac = (u - p0) / (p1 - p0);
                return (x0 + frac * (x1 - x0)).round().max(1.0) as u64;
            }
        }
        pts.last().unwrap().0 as u64
    }

    /// Mean flow size in bytes (`F` in the load definition), computed in
    /// closed form: under linear interpolation the conditional mean of each
    /// segment is its midpoint.
    pub fn mean_bytes(&self) -> f64 {
        let pts = &self.points;
        let mut mean = pts[0].1 * (1.0 + pts[0].0) / 2.0;
        for w in pts.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            mean += (p1 - p0) * (x0 + x1) / 2.0;
        }
        mean
    }

    /// Fraction of flows at or below `bytes` (CDF evaluation).
    pub fn fraction_below(&self, bytes: f64) -> f64 {
        let pts = &self.points;
        if bytes <= 1.0 {
            return 0.0;
        }
        if bytes <= pts[0].0 {
            return pts[0].1 * (bytes - 1.0) / (pts[0].0 - 1.0);
        }
        for w in pts.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if bytes <= x1 {
                return p0 + (p1 - p0) * (bytes - x0) / (x1 - x0);
            }
        }
        1.0
    }

    /// Fraction of *bytes* contributed by flows larger than `bytes`
    /// (elephant byte share; used to validate the synthesized CDFs against
    /// the statistics the paper quotes).
    pub fn byte_share_above(&self, bytes: f64) -> f64 {
        let total = self.mean_bytes();
        let pts = &self.points;
        let mut above = 0.0;
        // First implicit segment [1, pts[0].0).
        let segs =
            std::iter::once(((1.0, 0.0), pts[0])).chain(pts.windows(2).map(|w| (w[0], w[1])));
        for ((x0, p0), (x1, p1)) in segs {
            if x1 <= bytes {
                continue;
            }
            if x0 >= bytes {
                above += (p1 - p0) * (x0 + x1) / 2.0;
            } else {
                // Split the segment at `bytes`.
                let frac = (bytes - x0) / (x1 - x0);
                let p_cut = p0 + frac * (p1 - p0);
                above += (p1 - p_cut) * (bytes + x1) / 2.0;
            }
        }
        above / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadoop_matches_paper_statistics() {
        let d = FlowSizeDist::hadoop();
        // "60% of the flows are less than 1KB"
        assert!((d.fraction_below(1_000.0) - 0.60).abs() < 0.01);
        // "more than 80% of the bits are from elephant flows larger than 100KB"
        assert!(
            d.byte_share_above(100_000.0) > 0.80,
            "elephant byte share {}",
            d.byte_share_above(100_000.0)
        );
    }

    #[test]
    fn web_search_is_heavy() {
        let d = FlowSizeDist::web_search();
        // "more than 80% flows exceed 10KB"
        assert!(1.0 - d.fraction_below(10_000.0) > 0.80);
    }

    #[test]
    fn google_is_mice_dominated() {
        let d = FlowSizeDist::google();
        // "more than 80% flows are less than 1KB"
        assert!(d.fraction_below(1_000.0) >= 0.80);
    }

    #[test]
    fn quantile_is_monotone() {
        for d in [
            FlowSizeDist::hadoop(),
            FlowSizeDist::web_search(),
            FlowSizeDist::google(),
        ] {
            let mut prev = 0;
            for i in 0..100 {
                let q = d.quantile(i as f64 / 100.0);
                assert!(q >= prev, "{}: quantile not monotone", d.name());
                prev = q;
            }
        }
    }

    #[test]
    fn sample_mean_converges_to_closed_form() {
        let d = FlowSizeDist::hadoop();
        let mut rng = Xoshiro256::new(5);
        let n = 300_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let emp = sum / n as f64;
        let exact = d.mean_bytes();
        assert!(
            (emp - exact).abs() / exact < 0.02,
            "empirical {emp} vs exact {exact}"
        );
    }

    #[test]
    fn fixed_always_returns_that_size() {
        let d = FlowSizeDist::fixed(1_000);
        let mut rng = Xoshiro256::new(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1_000);
        }
    }

    #[test]
    fn samples_stay_in_support() {
        let d = FlowSizeDist::google();
        let mut rng = Xoshiro256::new(2);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1..=5_000_000).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotone_points() {
        FlowSizeDist::from_points("bad", vec![(10.0, 0.5), (5.0, 1.0)]);
    }

    #[test]
    fn byte_share_edges() {
        let d = FlowSizeDist::hadoop();
        assert!((d.byte_share_above(0.5) - 1.0).abs() < 1e-9);
        assert!(d.byte_share_above(20_000_000.0).abs() < 1e-9);
    }
}
