//! All-to-all microbenchmark (§4.2, Figure 7(b)).
//!
//! "Each ToR synchronously sends equal-sized flows to all other ToRs."

use crate::flow::{Flow, FlowTrace};
use sim::time::Nanos;

/// Generator for a synchronized all-to-all shuffle.
#[derive(Debug, Clone)]
pub struct AllToAllWorkload {
    /// Size of every flow in bytes (swept 1 KB – 500 KB in Figure 7(b)).
    pub flow_bytes: u64,
    /// Number of ToRs.
    pub n_tors: usize,
    /// Injection time (paper micro-observations inject at 10 µs).
    pub start: Nanos,
}

impl AllToAllWorkload {
    /// Generate the `N·(N−1)` flows of one shuffle.
    pub fn generate(&self) -> FlowTrace {
        let mut flows = Vec::with_capacity(self.n_tors * (self.n_tors - 1));
        for src in 0..self.n_tors {
            for dst in 0..self.n_tors {
                if src != dst {
                    flows.push(Flow {
                        id: flows.len() as u64,
                        src,
                        dst,
                        bytes: self.flow_bytes,
                        arrival: self.start,
                    });
                }
            }
        }
        FlowTrace::new(flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_of_flows() {
        let w = AllToAllWorkload {
            flow_bytes: 30_000,
            n_tors: 16,
            start: 10_000,
        };
        let t = w.generate();
        assert_eq!(t.len(), 16 * 15);
        // Every ordered pair appears exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for f in t.flows() {
            assert_ne!(f.src, f.dst);
            assert!(seen.insert((f.src, f.dst)));
            assert_eq!(f.bytes, 30_000);
            assert_eq!(f.arrival, 10_000);
        }
    }

    #[test]
    fn total_bytes() {
        let w = AllToAllWorkload {
            flow_bytes: 1_000,
            n_tors: 4,
            start: 0,
        };
        assert_eq!(w.generate().total_bytes(), 12_000);
    }
}
