//! Incast microbenchmark (§4.2, Figure 7(a)).
//!
//! "A set of ToRs synchronously send one 1 KB flow to the same ToR, and the
//! number of source ToRs is the degree."

use crate::flow::{Flow, FlowTrace};
use sim::time::Nanos;
use sim::Xoshiro256;

/// Generator for a single synchronized incast burst.
#[derive(Debug, Clone)]
pub struct IncastWorkload {
    /// Number of simultaneous senders.
    pub degree: usize,
    /// Size of each flow in bytes (paper: 1 KB).
    pub flow_bytes: u64,
    /// Number of ToRs in the network.
    pub n_tors: usize,
    /// Burst injection time (paper micro-observations inject at 10 µs).
    pub start: Nanos,
}

impl IncastWorkload {
    /// Generate the burst: a random destination and `degree` distinct
    /// random sources, all flows arriving at `start`.
    pub fn generate(&self, seed: u64) -> FlowTrace {
        assert!(
            self.degree < self.n_tors,
            "incast degree must leave room for the destination"
        );
        let mut rng = Xoshiro256::new(seed);
        let dst = rng.index(self.n_tors);
        let mut candidates: Vec<usize> = (0..self.n_tors).filter(|&t| t != dst).collect();
        rng.shuffle(&mut candidates);
        let flows = candidates
            .into_iter()
            .take(self.degree)
            .enumerate()
            .map(|(i, src)| Flow {
                id: i as u64,
                src,
                dst,
                bytes: self.flow_bytes,
                arrival: self.start,
            })
            .collect();
        FlowTrace::new(flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_has_degree_distinct_sources_one_destination() {
        let w = IncastWorkload {
            degree: 20,
            flow_bytes: 1_000,
            n_tors: 128,
            start: 10_000,
        };
        let t = w.generate(1);
        assert_eq!(t.len(), 20);
        let dst = t.flows()[0].dst;
        let mut srcs: Vec<usize> = t.flows().iter().map(|f| f.src).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 20, "sources must be distinct");
        for f in t.flows() {
            assert_eq!(f.dst, dst);
            assert_ne!(f.src, dst);
            assert_eq!(f.arrival, 10_000);
            assert_eq!(f.bytes, 1_000);
        }
    }

    #[test]
    fn degree_one_works() {
        let w = IncastWorkload {
            degree: 1,
            flow_bytes: 1_000,
            n_tors: 16,
            start: 0,
        };
        assert_eq!(w.generate(3).len(), 1);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn degree_must_fit() {
        IncastWorkload {
            degree: 16,
            flow_bytes: 1_000,
            n_tors: 16,
            start: 0,
        }
        .generate(0);
    }
}
