//! Poisson background traffic with the paper's load definition.
//!
//! §4.1: "All the flows arrive based on a Poisson process, with sources and
//! destinations chosen uniformly at random. We define the network load as
//! `L = F / (R·N·τ)`", where `F` is the mean flow size, `R` the per-ToR
//! (host-aggregate) bandwidth, `N` the ToR count and `τ` the mean flow
//! inter-arrival time. Solving for the network-wide arrival rate:
//! `1/τ = L·R·N / F`.

use crate::dist::FlowSizeDist;
use crate::flow::{Flow, FlowTrace};
use sim::time::Nanos;
use sim::Xoshiro256;

/// Parameters of a Poisson background workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Flow-size distribution (`F` is derived from it).
    pub dist: FlowSizeDist,
    /// Offered load `L` as a fraction of `R·N` (1.0 = 100%).
    pub load: f64,
    /// Number of ToRs `N`.
    pub n_tors: usize,
    /// Per-ToR host-aggregate bandwidth `R` in bits/s (paper: 400 Gbps).
    pub host_bps: u64,
}

impl WorkloadSpec {
    /// Network-wide mean flow arrival rate in flows per nanosecond.
    pub fn arrival_rate_per_ns(&self) -> f64 {
        let f_bits = self.dist.mean_bytes() * 8.0;
        self.load * self.host_bps as f64 * self.n_tors as f64 / f_bits / 1e9
    }

    /// Mean inter-arrival time `τ` in nanoseconds.
    pub fn mean_interarrival_ns(&self) -> f64 {
        1.0 / self.arrival_rate_per_ns()
    }
}

/// Generator for Poisson background traffic.
#[derive(Debug, Clone)]
pub struct PoissonWorkload {
    spec: WorkloadSpec,
}

impl PoissonWorkload {
    /// New generator from `spec`.
    pub fn new(spec: WorkloadSpec) -> Self {
        assert!(spec.load > 0.0, "load must be positive");
        assert!(spec.n_tors >= 2, "need at least two ToRs");
        PoissonWorkload { spec }
    }

    /// The spec this generator was built with.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generate all flows arriving in `[0, duration)`.
    pub fn generate(&self, duration: Nanos, seed: u64) -> FlowTrace {
        let mut rng = Xoshiro256::new(seed);
        let mean_gap = self.spec.mean_interarrival_ns();
        let mut t = 0.0f64;
        let mut flows = Vec::new();
        loop {
            t += rng.next_exp(mean_gap);
            let at = t as Nanos;
            if at >= duration {
                break;
            }
            let src = rng.index(self.spec.n_tors);
            // Uniform destination, never the source.
            let mut dst = rng.index(self.spec.n_tors - 1);
            if dst >= src {
                dst += 1;
            }
            flows.push(Flow {
                id: flows.len() as u64,
                src,
                dst,
                bytes: self.spec.dist.sample(&mut rng),
                arrival: at,
            });
        }
        FlowTrace::new(flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(load: f64) -> WorkloadSpec {
        WorkloadSpec {
            dist: FlowSizeDist::hadoop(),
            load,
            n_tors: 128,
            host_bps: 400_000_000_000,
        }
    }

    #[test]
    fn offered_load_matches_request() {
        // Offered bits / (R·N·duration) should come out near L.
        for load in [0.25, 1.0] {
            let wl = PoissonWorkload::new(spec(load));
            let dur: Nanos = 20_000_000; // 20 ms
            let trace = wl.generate(dur, 42);
            let offered_bits = trace.total_bytes() as f64 * 8.0;
            let capacity_bits = 400e9 * 128.0 * (dur as f64 / 1e9);
            let measured = offered_bits / capacity_bits;
            assert!(
                (measured - load).abs() / load < 0.05,
                "load {load}: measured {measured}"
            );
        }
    }

    #[test]
    fn sources_and_destinations_differ_and_cover() {
        let wl = PoissonWorkload::new(WorkloadSpec {
            n_tors: 8,
            ..spec(1.0)
        });
        let trace = wl.generate(1_000_000, 7);
        assert!(trace.len() > 100);
        let mut seen_src = [false; 8];
        let mut seen_dst = [false; 8];
        for f in trace.flows() {
            assert_ne!(f.src, f.dst);
            seen_src[f.src] = true;
            seen_dst[f.dst] = true;
        }
        assert!(seen_src.iter().all(|&b| b));
        assert!(seen_dst.iter().all(|&b| b));
    }

    #[test]
    fn deterministic_per_seed() {
        let wl = PoissonWorkload::new(spec(0.5));
        let a = wl.generate(2_000_000, 9);
        let b = wl.generate(2_000_000, 9);
        assert_eq!(a.flows(), b.flows());
        let c = wl.generate(2_000_000, 10);
        assert_ne!(a.flows(), c.flows());
    }

    #[test]
    fn arrivals_sorted_and_bounded() {
        let wl = PoissonWorkload::new(spec(0.8));
        let trace = wl.generate(500_000, 3);
        let mut prev = 0;
        for f in trace.flows() {
            assert!(f.arrival >= prev);
            assert!(f.arrival < 500_000);
            prev = f.arrival;
        }
    }

    #[test]
    fn interarrival_scales_inversely_with_load() {
        let tau_half = PoissonWorkload::new(spec(0.5))
            .spec()
            .mean_interarrival_ns();
        let tau_full = PoissonWorkload::new(spec(1.0))
            .spec()
            .mean_interarrival_ns();
        assert!((tau_half / tau_full - 2.0).abs() < 1e-9);
    }
}
