//! Component microbenchmarks: the matching algorithm, the ring arbiter,
//! queue operations, and raw epoch-engine throughput. These guard the
//! simulator's own performance (a 30 ms paper-scale run must stay in
//! seconds), independent of the paper-shape benches.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use negotiator::matching::{AcceptArbiter, Grant, GrantArbiter};
use negotiator::queues::DestQueue;
use negotiator::rings::Ring;
use negotiator::{NegotiatorConfig, NegotiatorSim};
use oblivious::{ObliviousConfig, ObliviousSim};
use sim::Xoshiro256;
use topology::{AnyTopology, NetworkConfig, Topology, TopologyKind};
use workload::{FlowSizeDist, PoissonWorkload, WorkloadSpec};

fn ring_pick(c: &mut Criterion) {
    let mut rng = Xoshiro256::new(1);
    let mut ring = Ring::new((0..128).collect(), &mut rng);
    let candidates: Vec<usize> = (0..128).step_by(3).collect();
    c.bench_function("ring_pick_128_members", |b| {
        b.iter(|| ring.pick(std::hint::black_box(&candidates)))
    });
}

fn grant_accept_cycle(c: &mut Criterion) {
    let topo = AnyTopology::build(TopologyKind::Parallel, NetworkConfig::paper_default());
    let n = topo.net().n_tors;
    let s = topo.net().n_ports;
    let mut rng = Xoshiro256::new(2);
    let mut grant_arbs: Vec<GrantArbiter> = (0..n)
        .map(|d| GrantArbiter::new(&topo, d, &mut rng))
        .collect();
    let mut accept_arbs: Vec<AcceptArbiter> = (0..n)
        .map(|t| AcceptArbiter::new(&topo, t, &mut rng))
        .collect();
    let requests: Vec<usize> = (0..n).collect();
    c.bench_function("grant_accept_cycle_128tors_saturated", |b| {
        b.iter(|| {
            let mut grants_by_src: Vec<Vec<Grant>> = vec![Vec::new(); n];
            for (dst, arb) in grant_arbs.iter_mut().enumerate() {
                let reqs: Vec<usize> = requests.iter().copied().filter(|&r| r != dst).collect();
                for (src, port) in arb.grant(s, &reqs, |_, _| true) {
                    grants_by_src[src].push(Grant { dst, port });
                }
            }
            let mut total = 0;
            for src in 0..n {
                total += accept_arbs[src]
                    .accept(s, &grants_by_src[src], |_, _| true)
                    .len();
            }
            total
        })
    });
}

fn queue_ops(c: &mut Criterion) {
    c.bench_function("destqueue_enqueue_dequeue_pias", |b| {
        b.iter_batched(
            DestQueue::new,
            |mut q| {
                for f in 0..32 {
                    q.enqueue_flow(f, 50_000, f, true, [1_000, 10_000]);
                }
                let mut total = 0u64;
                while let Some(p) = q.dequeue_packet(1_115) {
                    total += p.bytes;
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
}

fn small_trace(load: f64, duration: u64) -> workload::FlowTrace {
    PoissonWorkload::new(WorkloadSpec {
        dist: FlowSizeDist::hadoop(),
        load,
        n_tors: 16,
        host_bps: 200_000_000_000,
    })
    .generate(duration, 7)
}

/// Paper-scale (128 ToRs × 8 ports) epoch throughput: a fixed number of
/// epochs at moderate load, so `epochs / reported-time` is the engine's
/// epochs/sec figure. The PR gate for hot-path work: this must not regress,
/// and hot-path rewrites should move it by integer factors. `wall_time` in
/// sweep results JSON is the same quantity aggregated over a whole
/// experiment (see README § Performance).
fn engine_epoch_throughput(c: &mut Criterion) {
    const EPOCHS: u64 = 200;
    for (label, kind, load) in [
        ("parallel_40load", TopologyKind::Parallel, 0.4),
        ("thinclos_40load", TopologyKind::ThinClos, 0.4),
    ] {
        let cfg = NegotiatorConfig::paper_default(NetworkConfig::paper_default());
        let probe = NegotiatorSim::new(cfg.clone(), kind);
        let duration = EPOCHS * probe.epoch_len();
        let trace = PoissonWorkload::new(WorkloadSpec {
            dist: FlowSizeDist::hadoop(),
            load,
            n_tors: cfg.net.n_tors,
            host_bps: cfg.net.host_bandwidth.bps(),
        })
        .generate(duration, 11);
        c.bench_function(
            format!("engine_epoch_throughput_{label}_{EPOCHS}epochs"),
            |b| {
                b.iter_batched(
                    || NegotiatorSim::new(cfg.clone(), kind),
                    |mut sim| sim.run(&trace, duration),
                    BatchSize::SmallInput,
                )
            },
        );
    }
}

fn negotiator_epoch_throughput(c: &mut Criterion) {
    let duration = 200_000; // ≈ 54 epochs on the 16-ToR fabric
    let trace = small_trace(1.0, duration);
    c.bench_function("negotiator_run_16tors_200us_full_load", |b| {
        b.iter_batched(
            || {
                NegotiatorSim::new(
                    NegotiatorConfig::paper_default(NetworkConfig::small_for_tests()),
                    TopologyKind::Parallel,
                )
            },
            |mut sim| sim.run(&trace, duration),
            BatchSize::SmallInput,
        )
    });
}

fn oblivious_slot_throughput(c: &mut Criterion) {
    let duration = 200_000;
    let trace = small_trace(1.0, duration);
    c.bench_function("oblivious_run_16tors_200us_full_load", |b| {
        b.iter_batched(
            || {
                ObliviousSim::new(
                    ObliviousConfig::paper_default(NetworkConfig::small_for_tests()),
                    TopologyKind::ThinClos,
                )
            },
            |mut sim| sim.run(&trace, duration),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    ring_pick,
    grant_accept_cycle,
    queue_ops,
    negotiator_epoch_throughput,
    oblivious_slot_throughput,
    engine_epoch_throughput
);
criterion_main!(benches);
