//! One criterion benchmark per paper table/figure, running a scaled-down
//! (16-ToR, sub-millisecond) version of each experiment's workload. Two
//! purposes: `cargo bench` exercises every experiment end to end, and the
//! timings track the cost of each scenario. The full-scale tables are
//! produced by `cargo run --release -p service --bin paper -- all`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use negotiator::{FailureAction, NegotiatorConfig, NegotiatorSim, SchedulerMode, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};
use topology::{NetworkConfig, TopologyKind};
use workload::{
    AllToAllWorkload, FlowSizeDist, IncastWorkload, MixedWorkload, PoissonWorkload, WorkloadSpec,
};

const DURATION: u64 = 150_000;

fn net() -> NetworkConfig {
    NetworkConfig::small_for_tests()
}

fn trace(load: f64, dist: FlowSizeDist) -> workload::FlowTrace {
    PoissonWorkload::new(WorkloadSpec {
        dist,
        load,
        n_tors: 16,
        host_bps: 200_000_000_000,
    })
    .generate(DURATION, 11)
}

fn nego(cfg: NegotiatorConfig, kind: TopologyKind, opts: SimOptions) -> NegotiatorSim {
    NegotiatorSim::with_options(cfg, kind, opts)
}

fn bench_nego(
    c: &mut Criterion,
    name: &str,
    make_cfg: impl Fn() -> (NegotiatorConfig, TopologyKind, SimOptions),
    tr: workload::FlowTrace,
) {
    c.bench_function(name, |b| {
        b.iter_batched(
            || {
                let (cfg, kind, opts) = make_cfg();
                nego(cfg, kind, opts)
            },
            |mut sim| sim.run(&tr, DURATION),
            BatchSize::SmallInput,
        )
    });
}

fn table2_pb_pq_ablation(c: &mut Criterion) {
    let tr = trace(1.0, FlowSizeDist::hadoop());
    bench_nego(
        c,
        "table2_pb_pq_ablation",
        || {
            let mut cfg = NegotiatorConfig::paper_default(net());
            cfg.piggyback = false;
            cfg.priority_queues = false;
            (cfg, TopologyKind::Parallel, SimOptions::default())
        },
        tr,
    );
}

fn fig6_fct_cdf(c: &mut Criterion) {
    bench_nego(
        c,
        "fig6_fct_cdf",
        || {
            (
                NegotiatorConfig::paper_default(net()),
                TopologyKind::Parallel,
                SimOptions::default(),
            )
        },
        trace(1.0, FlowSizeDist::hadoop()),
    );
}

fn fig7a_incast(c: &mut Criterion) {
    let tr = IncastWorkload {
        degree: 14,
        flow_bytes: 1_000,
        n_tors: 16,
        start: 10_000,
    }
    .generate(3);
    c.bench_function("fig7a_incast", |b| {
        b.iter_batched(
            || {
                nego(
                    NegotiatorConfig::paper_default(net()),
                    TopologyKind::Parallel,
                    SimOptions::default(),
                )
            },
            |mut sim| sim.run(&tr, DURATION),
            BatchSize::SmallInput,
        )
    });
}

fn fig7b_alltoall(c: &mut Criterion) {
    let tr = AllToAllWorkload {
        flow_bytes: 5_000,
        n_tors: 16,
        start: 10_000,
    }
    .generate();
    c.bench_function("fig7b_alltoall", |b| {
        b.iter_batched(
            || {
                nego(
                    NegotiatorConfig::paper_default(net()),
                    TopologyKind::ThinClos,
                    SimOptions::default(),
                )
            },
            |mut sim| sim.run(&tr, DURATION),
            BatchSize::SmallInput,
        )
    });
}

fn fig8_reconfig_delay(c: &mut Criterion) {
    bench_nego(
        c,
        "fig8_reconfig_delay_100ns",
        || {
            let mut cfg = NegotiatorConfig::paper_default(net());
            cfg.epoch = cfg.epoch.with_guardband(100, 5);
            (cfg, TopologyKind::Parallel, SimOptions::default())
        },
        trace(1.0, FlowSizeDist::hadoop()),
    );
}

fn fig9_main_result(c: &mut Criterion) {
    let tr = trace(0.75, FlowSizeDist::hadoop());
    bench_nego(
        c,
        "fig9_negotiator_75pct",
        || {
            (
                NegotiatorConfig::paper_default(net()),
                TopologyKind::Parallel,
                SimOptions::default(),
            )
        },
        tr.clone(),
    );
    c.bench_function("fig9_oblivious_75pct", |b| {
        b.iter_batched(
            || {
                ObliviousSim::new(
                    ObliviousConfig::paper_default(net()),
                    TopologyKind::ThinClos,
                )
            },
            |mut sim| sim.run(&tr, DURATION),
            BatchSize::SmallInput,
        )
    });
}

fn fig10_failures(c: &mut Criterion) {
    let tr = trace(1.0, FlowSizeDist::hadoop());
    c.bench_function("fig10_failure_recovery", |b| {
        b.iter_batched(
            || {
                let mut sim = nego(
                    NegotiatorConfig::paper_default(net()),
                    TopologyKind::Parallel,
                    SimOptions {
                        total_rx_window: Some(10_000),
                        ..SimOptions::default()
                    },
                );
                sim.schedule_failure(
                    DURATION / 3,
                    FailureAction::FailRandom {
                        ratio: 0.05,
                        seed: 5,
                    },
                );
                sim.schedule_failure(2 * DURATION / 3, FailureAction::RepairAll);
                sim
            },
            |mut sim| sim.run(&tr, DURATION),
            BatchSize::SmallInput,
        )
    });
}

fn fig11_no_speedup(c: &mut Criterion) {
    let flat = NetworkConfig {
        port_bandwidth: sim::Bandwidth::from_gbps(50),
        ..net()
    };
    let tr = PoissonWorkload::new(WorkloadSpec {
        dist: FlowSizeDist::hadoop(),
        load: 0.75,
        n_tors: 16,
        host_bps: 200_000_000_000,
    })
    .generate(DURATION, 13);
    c.bench_function("fig11_no_speedup", |b| {
        b.iter_batched(
            || {
                nego(
                    NegotiatorConfig::paper_default(flat.clone()),
                    TopologyKind::Parallel,
                    SimOptions::default(),
                )
            },
            |mut sim| sim.run(&tr, DURATION),
            BatchSize::SmallInput,
        )
    });
}

fn fig12_sensitivity(c: &mut Criterion) {
    bench_nego(
        c,
        "fig12_scheduled_phase_100slots",
        || {
            let mut cfg = NegotiatorConfig::paper_default(net());
            cfg.epoch.scheduled_slots = 100;
            (cfg, TopologyKind::Parallel, SimOptions::default())
        },
        trace(0.75, FlowSizeDist::hadoop()),
    );
}

fn fig13_workloads(c: &mut Criterion) {
    let (tr, _) = MixedWorkload {
        background: WorkloadSpec {
            dist: FlowSizeDist::hadoop(),
            load: 0.5,
            n_tors: 16,
            host_bps: 200_000_000_000,
        },
        incast_degree: 8,
        incast_flow_bytes: 1_000,
        incast_load: 0.02,
    }
    .generate(DURATION, 17);
    bench_nego(
        c,
        "fig13a_mixed_incast",
        || {
            (
                NegotiatorConfig::paper_default(net()),
                TopologyKind::Parallel,
                SimOptions::default(),
            )
        },
        tr,
    );
    bench_nego(
        c,
        "fig13b_web_search",
        || {
            (
                NegotiatorConfig::paper_default(net()),
                TopologyKind::Parallel,
                SimOptions::default(),
            )
        },
        trace(0.5, FlowSizeDist::web_search()),
    );
    bench_nego(
        c,
        "fig13c_google",
        || {
            (
                NegotiatorConfig::paper_default(net()),
                TopologyKind::Parallel,
                SimOptions::default(),
            )
        },
        trace(0.5, FlowSizeDist::google()),
    );
}

fn fig14_match_ratio(c: &mut Criterion) {
    bench_nego(
        c,
        "fig14_match_ratio",
        || {
            (
                NegotiatorConfig::paper_default(net()),
                TopologyKind::ThinClos,
                SimOptions::default(),
            )
        },
        trace(1.0, FlowSizeDist::hadoop()),
    );
}

fn fig15_iterative(c: &mut Criterion) {
    bench_nego(
        c,
        "fig15_iterative_3rounds",
        || {
            (
                NegotiatorConfig::paper_default(net()),
                TopologyKind::Parallel,
                SimOptions {
                    mode: SchedulerMode::Iterative { rounds: 3 },
                    ..SimOptions::default()
                },
            )
        },
        trace(0.75, FlowSizeDist::hadoop()),
    );
}

fn table3_selective_relay(c: &mut Criterion) {
    bench_nego(
        c,
        "table3_selective_relay",
        || {
            (
                NegotiatorConfig::paper_default(net()),
                TopologyKind::ThinClos,
                SimOptions {
                    selective_relay: true,
                    ..SimOptions::default()
                },
            )
        },
        trace(0.75, FlowSizeDist::hadoop()),
    );
}

fn table4_informative(c: &mut Criterion) {
    for (name, mode) in [
        ("table4_data_size", SchedulerMode::DataSize),
        ("table4_hol_delay", SchedulerMode::HolDelay { alpha: 0.001 }),
    ] {
        bench_nego(
            c,
            name,
            || {
                (
                    NegotiatorConfig::paper_default(net()),
                    TopologyKind::Parallel,
                    SimOptions {
                        mode,
                        ..SimOptions::default()
                    },
                )
            },
            trace(0.75, FlowSizeDist::hadoop()),
        );
    }
}

fn table5_stateful(c: &mut Criterion) {
    bench_nego(
        c,
        "table5_stateful",
        || {
            (
                NegotiatorConfig::paper_default(net()),
                TopologyKind::Parallel,
                SimOptions {
                    mode: SchedulerMode::Stateful,
                    ..SimOptions::default()
                },
            )
        },
        trace(0.75, FlowSizeDist::hadoop()),
    );
}

fn table6_projector(c: &mut Criterion) {
    bench_nego(
        c,
        "table6_projector",
        || {
            (
                NegotiatorConfig::paper_default(net()),
                TopologyKind::Parallel,
                SimOptions {
                    mode: SchedulerMode::Projector,
                    ..SimOptions::default()
                },
            )
        },
        trace(0.75, FlowSizeDist::hadoop()),
    );
}

fn figs17_19_observability(c: &mut Criterion) {
    let tr = IncastWorkload {
        degree: 10,
        flow_bytes: 1_000,
        n_tors: 16,
        start: 10_000,
    }
    .generate(9);
    c.bench_function("fig17_18_rx_series", |b| {
        b.iter_batched(
            || {
                nego(
                    NegotiatorConfig::paper_default(net()),
                    TopologyKind::Parallel,
                    SimOptions {
                        rx_window: Some(1_000),
                        ..SimOptions::default()
                    },
                )
            },
            |mut sim| sim.run(&tr, DURATION),
            BatchSize::SmallInput,
        )
    });
    let big = workload::FlowTrace::new(vec![workload::Flow {
        id: 0,
        src: 1,
        dst: 9,
        bytes: 100_000_000,
        arrival: 0,
    }]);
    c.bench_function("fig19_pair_failures", |b| {
        b.iter_batched(
            || {
                let mut sim = nego(
                    NegotiatorConfig::paper_default(net()),
                    TopologyKind::Parallel,
                    SimOptions {
                        rx_window: Some(1_000),
                        ..SimOptions::default()
                    },
                );
                sim.schedule_failure(
                    DURATION / 3,
                    FailureAction::FailRandom {
                        ratio: 0.1,
                        seed: 3,
                    },
                );
                sim.schedule_failure(2 * DURATION / 3, FailureAction::RepairAll);
                sim
            },
            |mut sim| sim.run(&big, DURATION),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = shapes;
    config = Criterion::default().sample_size(10);
    targets =
        table2_pb_pq_ablation,
        fig6_fct_cdf,
        fig7a_incast,
        fig7b_alltoall,
        fig8_reconfig_delay,
        fig9_main_result,
        fig10_failures,
        fig11_no_speedup,
        fig12_sensitivity,
        fig13_workloads,
        fig14_match_ratio,
        fig15_iterative,
        table3_selective_relay,
        table4_informative,
        table5_stateful,
        table6_projector,
        figs17_19_observability
}
criterion_main!(shapes);
