//! Trace-forensics output stability: `paper trace query` over the
//! committed golden trace must render exactly the committed expected
//! text. The golden (`tests/fixtures/golden_trace.ndjson`) is a
//! hand-written schema-v2 trace exercising every event kind across both
//! engine sections; the expectation pins the forensics report format so
//! the CI `trace-forensics` step and any tooling that scrapes the
//! report never drift silently. Refresh the expectation only on a
//! deliberate format change:
//!
//! ```text
//! paper trace query crates/bench/tests/fixtures/golden_trace.ndjson \
//!   --top-fct 3 > crates/bench/tests/fixtures/golden_trace_query.txt
//! ```

use std::path::PathBuf;

use bench::traceq;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn golden_query_output_is_pinned() {
    let golden = fixture("golden_trace.ndjson");
    let expected = fixture("golden_trace_query.txt");
    let opts = traceq::QueryOpts {
        top_fct: Some(3),
        ..Default::default()
    };
    let got = traceq::query(&golden, &opts).expect("golden trace queries");
    assert_eq!(
        got.trim_end(),
        expected.trim_end(),
        "trace-query report drifted from the committed expectation; if \
         deliberate, refresh tests/fixtures/golden_trace_query.txt (see \
         the module doc)"
    );
}

#[test]
fn golden_trace_is_self_consistent() {
    let golden = fixture("golden_trace.ndjson");
    let t = traceq::parse(&golden).expect("golden trace parses strictly");
    assert_eq!(t.sections.len(), 2, "one section per engine");
    assert_eq!(traceq::dropped_total(&golden), 0);
    // Every event kind in the schema appears somewhere in the golden, so
    // the fixture keeps exercising the full vocabulary.
    for kind in [
        "sched",
        "control_drop",
        "detector",
        "fault",
        "backlog_watermark",
        "phase",
        "flow_born",
        "flow_request",
        "flow_grant",
        "flow_accept",
        "flow_first_tx",
        "flow_complete",
    ] {
        assert!(
            t.sections
                .iter()
                .flat_map(|s| &s.events)
                .any(|e| e.kind == kind),
            "golden trace lost event kind {kind}"
        );
    }
    // Self-diff: identical inputs must report no divergence.
    let outcome = traceq::diff("golden", &golden, "golden", &golden, 3);
    assert!(!outcome.divergent, "{}", outcome.report);
}
