//! Flight-recorder determinism: the traced NDJSON for a scenario must be
//! byte-identical at any `--workers` count — the recorder only ever
//! observes fully-merged per-epoch state, so intra-run sharding can never
//! leak into trace bytes. This is the same guarantee the result document
//! already carries, extended to the observability plane: `paper scenario
//! --trace` on one machine and a daemon trace on another must `cmp`
//! equal. The causal flow-lifecycle span events ride the same discipline
//! (stamped from dirty *sets*, emitted in flow-id order), so the full
//! span timeline is pinned by the same byte comparison.
//!
//! Coverage: an injected-fault scenario (`gray_control_plane` — gray
//! control-plane drops, detector FP transitions), an adversarial one
//! (`greedy_tor`), and `ci_smoke`, which pins no `engines` list and so
//! runs *both* engines (negotiator + oblivious) through the recorder.
//! On top, `paper trace diff` self-tests: identical runs produce no
//! divergence, and a seed perturbation is pinned to its first divergent
//! event with the right coordinates.

use std::path::PathBuf;

use bench::scenario::{execute_traced, load};
use bench::traceq;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .canonicalize()
        .expect("workspace scenarios/ directory")
}

/// Trace one scenario at several worker counts; all byte-identical.
fn assert_worker_invariant(file: &str) -> String {
    let compiled = load(&scenarios_dir().join(file)).expect("scenario compiles");
    let (report1, trace1) = execute_traced(&compiled, None, 1, None);
    for workers in [2, 8] {
        let (report, trace) = execute_traced(&compiled, None, workers, None);
        assert_eq!(
            trace1, trace,
            "{file}: trace bytes differ between --workers 1 and --workers {workers}"
        );
        assert_eq!(
            bench::scenario::deterministic_document(&report1),
            bench::scenario::deterministic_document(&report),
            "{file}: result document differs at --workers {workers}"
        );
    }
    trace1
}

/// The negotiator's full causal span vocabulary must appear: flows are
/// born, negotiate (REQUEST → GRANT → ACCEPT), move bytes, and complete.
fn assert_negotiator_spans(trace: &str, file: &str) {
    for kind in [
        "flow_born",
        "flow_request",
        "flow_grant",
        "flow_accept",
        "flow_first_tx",
        "flow_complete",
    ] {
        assert!(
            trace.contains(&format!("\"event\":\"{kind}\"")),
            "{file}: no {kind} span event in the trace"
        );
    }
}

#[test]
fn gray_control_plane_trace_is_worker_invariant() {
    let trace = assert_worker_invariant("gray_control_plane.json");
    assert!(trace.contains("\"event\":\"trace_start\""), "{trace}");
    assert!(trace.contains("\"event\":\"trace_end\""));
    // The gray phase drops control messages and flips the detector; both
    // event kinds must appear for the scenario to be exercising the
    // recorder at all.
    assert!(
        trace.contains("\"event\":\"control_drop\""),
        "gray failure must record control-message drops"
    );
    assert!(
        trace.contains("\"event\":\"detector\""),
        "gray failure must record detector FP/FN transitions"
    );
    assert!(trace.contains("\"event\":\"phase\""));
    assert_negotiator_spans(&trace, "gray_control_plane.json");
}

#[test]
fn greedy_tor_trace_is_worker_invariant() {
    let trace = assert_worker_invariant("greedy_tor.json");
    assert!(trace.contains("\"event\":\"sched\""));
    assert!(trace.contains("\"event\":\"phase\""));
    assert_negotiator_spans(&trace, "greedy_tor.json");
}

#[test]
fn both_engines_trace_is_worker_invariant() {
    // ci_smoke pins no engine list, so it runs negotiator AND oblivious;
    // the trace carries one section per engine, in engine order.
    let trace = assert_worker_invariant("ci_smoke.json");
    let starts = trace.matches("\"event\":\"trace_start\"").count();
    assert_eq!(starts, 2, "one section per engine:\n{trace}");
    assert!(trace.contains("\"system\":\"nego/parallel\""), "{trace}");
    assert!(
        trace.contains("\"system\":\"oblivious/parallel\""),
        "{trace}"
    );
    // ci_smoke injects link failures; the fault activations must be
    // visible in at least one engine's section.
    assert!(trace.contains("\"event\":\"fault\""), "{trace}");
    // The oblivious engine has no control plane: its section carries
    // born/first_tx/complete spans but never a negotiation milestone.
    let parsed = traceq::parse(&trace).expect("trace parses");
    let oblivious = parsed
        .sections
        .iter()
        .find(|s| s.system.starts_with("oblivious"))
        .expect("oblivious section");
    assert!(
        oblivious.events.iter().any(|e| e.kind == "flow_complete"),
        "oblivious flows must complete"
    );
    for absent in ["flow_request", "flow_grant", "flow_accept"] {
        assert!(
            oblivious.events.iter().all(|e| e.kind != absent),
            "oblivious engine has no control plane, found {absent}"
        );
    }
    // Every completed flow's milestones are causally ordered.
    for section in &parsed.sections {
        for row in traceq::flow_rows(section) {
            let (Some(born), Some(done)) = (row.born, row.complete) else {
                continue;
            };
            assert!(
                born <= done,
                "{}: flow {} born after done",
                section.system,
                row.flow
            );
            for epoch in [row.request, row.grant, row.accept, row.first_tx]
                .into_iter()
                .flatten()
            {
                assert!(
                    born <= epoch && epoch <= done,
                    "{}: flow {} milestone {epoch} outside [{born}, {done}]",
                    section.system,
                    row.flow
                );
            }
        }
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    // Same scenario, same worker count, fresh engines: identical bytes.
    let compiled = load(&scenarios_dir().join("greedy_tor.json")).expect("scenario compiles");
    let (_, a) = execute_traced(&compiled, None, 2, None);
    let (_, b) = execute_traced(&compiled, None, 2, None);
    assert_eq!(a, b);
}

#[test]
fn trace_capacity_shapes_only_the_trace() {
    // A deliberately tiny ring (the CLI minimum) overflows on a real
    // scenario: drops are declared in the footer, the summary and
    // document stay byte-identical to the default-capacity run.
    let compiled = load(&scenarios_dir().join("greedy_tor.json")).expect("scenario compiles");
    let (full_report, full) = execute_traced(&compiled, None, 1, None);
    let (small_report, small) = execute_traced(&compiled, None, 1, Some(1024));
    assert_eq!(
        bench::scenario::deterministic_document(&full_report),
        bench::scenario::deterministic_document(&small_report),
        "ring capacity must never reach the result document"
    );
    assert_eq!(
        traceq::dropped_total(&full),
        0,
        "default ring must not overflow"
    );
    assert!(
        traceq::dropped_total(&small) > 0,
        "1Ki ring must overflow on greedy_tor:\n{}",
        small.lines().last().unwrap_or("")
    );
    assert!(
        small.contains("\"capacity\":1024"),
        "header declares the ring size"
    );
    // A capacity-limited trace is still worker-invariant.
    let (_, small8) = execute_traced(&compiled, None, 8, Some(1024));
    assert_eq!(small, small8);
}

#[test]
fn diff_of_identical_runs_reports_no_divergence() {
    let compiled = load(&scenarios_dir().join("greedy_tor.json")).expect("scenario compiles");
    let (_, a) = execute_traced(&compiled, None, 1, None);
    let (_, b) = execute_traced(&compiled, None, 4, None);
    let outcome = traceq::diff("workers1", &a, "workers4", &b, 3);
    assert!(!outcome.divergent, "{}", outcome.report);
    assert!(outcome.report.contains("identical"), "{}", outcome.report);
}

#[test]
fn diff_pins_a_seed_perturbation_to_its_first_divergent_event() {
    // Perturb the workload seed: the traces share the header, then split
    // at the first event the changed workload reaches. The diff must
    // exit divergent and name that event with epoch + kind coordinates.
    let dir = scenarios_dir();
    let text = std::fs::read_to_string(dir.join("greedy_tor.json")).expect("scenario file");
    let a = load(&dir.join("greedy_tor.json")).expect("scenario compiles");
    let spec = bench::scenario::parse_scenario(&text).expect("parses");
    let perturbed = text.replace(
        &format!("\"seed\": {}", spec.seed),
        &format!("\"seed\": {}", spec.seed + 1),
    );
    assert_ne!(text, perturbed, "seed field must be present to perturb");
    let b = bench::scenario::compile(
        bench::scenario::parse_scenario(&perturbed).expect("parses"),
        &dir,
    )
    .expect("compiles");
    let (_, trace_a) = execute_traced(&a, None, 1, None);
    let (_, trace_b) = execute_traced(&b, None, 1, None);
    let outcome = traceq::diff("seed", &trace_a, "seed+1", &trace_b, 3);
    assert!(outcome.divergent, "seed change must diverge the trace");
    assert!(
        outcome.report.contains("first divergent event"),
        "{}",
        outcome.report
    );
    // The headline names the event: epoch + kind on both sides.
    assert!(
        outcome.report.contains("a = epoch ") && outcome.report.contains("b = epoch "),
        "{}",
        outcome.report
    );
    // Line-exact location: the named line index really is the first
    // difference between the two traces.
    let (la, lb): (Vec<&str>, Vec<&str>) = (trace_a.lines().collect(), trace_b.lines().collect());
    let first = (0..la.len().min(lb.len()))
        .find(|&i| la[i] != lb[i])
        .expect("traces differ");
    assert!(
        outcome
            .report
            .contains(&format!("diverge at line {}", first + 1)),
        "{}",
        outcome.report
    );
}
