//! Flight-recorder determinism: the traced NDJSON for a scenario must be
//! byte-identical at any `--workers` count — the recorder only ever
//! observes fully-merged per-epoch state, so intra-run sharding can never
//! leak into trace bytes. This is the same guarantee the result document
//! already carries, extended to the observability plane: `paper scenario
//! --trace` on one machine and a daemon trace on another must `cmp`
//! equal.
//!
//! Coverage: an injected-fault scenario (`gray_control_plane` — gray
//! control-plane drops, detector FP transitions), an adversarial one
//! (`greedy_tor`), and `ci_smoke`, which pins no `engines` list and so
//! runs *both* engines (negotiator + oblivious) through the recorder.

use std::path::PathBuf;

use bench::scenario::{execute_traced, load};

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .canonicalize()
        .expect("workspace scenarios/ directory")
}

/// Trace one scenario at several worker counts; all byte-identical.
fn assert_worker_invariant(file: &str) -> String {
    let compiled = load(&scenarios_dir().join(file)).expect("scenario compiles");
    let (report1, trace1) = execute_traced(&compiled, None, 1);
    for workers in [2, 8] {
        let (report, trace) = execute_traced(&compiled, None, workers);
        assert_eq!(
            trace1, trace,
            "{file}: trace bytes differ between --workers 1 and --workers {workers}"
        );
        assert_eq!(
            bench::scenario::deterministic_document(&report1),
            bench::scenario::deterministic_document(&report),
            "{file}: result document differs at --workers {workers}"
        );
    }
    trace1
}

#[test]
fn gray_control_plane_trace_is_worker_invariant() {
    let trace = assert_worker_invariant("gray_control_plane.json");
    assert!(trace.contains("\"event\":\"trace_start\""), "{trace}");
    assert!(trace.contains("\"event\":\"trace_end\""));
    // The gray phase drops control messages and flips the detector; both
    // event kinds must appear for the scenario to be exercising the
    // recorder at all.
    assert!(
        trace.contains("\"event\":\"control_drop\""),
        "gray failure must record control-message drops"
    );
    assert!(
        trace.contains("\"event\":\"detector\""),
        "gray failure must record detector FP/FN transitions"
    );
    assert!(trace.contains("\"event\":\"phase\""));
}

#[test]
fn greedy_tor_trace_is_worker_invariant() {
    let trace = assert_worker_invariant("greedy_tor.json");
    assert!(trace.contains("\"event\":\"sched\""));
    assert!(trace.contains("\"event\":\"phase\""));
}

#[test]
fn both_engines_trace_is_worker_invariant() {
    // ci_smoke pins no engine list, so it runs negotiator AND oblivious;
    // the trace carries one section per engine, in engine order.
    let trace = assert_worker_invariant("ci_smoke.json");
    let starts = trace.matches("\"event\":\"trace_start\"").count();
    assert_eq!(starts, 2, "one section per engine:\n{trace}");
    assert!(trace.contains("\"system\":\"nego/parallel\""), "{trace}");
    assert!(
        trace.contains("\"system\":\"oblivious/parallel\""),
        "{trace}"
    );
    // ci_smoke injects link failures; the fault activations must be
    // visible in at least one engine's section.
    assert!(trace.contains("\"event\":\"fault\""), "{trace}");
}

#[test]
fn repeated_runs_are_reproducible() {
    // Same scenario, same worker count, fresh engines: identical bytes.
    let compiled = load(&scenarios_dir().join("greedy_tor.json")).expect("scenario compiles");
    let (_, a) = execute_traced(&compiled, None, 2);
    let (_, b) = execute_traced(&compiled, None, 2);
    assert_eq!(a, b);
}
