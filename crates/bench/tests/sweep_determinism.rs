//! `--jobs N` must be invisible in every output: a parallel sweep
//! reassembles its results in spec order, so rendered reports and the
//! (timing-free) JSON documents are byte-identical to a serial run of the
//! same (config, seed). This is the contract that lets CI gate on
//! `bench-diff` while running sweeps as wide as the machine allows.

use bench::experiments::{find_experiment, Args, Experiment};
use bench::{results, sweep};

/// A fast but non-trivial configuration: two loads at paper scale keeps
/// the whole test in seconds while still spanning 20 runs of two
/// structurally different experiments (cells and per-run table chunks).
fn small_args() -> Args {
    Args {
        duration: 100_000, // 0.1 ms
        loads: vec![0.25, 1.0],
        seed: 7,
        workers: 1,
    }
}

fn experiments() -> Vec<&'static dyn Experiment> {
    vec![
        find_experiment("fig9").expect("registered"),
        find_experiment("table2").expect("registered"),
    ]
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let args = small_args();
    let serial = sweep::run_sweep(&experiments(), &args, 1);
    let parallel = sweep::run_sweep(&experiments(), &args, 8);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.id, p.id);
        // Identical rendered text reports, byte for byte.
        assert_eq!(s.rendered, p.rendered, "{}: rendering diverged", s.id);
        // Identical run metadata and metrics (RunReports included) —
        // wall-clock is execution metadata and is excluded by comparing
        // the pieces rather than whole RunResults.
        assert_eq!(s.results.len(), p.results.len());
        for (a, b) in s.results.iter().zip(&p.results) {
            assert_eq!(a.meta, b.meta, "{}: meta diverged", s.id);
            assert_eq!(
                a.metrics, b.metrics,
                "{}: run {} metrics diverged",
                s.id, a.meta.index
            );
        }
        // Identical JSON bytes once timing metadata is left out.
        let s_json = results::experiment_json(s, None).render();
        let p_json = results::experiment_json(p, None).render();
        assert_eq!(s_json, p_json, "{}: JSON diverged", s.id);
        assert!(!s_json.contains("wall_secs"));
    }
}

#[test]
fn timed_json_differs_only_in_timing_fields() {
    let args = small_args();
    let exp = find_experiment("table2").expect("registered");
    let serial = sweep::run_one(exp, &args, 1);
    let parallel = sweep::run_one(exp, &args, 8);
    let strip = |report: &sweep::SweepReport, jobs: usize| {
        let rendered = results::experiment_json(report, Some(jobs)).render();
        let parsed = metrics::Json::parse(&rendered).expect("valid JSON");
        // Drop the two timing carriers; everything left must match.
        let metrics::Json::Obj(members) = parsed else {
            panic!("top level is an object")
        };
        let members: Vec<_> = members
            .into_iter()
            .filter(|(k, _)| k != "timing")
            .map(|(k, v)| match (k.as_str(), v) {
                ("runs", metrics::Json::Arr(runs)) => (
                    k.clone(),
                    metrics::Json::Arr(
                        runs.into_iter()
                            .map(|run| {
                                let metrics::Json::Obj(fields) = run else {
                                    panic!("run is an object")
                                };
                                metrics::Json::Obj(
                                    fields
                                        .into_iter()
                                        .filter(|(k, _)| k != "wall_secs")
                                        .collect(),
                                )
                            })
                            .collect(),
                    ),
                ),
                (_, v) => (k.clone(), v),
            })
            .collect();
        metrics::Json::Obj(members)
    };
    assert_eq!(strip(&serial, 1), strip(&parallel, 8));
}

/// The committed scenario library, relative to this crate.
fn scenarios_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn scenario_run_is_byte_identical_across_jobs() {
    // The acceptance contract of `paper scenario`: report text and the
    // timing-free results JSON at --jobs 8 match --jobs 1 byte for byte.
    let compiled =
        bench::scenario::load(&scenarios_dir().join("rolling_failures.json")).expect("ships valid");
    let serial = bench::scenario::run(&compiled, 1, 1);
    let parallel = bench::scenario::run(&compiled, 8, 1);
    assert_eq!(serial.rendered, parallel.rendered, "report diverged");
    let s = results::experiment_json(&serial, None).render();
    let p = results::experiment_json(&parallel, None).render();
    assert_eq!(s, p, "results JSON diverged");
    // The series actually made it into the document.
    assert!(s.contains("\"series\""), "{s}");
    assert!(s.contains("\"random_cuts\""), "{s}");
}

#[test]
fn scenario_run_is_byte_identical_across_shard_workers() {
    // The tentpole contract of `--workers`: sharded simulations emit the
    // very same bytes as sequential ones, composed with `--jobs` or not.
    let compiled =
        bench::scenario::load(&scenarios_dir().join("rolling_failures.json")).expect("ships valid");
    let sequential = bench::scenario::run(&compiled, 1, 1);
    for (jobs, workers) in [(1, 8), (4, 2)] {
        let sharded = bench::scenario::run(&compiled, jobs, workers);
        assert_eq!(
            sequential.rendered, sharded.rendered,
            "jobs {jobs} workers {workers}: report diverged"
        );
        let s = results::experiment_json(&sequential, None).render();
        let p = results::experiment_json(&sharded, None).render();
        assert_eq!(s, p, "jobs {jobs} workers {workers}: results JSON diverged");
    }
}

#[test]
fn shipped_scenario_library_is_valid() {
    // Every scenarios/*.json must parse, validate and compile (trace
    // files included) — `paper list` shows them and CI smokes one.
    let dir = scenarios_dir();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ exists") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let compiled =
            bench::scenario::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            !compiled.trace.is_empty(),
            "{}: empty trace",
            path.display()
        );
        assert_eq!(
            format!("{}.json", compiled.spec.name),
            path.file_name().unwrap().to_string_lossy(),
            "scenario name must match its file name"
        );
        seen += 1;
    }
    assert!(seen >= 5, "the library ships at least five scenarios");
}

#[test]
fn seed_changes_the_sweep() {
    // Guard against a sweep that ignores its seed: JSON for seed A and
    // seed B must differ in metrics, not just in the config stanza.
    let exp = find_experiment("table2").expect("registered");
    let a = sweep::run_one(exp, &small_args(), 4);
    let b = sweep::run_one(
        exp,
        &Args {
            seed: 8,
            ..small_args()
        },
        4,
    );
    assert_ne!(a.rendered, b.rendered, "different seeds, same table");
}
