//! The `paper trace <file.ndjson>` summarizer: turn a flight-recorder
//! trace (one engine section per `trace_start`/`trace_end` pair, see
//! `metrics::trace`) into a human-readable digest — per-section event
//! histogram (top-K, most frequent first), the per-phase convergence
//! timeline from the `phase` events, and overflow warnings when the ring
//! dropped events. Pure text in, text out: unit-testable without files.

use metrics::Json;

/// How many event kinds the histogram lists per section.
const TOP_K: usize = 8;

fn fmt_bytes(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 30 => format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64),
        b if b >= 1 << 20 => format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64),
        b if b >= 1 << 10 => format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64),
        b => format!("{b} B"),
    }
}

/// One engine section of a trace.
struct Section {
    system: String,
    /// `(event name, count)` in first-seen order.
    histogram: Vec<(String, u64)>,
    /// `(phase, t_ns, delivered, backlog, partitioned)` from `phase` events.
    phases: Vec<(u64, u64, u64, u64, u64)>,
    events: u64,
    dropped: u64,
}

/// Summarize flight-recorder NDJSON. Errors name the offending line
/// (1-based) — traces are machine-written, so any parse failure means the
/// file is not a trace.
pub fn summarize(text: &str) -> Result<String, String> {
    let mut sections: Vec<Section> = Vec::new();
    let mut current: Option<Section> = None;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let event = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"event\" field", i + 1))?;
        let get = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        match event {
            "trace_start" => {
                if let Some(done) = current.take() {
                    sections.push(done);
                }
                current = Some(Section {
                    system: v
                        .get("system")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    histogram: Vec::new(),
                    phases: Vec::new(),
                    events: 0,
                    dropped: 0,
                });
            }
            "trace_end" => {
                let mut done = current
                    .take()
                    .ok_or_else(|| format!("line {}: trace_end without trace_start", i + 1))?;
                done.events = get("events");
                done.dropped = get("dropped");
                sections.push(done);
            }
            name => {
                let section = current
                    .as_mut()
                    .ok_or_else(|| format!("line {}: event before trace_start", i + 1))?;
                match section.histogram.iter_mut().find(|(n, _)| n == name) {
                    Some((_, count)) => *count += 1,
                    None => section.histogram.push((name.to_string(), 1)),
                }
                if name == "phase" {
                    section.phases.push((
                        get("phase"),
                        get("t_ns"),
                        get("delivered_bytes"),
                        get("backlog_bytes"),
                        get("partitioned_tors"),
                    ));
                }
            }
        }
    }
    if let Some(unterminated) = current {
        return Err(format!(
            "trace for '{}' has no trace_end line (truncated file?)",
            unterminated.system
        ));
    }
    if sections.is_empty() {
        return Err("no trace sections found (is this a --trace output file?)".to_string());
    }
    Ok(render(&sections))
}

fn render(sections: &[Section]) -> String {
    let mut out = String::new();
    for s in sections {
        out.push_str(&format!(
            "## {} — {} events ({} dropped)\n",
            s.system, s.events, s.dropped
        ));
        if s.dropped > 0 {
            out.push_str(&format!(
                "   WARNING: ring overflowed; the oldest {} events were overwritten\n",
                s.dropped
            ));
        }
        let mut ranked: Vec<&(String, u64)> = s.histogram.iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.push_str("   top events:\n");
        if ranked.is_empty() {
            out.push_str("     (none recorded)\n");
        }
        for (name, count) in ranked.into_iter().take(TOP_K) {
            out.push_str(&format!("     {count:>8}  {name}\n"));
        }
        if !s.phases.is_empty() {
            out.push_str("   convergence timeline:\n");
            out.push_str("     phase       t_ms     delivered       backlog  part_tors\n");
            let mut prev_delivered = 0u64;
            for &(phase, t_ns, delivered, backlog, partitioned) in &s.phases {
                let delta = delivered.saturating_sub(prev_delivered);
                prev_delivered = delivered;
                out.push_str(&format!(
                    "     {phase:>5} {:>10.3} {:>13} {:>13} {partitioned:>10}   (+{} this phase)\n",
                    t_ns as f64 / 1e6,
                    fmt_bytes(delivered),
                    fmt_bytes(backlog),
                    fmt_bytes(delta),
                ));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"event\":\"trace_start\",\"schema_version\":1,\"system\":\"nego/parallel\",\"capacity\":16384}\n",
        "{\"event\":\"sched\",\"epoch\":1,\"t_ns\":5000,\"requests\":4,\"grants\":3,\"accepts\":3}\n",
        "{\"event\":\"sched\",\"epoch\":2,\"t_ns\":10000,\"requests\":2,\"grants\":2,\"accepts\":2}\n",
        "{\"event\":\"control_drop\",\"epoch\":2,\"t_ns\":10000,\"dropped\":1,\"total\":1}\n",
        "{\"event\":\"phase\",\"epoch\":3,\"t_ns\":15000,\"phase\":0,\"delivered_bytes\":2048,\"backlog_bytes\":512,\"partitioned_tors\":0}\n",
        "{\"event\":\"trace_end\",\"system\":\"nego/parallel\",\"events\":4,\"dropped\":0}\n",
    );

    #[test]
    fn summarizes_histogram_and_timeline() {
        let out = summarize(SAMPLE).unwrap();
        assert!(
            out.contains("nego/parallel — 4 events (0 dropped)"),
            "{out}"
        );
        // sched (2) ranks above control_drop (1) and phase (1).
        let sched = out.find("sched").unwrap();
        let drop = out.find("control_drop").unwrap();
        assert!(sched < drop, "{out}");
        assert!(out.contains("convergence timeline"), "{out}");
        assert!(out.contains("2.00 KiB"), "{out}");
        assert!(!out.contains("WARNING"), "{out}");
    }

    #[test]
    fn overflow_warns() {
        let text = SAMPLE.replace("\"events\":4,\"dropped\":0", "\"events\":4,\"dropped\":9");
        let out = summarize(&text).unwrap();
        assert!(out.contains("WARNING"), "{out}");
        assert!(out.contains("oldest 9 events"), "{out}");
    }

    #[test]
    fn multi_section_traces_render_each_engine() {
        let second = SAMPLE.replace("nego/parallel", "oblivious/parallel");
        let out = summarize(&format!("{SAMPLE}{second}")).unwrap();
        assert!(out.contains("## nego/parallel"), "{out}");
        assert!(out.contains("## oblivious/parallel"), "{out}");
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        assert!(summarize("not json\n").unwrap_err().contains("line 1"));
        let err = summarize("{\"event\":\"sched\"}\n").unwrap_err();
        assert!(err.contains("before trace_start"), "{err}");
        let err = summarize("").unwrap_err();
        assert!(err.contains("no trace sections"), "{err}");
        let truncated = SAMPLE.lines().take(3).collect::<Vec<_>>().join("\n");
        let err = summarize(&truncated).unwrap_err();
        assert!(err.contains("no trace_end"), "{err}");
    }
}
