//! Machine-readable sweep results: `results/<id>.json` emission and the
//! comparison logic behind the `bench-diff` regression gate.
//!
//! ## Schema (version 1)
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "experiment": "fig9",
//!   "artifact": "Figure 9: mice FCT and goodput vs load (main result)",
//!   "config": { "duration_ns": ..., "loads": [...], "seed": ... },
//!   "runs": [
//!     {
//!       "index": 0, "system": "nego/parallel", "load": 0.1,
//!       "param": {"name": "...", "value": ...} | null,
//!       "seed": ..., "duration_ns": ...,
//!       "metrics": { "mice": {...}, "all": {...}, "goodput": {...},
//!                    "match_ratio": ..., <experiment extras>,
//!                    "series": [ <per-phase rows, scenario runs only> ] },
//!       "wall_secs": ...            // only with timing enabled
//!     }, ...
//!   ],
//!   "timing": { "jobs": ..., "total_run_secs": ... }   // optional
//! }
//! ```
//!
//! Everything outside `wall_secs`/`timing` is a pure function of
//! (config, seed) — the determinism suite asserts the timing-free
//! rendering is byte-identical at any `--jobs`, and `bench-diff` ignores
//! the timing fields when gating.

use std::io;
use std::path::{Path, PathBuf};

use crate::sweep::{RunResult, SweepReport};
use metrics::Json;

/// Version stamp written into every result file.
pub const SCHEMA_VERSION: u64 = 1;

/// The JSON document for one experiment's sweep. `timing_jobs` attaches
/// wall-clock metadata (`Some(jobs)` from the CLI); `None` omits every
/// non-deterministic field.
pub fn experiment_json(report: &SweepReport, timing_jobs: Option<usize>) -> Json {
    let mut root = Json::object();
    root.push("schema_version", SCHEMA_VERSION)
        .push("experiment", report.id)
        .push("artifact", report.artifact);
    let mut config = Json::object();
    config
        .push("duration_ns", report.args.duration)
        .push(
            "loads",
            Json::Arr(report.args.loads.iter().map(|&l| Json::Num(l)).collect()),
        )
        .push("seed", report.args.seed);
    root.push("config", config);
    root.push(
        "runs",
        Json::Arr(
            report
                .results
                .iter()
                .map(|r| run_json(r, timing_jobs.is_some()))
                .collect(),
        ),
    );
    if let Some(jobs) = timing_jobs {
        let mut timing = Json::object();
        timing
            .push("jobs", jobs)
            .push("total_run_secs", report.runs_wall_secs());
        root.push("timing", timing);
    }
    root
}

fn run_json(result: &RunResult, with_timing: bool) -> Json {
    let meta = &result.meta;
    let mut run = Json::object();
    run.push("index", meta.index)
        .push("system", meta.system.as_str())
        .push("load", meta.load);
    match meta.param {
        Some((name, value)) => {
            let mut param = Json::object();
            param.push("name", name).push("value", value);
            run.push("param", param);
        }
        None => {
            run.push("param", Json::Null);
        }
    }
    run.push("seed", meta.seed)
        .push("duration_ns", meta.duration);
    let mut metrics = Json::object();
    if let Some(summary) = &result.metrics.report {
        for (key, value) in summary.to_json().members().expect("object").iter() {
            metrics.push(key, value.clone());
        }
    }
    metrics.push("match_ratio", result.metrics.match_ratio);
    for &(name, value) in &result.metrics.extra {
        metrics.push(name, value);
    }
    if let Some(series) = &result.metrics.series {
        metrics.push("series", series.clone());
    }
    run.push("metrics", metrics);
    if with_timing {
        run.push("wall_secs", result.wall_secs);
    }
    run
}

/// Write one `<dir>/<id>.json` per report (suffixing `-s<seed>` when the
/// sweep covers several seeds), creating `dir` as needed. `timing_jobs`
/// as in [`experiment_json`]: `Some(jobs)` attaches wall-clock metadata,
/// `None` writes the fully deterministic form (`--no-timing`). Returns
/// the paths written.
pub fn write_reports(
    dir: &Path,
    reports: &[SweepReport],
    timing_jobs: Option<usize>,
    seed_suffix: bool,
) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(reports.len());
    for report in reports {
        let name = if seed_suffix {
            format!("{}-s{}.json", report.id, report.args.seed)
        } else {
            format!("{}.json", report.id)
        };
        let path = dir.join(name);
        let mut text = experiment_json(report, timing_jobs).render();
        text.push('\n');
        std::fs::write(&path, text)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Wall-time ratio `current / baseline` from the two documents' optional
/// `timing.total_run_secs` fields. Purely informational — wall time varies
/// with hardware and load, so it never participates in gating — but it is
/// how the CI log shows a hot-path change's speedup (or regression) next
/// to the metric diff.
pub fn wall_time_ratio(baseline: &Json, current: &Json) -> Option<f64> {
    let secs = |doc: &Json| {
        doc.get("timing")
            .and_then(|t| t.get("total_run_secs"))
            .and_then(Json::as_f64)
            .filter(|&s| s > 0.0)
    };
    Some(secs(current)? / secs(baseline)?)
}

/// Compare two parsed result documents (baseline vs current) and return
/// the regressions: every numeric metric that moved more than
/// `tolerance_pct` percent, plus any structural mismatch. Empty means the
/// gate passes. Timing fields (`wall_secs`, `timing`) never participate.
pub fn diff_reports(id: &str, baseline: &Json, current: &Json, tolerance_pct: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for key in ["schema_version", "experiment"] {
        if baseline.get(key) != current.get(key) {
            failures.push(format!(
                "{id}: '{key}' differs ({} vs {})",
                render_short(baseline.get(key)),
                render_short(current.get(key)),
            ));
        }
    }
    if baseline.get("config") != current.get("config") {
        failures.push(format!(
            "{id}: config differs — baseline and current are not comparable"
        ));
        return failures;
    }
    let empty: &[Json] = &[];
    let base_runs = baseline
        .get("runs")
        .and_then(Json::as_array)
        .unwrap_or(empty);
    let cur_runs = current
        .get("runs")
        .and_then(Json::as_array)
        .unwrap_or(empty);
    if base_runs.len() != cur_runs.len() {
        failures.push(format!(
            "{id}: run count changed {} -> {}",
            base_runs.len(),
            cur_runs.len()
        ));
        return failures;
    }
    for (b, c) in base_runs.iter().zip(cur_runs) {
        let label = run_label(b);
        let b_metrics = b.get("metrics");
        let c_metrics = c.get("metrics");
        diff_metrics(
            id,
            &label,
            "",
            b_metrics,
            c_metrics,
            tolerance_pct,
            &mut failures,
        );
    }
    failures
}

/// Recursively compare two metric objects, flagging relative moves beyond
/// the tolerance.
fn diff_metrics(
    id: &str,
    run: &str,
    prefix: &str,
    baseline: Option<&Json>,
    current: Option<&Json>,
    tolerance_pct: f64,
    failures: &mut Vec<String>,
) {
    let (Some(baseline), Some(current)) = (baseline, current) else {
        if baseline.map(Json::is_null) != current.map(Json::is_null) {
            failures.push(format!("{id} {run}: metric set changed at '{prefix}'"));
        }
        return;
    };
    match (baseline, current) {
        (Json::Obj(b_members), Json::Obj(_)) => {
            // Keys present in either side are compared; a key that appears
            // or disappears is itself a failure (schema drift).
            let mut keys: Vec<&str> = b_members.iter().map(|(k, _)| k.as_str()).collect();
            for (k, _) in current.members().expect("object") {
                if !keys.contains(&k.as_str()) {
                    keys.push(k);
                }
            }
            for key in keys {
                let path = if prefix.is_empty() {
                    key.to_string()
                } else {
                    format!("{prefix}.{key}")
                };
                match (baseline.get(key), current.get(key)) {
                    (Some(b), Some(c)) => {
                        diff_metrics(id, run, &path, Some(b), Some(c), tolerance_pct, failures)
                    }
                    _ => failures.push(format!("{id} {run}: metric '{path}' appeared/vanished")),
                }
            }
        }
        (Json::Arr(b_items), Json::Arr(c_items)) => {
            // Time series and other metric arrays gate element by element.
            if b_items.len() != c_items.len() {
                failures.push(format!(
                    "{id} {run}: '{prefix}' length changed {} -> {}",
                    b_items.len(),
                    c_items.len()
                ));
                return;
            }
            for (i, (b, c)) in b_items.iter().zip(c_items).enumerate() {
                diff_metrics(
                    id,
                    run,
                    &format!("{prefix}[{i}]"),
                    Some(b),
                    Some(c),
                    tolerance_pct,
                    failures,
                );
            }
        }
        (b_val, c_val) if b_val.as_f64().is_some() && c_val.as_f64().is_some() => {
            let (b, c) = (
                b_val.as_f64().expect("number"),
                c_val.as_f64().expect("number"),
            );
            let moved = if b == 0.0 {
                if c == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                ((c - b) / b).abs() * 100.0
            };
            if moved > tolerance_pct {
                failures.push(format!(
                    "{id} {run}: {prefix} {b} -> {c} ({moved:+.1}% > {tolerance_pct}%)",
                ));
            }
        }
        (b, c) if b == c => {}
        (b, c) => failures.push(format!(
            "{id} {run}: {prefix} changed {} -> {}",
            render_short(Some(b)),
            render_short(Some(c)),
        )),
    }
}

fn run_label(run: &Json) -> String {
    let index = run
        .get("index")
        .and_then(Json::as_f64)
        .map_or_else(|| "?".to_string(), |i| format!("{}", i as u64));
    let system = run
        .get("system")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();
    match run.get("load").and_then(Json::as_f64) {
        Some(load) => format!("run {index} ({system} @ {:.0}%)", load * 100.0),
        None => format!("run {index} ({system})"),
    }
}

fn render_short(value: Option<&Json>) -> String {
    value.map_or_else(
        || "<absent>".to_string(),
        |v| {
            let text = v.render();
            match text.char_indices().nth(40) {
                Some((cut, _)) => format!("{}…", &text[..cut]),
                None => text,
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{Rendered, RunMeta, RunMetrics};
    use crate::Args;

    fn report() -> SweepReport {
        let args = Args {
            duration: 1_000,
            loads: vec![0.5],
            seed: 9,
            workers: 1,
        };
        let meta = RunMeta::new("demo", 0, "sys", &args).load(0.5);
        let metrics =
            RunMetrics::new(Rendered::Cells(vec!["1".into()])).push_extra("finish_ns", 1234.0);
        SweepReport {
            id: "demo",
            artifact: "Demo artifact",
            args,
            results: vec![crate::sweep::RunResult {
                meta,
                metrics,
                wall_secs: 0.25,
            }],
            rendered: String::new(),
        }
    }

    #[test]
    fn json_shape_and_timing_split() {
        let rep = report();
        let timed = experiment_json(&rep, Some(4));
        assert_eq!(timed.get("schema_version").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            timed.get("timing").unwrap().get("jobs").unwrap().as_f64(),
            Some(4.0)
        );
        let run = &timed.get("runs").unwrap().as_array().unwrap()[0];
        assert_eq!(
            run.get("metrics")
                .unwrap()
                .get("finish_ns")
                .unwrap()
                .as_f64(),
            Some(1234.0)
        );
        assert!(run.get("wall_secs").is_some());

        let bare = experiment_json(&rep, None);
        assert!(bare.get("timing").is_none());
        let run = &bare.get("runs").unwrap().as_array().unwrap()[0];
        assert!(run.get("wall_secs").is_none());
        // The timing-free form parses back to itself.
        assert_eq!(Json::parse(&bare.render()).unwrap(), bare);
    }

    #[test]
    fn wall_time_ratio_reads_timing_or_abstains() {
        let rep = report();
        let a = experiment_json(&rep, Some(1));
        let mut faster = rep.clone();
        faster.results[0].wall_secs = 0.125; // half of the baseline's 0.25
        let b = experiment_json(&faster, Some(1));
        let ratio = wall_time_ratio(&a, &b).expect("both sides carry timing");
        assert!((ratio - 0.5).abs() < 1e-9, "ratio {ratio}");
        // Timing-free documents yield no ratio instead of a division blowup.
        let bare = experiment_json(&rep, None);
        assert_eq!(wall_time_ratio(&bare, &b), None);
        assert_eq!(wall_time_ratio(&a, &bare), None);
    }

    #[test]
    fn diff_passes_identical_and_ignores_timing() {
        let rep = report();
        let a = experiment_json(&rep, Some(1));
        let mut faster = rep.clone();
        faster.results[0].wall_secs = 99.0;
        let b = experiment_json(&faster, Some(8));
        // Different jobs and wall times: still a clean pass.
        assert_eq!(diff_reports("demo", &a, &b, 0.0), Vec::<String>::new());
    }

    #[test]
    fn diff_flags_regressions_beyond_tolerance() {
        let rep = report();
        let a = experiment_json(&rep, None);
        let mut worse = rep.clone();
        worse.results[0].metrics.extra = vec![("finish_ns", 1400.0)]; // +13.5%
        let b = experiment_json(&worse, None);
        assert!(diff_reports("demo", &a, &b, 20.0).is_empty());
        let failures = diff_reports("demo", &a, &b, 10.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("finish_ns"), "{failures:?}");
        // Zero baseline to non-zero is always a failure.
        let mut from_zero = rep.clone();
        from_zero.results[0].metrics.extra = vec![("finish_ns", 0.0)];
        let z = experiment_json(&from_zero, None);
        assert!(!diff_reports("demo", &z, &b, 50.0).is_empty());
    }

    #[test]
    fn diff_flags_structural_drift() {
        let rep = report();
        let a = experiment_json(&rep, None);
        // Metric disappears.
        let mut dropped = rep.clone();
        dropped.results[0].metrics.extra = vec![];
        let b = experiment_json(&dropped, None);
        assert!(diff_reports("demo", &a, &b, 100.0)
            .iter()
            .any(|f| f.contains("appeared/vanished")));
        // Run count changes.
        let mut fewer = rep.clone();
        fewer.results.clear();
        let c = experiment_json(&fewer, None);
        assert!(diff_reports("demo", &a, &c, 100.0)
            .iter()
            .any(|f| f.contains("run count")));
        // Config changes make the pair incomparable.
        let mut other = rep.clone();
        other.args.seed = 10;
        let d = experiment_json(&other, None);
        assert!(diff_reports("demo", &a, &d, 100.0)
            .iter()
            .any(|f| f.contains("config differs")));
    }
}
