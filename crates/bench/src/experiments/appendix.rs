//! Appendix experiments: A.1 match-ratio validation (Figure 14) and the
//! A.2 design-space comparisons (Figure 15, Tables 3–6).

use std::sync::Arc;

use super::{Args, Experiment};
use crate::runs::{background_seeded, run_negotiator};
use crate::sweep::{Rendered, RunMeta, RunMetrics, RunResult, RunSpec};
use metrics::{report, Table};
use negotiator::{theory, NegotiatorConfig, SchedulerMode, SimOptions};
use topology::{NetworkConfig, TopologyKind};
use workload::FlowSizeDist;

/// Figure 14 (A.1): per-epoch match ratio at 100% load vs the closed-form
/// `E[Y] = 1 − (1 − 1/n)^n` — one run per topology.
pub struct Fig14;

impl Experiment for Fig14 {
    fn id(&self) -> &'static str {
        "fig14"
    }
    fn artifact(&self) -> &'static str {
        "Figure 14 (A.1): per-epoch match ratio vs theory"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let trace = Arc::new(background_seeded(
            FlowSizeDist::hadoop(),
            1.0,
            &net,
            args.duration,
            args.seed,
        ));
        [TopologyKind::Parallel, TopologyKind::ThinClos]
            .into_iter()
            .enumerate()
            .map(|(index, kind)| {
                let net = net.clone();
                let trace = Arc::clone(&trace);
                let duration = args.duration;
                let workers = args.workers;
                let meta = RunMeta::new(self.id(), index, format!("nego/{}", kind.label()), args)
                    .load(1.0);
                RunSpec::new(meta, move || {
                    let cfg = NegotiatorConfig::paper_default(net.clone());
                    let (rep, sim) =
                        run_negotiator(cfg, kind, SimOptions::default(), &trace, duration, workers);
                    let rec = sim.match_recorder();
                    let series = rec.series();
                    let mut table = Table::new(
                        format!(
                            "Figure 14 — match ratio per epoch, {} (100% load)",
                            kind.label()
                        ),
                        &["epoch", "match_ratio"],
                    );
                    let step = (series.len() / 16).max(1);
                    for (e, r) in series.iter().step_by(step) {
                        table.row(vec![e.to_string(), format!("{r:.3}")]);
                    }
                    let n = theory::competitors(kind, net.n_tors, net.n_ports);
                    let overall = rec.overall_ratio();
                    let expected = theory::expected_match_efficiency(n);
                    let block = format!(
                        "{}overall {:.3} vs theory E[Y](n={n}) = {:.3}\n\n",
                        table.render(),
                        overall.unwrap_or(0.0),
                        expected,
                    );
                    RunMetrics::with_report(Rendered::Block(block), rep)
                        .with_match_ratio(overall)
                        .push_extra("theory_match_ratio", expected)
                })
            })
            .collect()
    }
    fn render(&self, results: &[RunResult]) -> String {
        results.iter().map(|r| r.block()).collect()
    }
}

/// Figure 15 (A.2.1): iterative matching (no speedup) vs the non-iterative
/// algorithm with 2× speedup, parallel network — one run per
/// (load, variant).
pub struct Fig15;

const FIG15_LABELS: &[&str] = &["speedup 2x", "ITER_I", "ITER_III", "ITER_V"];
const FIG15_ITER_ROUNDS: [usize; 3] = [1, 3, 5];

impl Experiment for Fig15 {
    fn id(&self) -> &'static str {
        "fig15"
    }
    fn artifact(&self) -> &'static str {
        "Figure 15 (A.2.1): iterative matching vs 2x speedup"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let speedup_net = NetworkConfig::paper_default();
        let flat_net = NetworkConfig::paper_no_speedup();
        let mut specs = Vec::new();
        for &load in &args.loads {
            let speedup_trace = Arc::new(background_seeded(
                FlowSizeDist::hadoop(),
                load,
                &speedup_net,
                args.duration,
                args.seed,
            ));
            let flat_trace = Arc::new(background_seeded(
                FlowSizeDist::hadoop(),
                load,
                &flat_net,
                args.duration,
                args.seed,
            ));
            // Non-iterative with 2× speedup (the paper's pick).
            {
                let net = speedup_net.clone();
                let trace = Arc::clone(&speedup_trace);
                let duration = args.duration;
                let workers = args.workers;
                let meta = RunMeta::new(self.id(), specs.len(), FIG15_LABELS[0], args).load(load);
                specs.push(RunSpec::new(meta, move || {
                    let cfg = NegotiatorConfig::paper_default(net.clone());
                    let (rep, _) = run_negotiator(
                        cfg,
                        TopologyKind::Parallel,
                        SimOptions::default(),
                        &trace,
                        duration,
                        workers,
                    );
                    fig15_metrics(rep)
                }));
            }
            // Iterative at 1×.
            for (v, rounds) in FIG15_ITER_ROUNDS.into_iter().enumerate() {
                let net = flat_net.clone();
                let trace = Arc::clone(&flat_trace);
                let duration = args.duration;
                let workers = args.workers;
                let meta = RunMeta::new(self.id(), specs.len(), FIG15_LABELS[v + 1], args)
                    .load(load)
                    .param("iterations", rounds as f64);
                specs.push(RunSpec::new(meta, move || {
                    let cfg = NegotiatorConfig::paper_default(net.clone());
                    let (rep, _) = run_negotiator(
                        cfg,
                        TopologyKind::Parallel,
                        SimOptions {
                            mode: SchedulerMode::Iterative { rounds },
                            ..SimOptions::default()
                        },
                        &trace,
                        duration,
                        workers,
                    );
                    fig15_metrics(rep)
                }));
            }
        }
        specs
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut headers: Vec<&str> = vec!["load"];
        headers.extend(FIG15_LABELS);
        let mut fct = Table::new("Figure 15 — 99p mice FCT (ms), parallel", &headers);
        let mut gp = Table::new("Figure 15 — normalized goodput, parallel", &headers);
        for chunk in results.chunks(FIG15_LABELS.len()) {
            let mut fct_cells = vec![report::pct(chunk[0].load())];
            let mut gp_cells = vec![report::pct(chunk[0].load())];
            for r in chunk {
                fct_cells.push(r.cells()[0].clone());
                gp_cells.push(r.cells()[1].clone());
            }
            fct.row(fct_cells);
            gp.row(gp_cells);
        }
        format!("{}\n{}", fct.render(), gp.render())
    }
}

fn fig15_metrics(mut rep: metrics::RunReport) -> RunMetrics {
    let cells = vec![
        report::ms(rep.mice.p99_ns()),
        format!("{:.3}", rep.goodput.normalized()),
    ];
    RunMetrics::with_report(Rendered::Cells(cells), rep)
}

/// Shared shape of Tables 3–6: base vs variants, `99p mice FCT (us) /
/// normalized goodput` per load — one run per (load, variant).
fn variant_specs(
    experiment: &'static str,
    kind: TopologyKind,
    variants: Vec<(&'static str, SimOptions)>,
    args: &Args,
) -> Vec<RunSpec> {
    let net = NetworkConfig::paper_default();
    let mut specs = Vec::new();
    for &load in &args.loads {
        let trace = Arc::new(background_seeded(
            FlowSizeDist::hadoop(),
            load,
            &net,
            args.duration,
            args.seed,
        ));
        for (label, opts) in &variants {
            let net = net.clone();
            let trace = Arc::clone(&trace);
            let opts = opts.clone();
            let duration = args.duration;
            let workers = args.workers;
            let meta = RunMeta::new(experiment, specs.len(), *label, args).load(load);
            specs.push(RunSpec::new(meta, move || {
                let cfg = NegotiatorConfig::paper_default(net.clone());
                let (mut rep, _) = run_negotiator(cfg, kind, opts, &trace, duration, workers);
                let cell = format!(
                    "{}/{}",
                    report::us(rep.mice.p99_ns()),
                    report::pct(rep.goodput.normalized())
                );
                RunMetrics::with_report(Rendered::Cells(vec![cell]), rep)
            }));
        }
    }
    specs
}

fn variant_render(title: &str, labels: &[&str], results: &[RunResult]) -> String {
    let mut headers: Vec<&str> = vec!["load"];
    headers.extend(labels);
    let mut table = Table::new(title, &headers);
    for chunk in results.chunks(labels.len()) {
        let mut cells = vec![report::pct(chunk[0].load())];
        cells.extend(chunk.iter().map(|r| r.cells()[0].clone()));
        table.row(cells);
    }
    table.render()
}

/// Table 3 (A.2.2): traffic-aware selective relay on thin-clos.
pub struct Table3;

impl Experiment for Table3 {
    fn id(&self) -> &'static str {
        "table3"
    }
    fn artifact(&self) -> &'static str {
        "Table 3 (A.2.2): traffic-aware selective relay"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        variant_specs(
            self.id(),
            TopologyKind::ThinClos,
            vec![
                ("Base", SimOptions::default()),
                (
                    "Two-Hop",
                    SimOptions {
                        selective_relay: true,
                        ..SimOptions::default()
                    },
                ),
            ],
            args,
        )
    }
    fn render(&self, results: &[RunResult]) -> String {
        variant_render(
            "Table 3 — selective relay, thin-clos: 99p mice FCT (us) / goodput",
            &["Base", "Two-Hop"],
            results,
        )
    }
}

/// Table 4 (A.2.3): informative requests on the parallel network.
pub struct Table4;

impl Experiment for Table4 {
    fn id(&self) -> &'static str {
        "table4"
    }
    fn artifact(&self) -> &'static str {
        "Table 4 (A.2.3): informative requests"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        variant_specs(
            self.id(),
            TopologyKind::Parallel,
            vec![
                ("Base", SimOptions::default()),
                (
                    "Data-Size",
                    SimOptions {
                        mode: SchedulerMode::DataSize,
                        ..SimOptions::default()
                    },
                ),
                (
                    "HoL-Delay",
                    SimOptions {
                        mode: SchedulerMode::HolDelay { alpha: 0.001 },
                        ..SimOptions::default()
                    },
                ),
            ],
            args,
        )
    }
    fn render(&self, results: &[RunResult]) -> String {
        variant_render(
            "Table 4 — informative requests, parallel: 99p mice FCT (us) / goodput",
            &["Base", "Data-Size", "HoL-Delay"],
            results,
        )
    }
}

/// Table 5 (A.2.4): stateful scheduling on the parallel network.
pub struct Table5;

impl Experiment for Table5 {
    fn id(&self) -> &'static str {
        "table5"
    }
    fn artifact(&self) -> &'static str {
        "Table 5 (A.2.4): stateful scheduling"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        variant_specs(
            self.id(),
            TopologyKind::Parallel,
            vec![
                ("Base", SimOptions::default()),
                (
                    "Stateful",
                    SimOptions {
                        mode: SchedulerMode::Stateful,
                        ..SimOptions::default()
                    },
                ),
            ],
            args,
        )
    }
    fn render(&self, results: &[RunResult]) -> String {
        variant_render(
            "Table 5 — stateful scheduling, parallel: 99p mice FCT (us) / goodput",
            &["Base", "Stateful"],
            results,
        )
    }
}

/// Table 6 (A.2.5): ProjecToR-style scheduling on the parallel network.
pub struct Table6;

impl Experiment for Table6 {
    fn id(&self) -> &'static str {
        "table6"
    }
    fn artifact(&self) -> &'static str {
        "Table 6 (A.2.5): ProjecToR-style scheduling"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        variant_specs(
            self.id(),
            TopologyKind::Parallel,
            vec![
                ("Base", SimOptions::default()),
                (
                    "ProjecToR",
                    SimOptions {
                        mode: SchedulerMode::Projector,
                        ..SimOptions::default()
                    },
                ),
            ],
            args,
        )
    }
    fn render(&self, results: &[RunResult]) -> String {
        variant_render(
            "Table 6 — ProjecToR scheduling, parallel: 99p mice FCT (us) / goodput",
            &["Base", "ProjecToR"],
            results,
        )
    }
}
