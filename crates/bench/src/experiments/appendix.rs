//! Appendix experiments: A.1 match-ratio validation (Figure 14) and the
//! A.2 design-space comparisons (Figure 15, Tables 3–6).

use super::Args;
use crate::runs::{background_seeded, run_negotiator};
use metrics::{report, Table};
use negotiator::{theory, NegotiatorConfig, SchedulerMode, SimOptions};
use topology::{NetworkConfig, TopologyKind};
use workload::FlowSizeDist;

/// Figure 14 (A.1): per-epoch match ratio at 100% load vs the closed-form
/// `E[Y] = 1 − (1 − 1/n)^n`.
pub fn fig14(args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let trace = background_seeded(FlowSizeDist::hadoop(), 1.0, &net, args.duration, args.seed);
    let mut out = String::new();
    for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
        let cfg = NegotiatorConfig::paper_default(net.clone());
        let (_, sim) = run_negotiator(cfg, kind, SimOptions::default(), &trace, args.duration);
        let rec = sim.match_recorder();
        let series = rec.series();
        let mut table = Table::new(
            format!("Figure 14 — match ratio per epoch, {} (100% load)", kind.label()),
            &["epoch", "match_ratio"],
        );
        let step = (series.len() / 16).max(1);
        for (e, r) in series.iter().step_by(step) {
            table.row(vec![e.to_string(), format!("{r:.3}")]);
        }
        out.push_str(&table.render());
        let n = theory::competitors(kind, net.n_tors, net.n_ports);
        out.push_str(&format!(
            "overall {:.3} vs theory E[Y](n={n}) = {:.3}\n\n",
            rec.overall_ratio().unwrap_or(0.0),
            theory::expected_match_efficiency(n),
        ));
    }
    out
}

/// Figure 15 (A.2.1): iterative matching (no speedup) vs the non-iterative
/// algorithm with 2× speedup, parallel network.
pub fn fig15(args: &Args) -> String {
    let speedup_net = NetworkConfig::paper_default();
    let flat_net = NetworkConfig::paper_no_speedup();
    let mut fct = Table::new(
        "Figure 15 — 99p mice FCT (ms), parallel",
        &["load", "speedup 2x", "ITER_I", "ITER_III", "ITER_V"],
    );
    let mut gp = Table::new(
        "Figure 15 — normalized goodput, parallel",
        &["load", "speedup 2x", "ITER_I", "ITER_III", "ITER_V"],
    );
    for &load in &args.loads {
        let mut fct_cells = vec![report::pct(load)];
        let mut gp_cells = vec![report::pct(load)];
        // Non-iterative with 2× speedup (the paper's pick).
        {
            let trace = background_seeded(FlowSizeDist::hadoop(), load, &speedup_net, args.duration, args.seed);
            let cfg = NegotiatorConfig::paper_default(speedup_net.clone());
            let (mut rep, _) = run_negotiator(
                cfg,
                TopologyKind::Parallel,
                SimOptions::default(),
                &trace,
                args.duration,
            );
            fct_cells.push(report::ms(rep.mice.p99_ns()));
            gp_cells.push(format!("{:.3}", rep.goodput.normalized()));
        }
        // Iterative at 1×.
        for rounds in [1usize, 3, 5] {
            let trace = background_seeded(FlowSizeDist::hadoop(), load, &flat_net, args.duration, args.seed);
            let cfg = NegotiatorConfig::paper_default(flat_net.clone());
            let (mut rep, _) = run_negotiator(
                cfg,
                TopologyKind::Parallel,
                SimOptions {
                    mode: SchedulerMode::Iterative { rounds },
                    ..SimOptions::default()
                },
                &trace,
                args.duration,
            );
            fct_cells.push(report::ms(rep.mice.p99_ns()));
            gp_cells.push(format!("{:.3}", rep.goodput.normalized()));
        }
        fct.row(fct_cells);
        gp.row(gp_cells);
    }
    format!("{}\n{}", fct.render(), gp.render())
}

/// Shared shape of Tables 3–6: base vs variants, `99p mice FCT (us) /
/// normalized goodput` per load.
fn variant_table(
    title: &str,
    kind: TopologyKind,
    variants: &[(&str, SimOptions)],
    args: &Args,
) -> String {
    let net = NetworkConfig::paper_default();
    let mut headers: Vec<&str> = vec!["load"];
    headers.extend(variants.iter().map(|(l, _)| *l));
    let mut table = Table::new(title, &headers);
    for &load in &args.loads {
        let trace = background_seeded(FlowSizeDist::hadoop(), load, &net, args.duration, args.seed);
        let mut cells = vec![report::pct(load)];
        for (_, opts) in variants {
            let cfg = NegotiatorConfig::paper_default(net.clone());
            let (mut rep, _) =
                run_negotiator(cfg, kind, opts.clone(), &trace, args.duration);
            cells.push(format!(
                "{}/{}",
                report::us(rep.mice.p99_ns()),
                report::pct(rep.goodput.normalized())
            ));
        }
        table.row(cells);
    }
    table.render()
}

/// Table 3 (A.2.2): traffic-aware selective relay on thin-clos.
pub fn table3(args: &Args) -> String {
    variant_table(
        "Table 3 — selective relay, thin-clos: 99p mice FCT (us) / goodput",
        TopologyKind::ThinClos,
        &[
            ("Base", SimOptions::default()),
            (
                "Two-Hop",
                SimOptions {
                    selective_relay: true,
                    ..SimOptions::default()
                },
            ),
        ],
        args,
    )
}

/// Table 4 (A.2.3): informative requests on the parallel network.
pub fn table4(args: &Args) -> String {
    variant_table(
        "Table 4 — informative requests, parallel: 99p mice FCT (us) / goodput",
        TopologyKind::Parallel,
        &[
            ("Base", SimOptions::default()),
            (
                "Data-Size",
                SimOptions {
                    mode: SchedulerMode::DataSize,
                    ..SimOptions::default()
                },
            ),
            (
                "HoL-Delay",
                SimOptions {
                    mode: SchedulerMode::HolDelay { alpha: 0.001 },
                    ..SimOptions::default()
                },
            ),
        ],
        args,
    )
}

/// Table 5 (A.2.4): stateful scheduling on the parallel network.
pub fn table5(args: &Args) -> String {
    variant_table(
        "Table 5 — stateful scheduling, parallel: 99p mice FCT (us) / goodput",
        TopologyKind::Parallel,
        &[
            ("Base", SimOptions::default()),
            (
                "Stateful",
                SimOptions {
                    mode: SchedulerMode::Stateful,
                    ..SimOptions::default()
                },
            ),
        ],
        args,
    )
}

/// Table 6 (A.2.5): ProjecToR-style scheduling on the parallel network.
pub fn table6(args: &Args) -> String {
    variant_table(
        "Table 6 — ProjecToR scheduling, parallel: 99p mice FCT (us) / goodput",
        TopologyKind::Parallel,
        &[
            ("Base", SimOptions::default()),
            (
                "ProjecToR",
                SimOptions {
                    mode: SchedulerMode::Projector,
                    ..SimOptions::default()
                },
            ),
        ],
        args,
    )
}
