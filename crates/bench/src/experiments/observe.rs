//! Micro-observations (Appendix A.3/A.4): receiver-bandwidth time series
//! under incast (Figure 17), all-to-all (Figure 18) and link failures
//! (Figure 19). Each system's series is one schedulable run emitting a
//! fully rendered block.

use std::sync::Arc;

use super::{Args, Experiment};
use crate::runs::SEED;
use crate::sweep::{Rendered, RunMeta, RunMetrics, RunResult, RunSpec};
use metrics::Table;
use negotiator::{FailureAction, NegotiatorConfig, NegotiatorSim, SimOptions};
use oblivious::sim::ObliviousRecording;
use oblivious::{ObliviousConfig, ObliviousSim};
use sim::time::Nanos;
use sim::BandwidthSeries;
use topology::{NetworkConfig, TopologyKind};
use workload::{AllToAllWorkload, FlowTrace, IncastWorkload};

const WINDOW: Nanos = 1_000; // 1 µs sampling window for the series

fn series_rows(
    table: &mut Table,
    series: &BandwidthSeries,
    until: Nanos,
    extra: Option<&BandwidthSeries>,
) {
    for (t, gbps) in series.gbps_points() {
        if t > until {
            break;
        }
        let mut row = vec![format!("{:.1}", t as f64 / 1_000.0), format!("{gbps:.1}")];
        if let Some(e) = extra {
            let idx = (t / e.window()) as usize;
            let b = e.bytes_per_window().get(idx).copied().unwrap_or(0);
            row.push(format!("{:.1}", (b * 8) as f64 / e.window() as f64));
        }
        table.row(row);
    }
}

/// Run a NegotiaToR burst and render destination `dst`'s receiver series.
#[allow(clippy::too_many_arguments)] // flat run parameters, called twice
fn nego_rx_block(
    title: String,
    net: &NetworkConfig,
    kind: TopologyKind,
    trace: &FlowTrace,
    dst: usize,
    horizon: Nanos,
    until: Nanos,
    workers: usize,
) -> String {
    let mut sim = NegotiatorSim::with_options(
        NegotiatorConfig::paper_default(net.clone()),
        kind,
        SimOptions {
            rx_window: Some(WINDOW),
            workers,
            ..SimOptions::default()
        },
    );
    sim.run(trace, horizon);
    let mut table = Table::new(title, &["time_us", "gbps"]);
    series_rows(&mut table, sim.rx_series(dst).unwrap(), until, None);
    table.render()
}

/// Figure 17: receiver bandwidth during a degree-15 incast injected at
/// 10 µs, for the three systems.
pub struct Fig17;

impl Experiment for Fig17 {
    fn id(&self) -> &'static str {
        "fig17"
    }
    fn artifact(&self) -> &'static str {
        "Figure 17 (A.3): receiver bandwidth under incast"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let trace = Arc::new(
            IncastWorkload {
                degree: 15,
                flow_bytes: 1_000,
                n_tors: net.n_tors,
                start: 10_000,
            }
            .generate(SEED),
        );
        let dst = trace.flows()[0].dst;
        let horizon = 60_000;
        let mut specs = Vec::new();
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let net = net.clone();
            let trace = Arc::clone(&trace);
            let workers = args.workers;
            let meta = RunMeta::new(
                self.id(),
                specs.len(),
                format!("nego/{}", kind.label()),
                args,
            )
            .seed(SEED)
            .duration(horizon);
            specs.push(RunSpec::new(meta, move || {
                let block = format!(
                    "{}\n",
                    nego_rx_block(
                        format!(
                            "Figure 17 — receiver bandwidth, NegotiaToR {}",
                            kind.label()
                        ),
                        &net,
                        kind,
                        &trace,
                        dst,
                        horizon,
                        40_000,
                        workers,
                    )
                );
                RunMetrics::new(Rendered::Block(block))
            }));
        }
        {
            let net = net.clone();
            let trace = Arc::clone(&trace);
            let meta = RunMeta::new(self.id(), specs.len(), "oblivious/thin-clos", args)
                .seed(SEED)
                .duration(horizon);
            specs.push(RunSpec::new(meta, move || {
                let mut sim = ObliviousSim::with_recording(
                    ObliviousConfig::paper_default(net.clone()),
                    TopologyKind::ThinClos,
                    ObliviousRecording {
                        rx_window: Some(WINDOW),
                        transit_window: None,
                    },
                );
                sim.run(&trace, horizon);
                let mut table = Table::new(
                    "Figure 17 — receiver bandwidth, traffic-oblivious thin-clos",
                    &["time_us", "gbps"],
                );
                series_rows(&mut table, sim.rx_final(dst).unwrap(), 40_000, None);
                RunMetrics::new(Rendered::Block(table.render()))
            }));
        }
        specs
    }
    fn render(&self, results: &[RunResult]) -> String {
        results.iter().map(|r| r.block()).collect()
    }
}

/// Figure 18: receiver bandwidth during a 30 KB all-to-all injected at
/// 10 µs; the oblivious system additionally shows the transit (relay)
/// traffic competing at the same receiver.
pub struct Fig18;

impl Experiment for Fig18 {
    fn id(&self) -> &'static str {
        "fig18"
    }
    fn artifact(&self) -> &'static str {
        "Figure 18 (A.3): receiver bandwidth under all-to-all"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let trace = Arc::new(
            AllToAllWorkload {
                flow_bytes: 30_000,
                n_tors: net.n_tors,
                start: 10_000,
            }
            .generate(),
        );
        let dst = 17; // "a randomly chosen destination"
        let horizon = 600_000;
        let until = 250_000;
        let mut specs = Vec::new();
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let net = net.clone();
            let trace = Arc::clone(&trace);
            let workers = args.workers;
            let meta = RunMeta::new(
                self.id(),
                specs.len(),
                format!("nego/{}", kind.label()),
                args,
            )
            .duration(horizon);
            specs.push(RunSpec::new(meta, move || {
                let block = format!(
                    "{}\n",
                    nego_rx_block(
                        format!(
                            "Figure 18 — receiver bandwidth, NegotiaToR {}",
                            kind.label()
                        ),
                        &net,
                        kind,
                        &trace,
                        dst,
                        horizon,
                        until,
                        workers,
                    )
                );
                RunMetrics::new(Rendered::Block(block))
            }));
        }
        {
            let net = net.clone();
            let trace = Arc::clone(&trace);
            let meta =
                RunMeta::new(self.id(), specs.len(), "oblivious/thin-clos", args).duration(horizon);
            specs.push(RunSpec::new(meta, move || {
                let mut sim = ObliviousSim::with_recording(
                    ObliviousConfig::paper_default(net.clone()),
                    TopologyKind::ThinClos,
                    ObliviousRecording {
                        rx_window: Some(WINDOW),
                        transit_window: Some(WINDOW),
                    },
                );
                sim.run(&trace, horizon);
                let mut table = Table::new(
                    "Figure 18 — receiver bandwidth, traffic-oblivious (final + transit)",
                    &["time_us", "final_gbps", "transit_gbps"],
                );
                series_rows(
                    &mut table,
                    sim.rx_final(dst).unwrap(),
                    until,
                    sim.rx_transit(dst),
                );
                RunMetrics::new(Rendered::Block(table.render()))
            }));
        }
        specs
    }
    fn render(&self, results: &[RunResult]) -> String {
        results.iter().map(|r| r.block()).collect()
    }
}

/// Figure 19: a single pair transmits continuously on the parallel network
/// while links fail at 100 µs and recover at 300 µs; per-epoch receiver
/// bandwidth shows the failure window and the zero-bandwidth epochs caused
/// by lost scheduling messages.
pub struct Fig19;

impl Experiment for Fig19 {
    fn id(&self) -> &'static str {
        "fig19"
    }
    fn artifact(&self) -> &'static str {
        "Figure 19 (A.4): bandwidth occupation under failures"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let horizon = 400_000;
        let workers = args.workers;
        let meta = RunMeta::new(self.id(), 0, "nego/parallel", args)
            .seed(SEED)
            .duration(horizon);
        vec![RunSpec::new(meta, move || {
            let net = NetworkConfig::paper_default();
            let trace = FlowTrace::new(vec![workload::Flow {
                id: 0,
                src: 3,
                dst: 77,
                bytes: 1_000_000_000, // effectively endless
                arrival: 0,
            }]);
            let mut sim = NegotiatorSim::with_options(
                NegotiatorConfig::paper_default(net.clone()),
                TopologyKind::Parallel,
                SimOptions {
                    rx_window: Some(WINDOW),
                    workers,
                    ..SimOptions::default()
                },
            );
            let epoch = sim.epoch_len();
            sim.schedule_failure(
                100_000,
                FailureAction::FailRandom {
                    ratio: 0.10,
                    seed: SEED,
                },
            );
            sim.schedule_failure(300_000, FailureAction::RepairAll);
            sim.run(&trace, horizon);
            let rx = sim.rx_series(77).unwrap();
            let mut table = Table::new(
                "Figure 19 — pair bandwidth through failures (fail @100us, repair @300us)",
                &["time_us", "gbps"],
            );
            series_rows(&mut table, rx, horizon, None);
            let mut zero_epochs = 0;
            let mut total_epochs = 0;
            // Whole failure window, skipping the detection transient.
            let mut from = 100_000 + 5 * epoch;
            while from + epoch <= 300_000 {
                total_epochs += 1;
                if rx.mean_gbps(from, from + epoch) == 0.0 {
                    zero_epochs += 1;
                }
                from += epoch;
            }
            let block = format!(
                "{}\nzero-bandwidth epochs in failure window: {zero_epochs}/{total_epochs} \
                 (lost scheduling messages suspend the pair until the rotated round-robin \
                 rule routes them over healthy links)\n",
                table.render()
            );
            RunMetrics::new(Rendered::Block(block))
                .push_extra("zero_epochs", zero_epochs as f64)
                .push_extra("total_epochs", total_epochs as f64)
        })]
    }
    fn render(&self, results: &[RunResult]) -> String {
        results.iter().map(|r| r.block()).collect()
    }
}
